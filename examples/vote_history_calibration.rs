//! Calibrating error rates from vote history with EM.
//!
//! §4 of the paper estimates error rates from the retweet graph and
//! notes any reasonable estimator "can be smoothly plugged in". Once a
//! jury has answered a few dozen questions you hold something better
//! than graph structure: their actual voting record. This example runs
//! that workflow:
//!
//! 1. a panel of users with hidden true error rates answers a stream of
//!    binary tasks (no ground truth revealed to us);
//! 2. one-coin Dawid–Skene EM recovers each panelist's error rate from
//!    the votes alone;
//! 3. jury selection on the EM-calibrated pool is compared against
//!    (a) selection on the true rates (oracle) and (b) asking everyone;
//! 4. all three juries are scored on fresh simulated tasks.
//!
//! Run with: `cargo run --release --example vote_history_calibration`

use jury_selection::estimate::em::{estimate_error_rates_em, EmConfig, VoteMatrix};
use jury_selection::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PANEL: usize = 25;
const HISTORY_TASKS: usize = 400;
const EVAL_TASKS: usize = 30_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);

    // Hidden truth: a mixed panel — a few experts, a noisy middle, two
    // near-coin-flippers.
    let true_rates: Vec<f64> = (0..PANEL)
        .map(|i| match i % 5 {
            0 => 0.04 + 0.01 * (i % 3) as f64,
            1 | 2 => 0.18 + 0.02 * (i % 4) as f64,
            3 => 0.32 + 0.02 * (i % 3) as f64,
            _ => 0.47,
        })
        .collect();

    // 1. Collect a voting history (~70% participation per task).
    let mut history = VoteMatrix::new(PANEL);
    for _ in 0..HISTORY_TASKS {
        let truth = rng.gen_bool(0.5);
        let mut row = Vec::new();
        for (j, &e) in true_rates.iter().enumerate() {
            if rng.gen_bool(0.7) {
                let errs = rng.gen_bool(e);
                row.push((j, if errs { !truth } else { truth }));
            }
        }
        if !row.is_empty() {
            history.push_task(&row);
        }
    }
    println!("collected {} tasks of history from a panel of {PANEL}", history.n_tasks());

    // 2. EM calibration — no ground truth used.
    let fit = estimate_error_rates_em(&history, &EmConfig::default());
    println!(
        "EM converged after {} iterations (log-likelihood {:.1})",
        fit.iterations, fit.log_likelihood
    );
    let mae: f64 =
        fit.error_rates.iter().zip(&true_rates).map(|(est, &t)| (est.get() - t).abs()).sum::<f64>()
            / PANEL as f64;
    println!("mean absolute error of calibrated rates: {mae:.4}");
    assert!(mae < 0.05, "calibration should be tight");

    // 3. Three selection policies.
    let calibrated_pool: Vec<Juror> =
        fit.error_rates.iter().enumerate().map(|(i, &e)| Juror::free(i as u32, e)).collect();
    let oracle_pool: Vec<Juror> = true_rates
        .iter()
        .enumerate()
        .map(|(i, &e)| Juror::free(i as u32, ErrorRate::new(e).expect("valid rate")))
        .collect();

    let calibrated = AltrAlg::solve(&calibrated_pool, &AltrConfig::default()).unwrap();
    let oracle = AltrAlg::solve(&oracle_pool, &AltrConfig::default()).unwrap();
    println!(
        "\ncalibrated selection: {} jurors (claimed JER {:.5})",
        calibrated.size(),
        calibrated.jer
    );
    println!("oracle selection    : {} jurors (true JER {:.5})", oracle.size(), oracle.jer);

    // 4. Evaluate all juries under the *true* rates on fresh tasks.
    let jury_true = |members: &[usize]| -> Jury {
        Jury::new(
            members
                .iter()
                .enumerate()
                .map(|(k, &i)| Juror::free(k as u32, ErrorRate::new(true_rates[i]).expect("valid")))
                .collect(),
        )
        .expect("odd selection")
    };
    let everyone: Vec<usize> = (0..PANEL).collect();

    println!("\nempirical error over {EVAL_TASKS} fresh tasks:");
    let mut results = Vec::new();
    for (label, members) in [
        ("calibrated jury", &calibrated.members),
        ("oracle jury", &oracle.members),
        ("ask everyone", &everyone),
    ] {
        let jury = jury_true(members);
        let est = estimate_jer(&jury, EVAL_TASKS, &mut rng);
        println!("  {label:<16} {:.5} ± {:.5}", est.point, est.half_width_95);
        results.push(est.point);
    }
    // The calibrated jury must land within noise of the oracle jury.
    assert!(
        (results[0] - results[1]).abs() < 0.01,
        "calibrated {} vs oracle {}",
        results[0],
        results[1]
    );
    println!("\nEM calibration recovers (nearly) the oracle jury from votes alone.");
}
