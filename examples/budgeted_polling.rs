//! Budgeted polling: the PayM model under a cost/quality trade-off.
//!
//! A product team wants to poll paid micro-blog panelists about feature
//! decisions. Panelists quote different prices and have different track
//! records. This example sweeps the budget and shows
//!
//! * how the greedy PayALG's spent cost and JER respond (Figures
//!   3(c)/3(d) in miniature),
//! * how close the greedy heuristic gets to the exact optimum computed
//!   by exhaustive enumeration (Figures 3(e)/3(f) in miniature), and
//! * the budget level past which extra money stops buying accuracy.
//!
//! The budget sweep runs as ONE batched request against the serving
//! layer: the pool is registered once, its greedy order is cached, and
//! every budget reuses it.
//!
//! Run with: `cargo run --release --example budgeted_polling`

use jury_selection::prelude::*;

fn main() {
    // A 20-panelist market: prices loosely anti-correlated with error
    // rates (good panelists know their worth).
    let quotes: Vec<(f64, f64)> = (0..20)
        .map(|i| {
            let skill = i as f64 / 19.0; // 0 = novice, 1 = expert
            let rate = 0.45 - 0.40 * skill; // ε in [0.05, 0.45]
            let price = 0.05 + 0.50 * skill * skill; // convex pricing
            (rate, price)
        })
        .collect();
    let pool = jury_core::juror::pool_from_rates_and_costs(&quotes).expect("valid quotes");
    let total_market: f64 = pool.iter().map(|j| j.cost).sum();
    println!("panel of {} quotes, total market price ${total_market:.2}\n", pool.len());

    // The whole sweep is one batch of PayM tasks at increasing budgets.
    let mut service = JuryService::new();
    let pool_id = service.create_pool(pool.clone());
    let budgets: Vec<f64> = (1..=12).map(|step| step as f64 * 0.25).collect();
    let tasks: Vec<DecisionTask> =
        budgets.iter().map(|&b| DecisionTask::pay_as_you_go(pool_id, b)).collect();
    let greedy_results = service.solve_batch(&tasks);

    println!(
        "{:>7}  {:>9} {:>9} {:>5}   {:>9} {:>9} {:>5}   {:>8}",
        "budget", "greedyJER", "cost", "size", "exactJER", "cost", "size", "optimal?"
    );
    let mut last_exact_jer = f64::INFINITY;
    for (step, (&budget, greedy)) in budgets.iter().zip(greedy_results).enumerate() {
        let step = step + 1;
        let exact = exact_paym_parallel(&pool, budget, &ExactConfig::default());
        match (greedy, exact) {
            (Ok(g), Ok(e)) => {
                assert!(e.jer <= g.jer + 1e-12, "exact must dominate");
                assert!(g.total_cost <= budget + 1e-12);
                let marginal = last_exact_jer - e.jer;
                last_exact_jer = e.jer;
                println!(
                    "{:>6.2}$  {:>9.5} {:>8.2}$ {:>5}   {:>9.5} {:>8.2}$ {:>5}   {:>8}{}",
                    budget,
                    g.jer,
                    g.total_cost,
                    g.size(),
                    e.jer,
                    e.total_cost,
                    e.size(),
                    if (g.jer - e.jer).abs() < 1e-9 { "yes" } else { "no" },
                    if marginal < 1e-4 && step > 1 { "   <- diminishing returns" } else { "" },
                );
            }
            (Err(err), _) => {
                println!("{budget:>6.2}$  no feasible jury ({err})");
            }
            (_, Err(err)) => {
                println!("{budget:>6.2}$  no feasible jury ({err})");
            }
        }
    }

    // Where does money stop mattering? Compare the cheapest budget that
    // reaches within 10% of the unconstrained optimum.
    let unconstrained = exact_paym_parallel(&pool, f64::MAX, &ExactConfig::default())
        .expect("feasible without budget");
    println!(
        "\nunconstrained optimum: JER {:.5} at cost ${:.2} (size {})",
        unconstrained.jer,
        unconstrained.total_cost,
        unconstrained.size()
    );
}
