//! When does a bigger jury stop helping?
//!
//! The paper's central observation (Table 2, Figure 3(a)): JER is *not*
//! monotone in jury size. Growing from the best 3 to the best 5 jurors
//! can help, while adding two more can hurt. This example maps that
//! crossover structure:
//!
//! * the full size-vs-JER profile for the motivating pool;
//! * homogeneous pools on both sides of ε = 0.5 — the Condorcet jury
//!   theorem and its inversion ("the hands of the few");
//! * the optimal size as a function of the pool's mean error rate, the
//!   miniature of Figure 3(a).
//!
//! Run with: `cargo run --release --example crossover_study`

use jury_selection::data::distributions::Truncation;
use jury_selection::prelude::*;

fn main() {
    // --- Profile of the motivating pool -------------------------------
    let pool = jury_core::juror::pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4])
        .expect("valid rates");
    println!("size-vs-JER profile, Figure-1 pool (sorted by ε):");
    for (n, jer) in AltrAlg::jer_profile(&pool) {
        let marker = if n == 5 { "   <- optimum" } else { "" };
        println!("  n = {n}: JER = {jer:.6}{marker}");
    }

    // --- Condorcet vs inverted-Condorcet ------------------------------
    println!("\nhomogeneous juries (Condorcet regime ε = 0.3 vs inverted ε = 0.7):");
    for eps in [0.3, 0.7] {
        let rates = vec![eps; 15];
        let pool = jury_core::juror::pool_from_rates(&rates).expect("valid");
        let profile = AltrAlg::jer_profile(&pool);
        let series: Vec<String> = profile.iter().map(|(n, j)| format!("{n}:{j:.3}")).collect();
        println!("  ε = {eps}: {}", series.join("  "));
        // Below 0.5 JER falls with size; above 0.5 it rises.
        let first = profile.first().expect("non-empty").1;
        let last = profile.last().expect("non-empty").1;
        if eps < 0.5 {
            assert!(last < first, "wisdom of crowds must accumulate");
        } else {
            assert!(last > first, "crowds of error-prone jurors must hurt");
        }
    }

    // --- Figure 3(a) in miniature --------------------------------------
    println!("\noptimal jury size vs pool mean (N = 400, std 0.1):");
    for step in 1..=9 {
        let mean = 0.1 * step as f64;
        let pool = rate_pool(&PoolConfig {
            size: 400,
            rate_mean: mean,
            rate_std: 0.1,
            truncation: Truncation::Resample,
            seed: 0xC805 ^ step as u64,
            ..Default::default()
        });
        let sel = AltrAlg::solve(&pool, &AltrConfig::default()).expect("non-empty");
        let bar = "#".repeat((sel.size() * 40 / 400).max(1));
        println!("  mean {mean:.1}: size {:>3} {bar}", sel.size());
    }
    println!("\nThe collapse past mean 0.5 is the paper's 'hands of the few' regime.");
}
