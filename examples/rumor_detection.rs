//! Rumor discernment on a synthetic micro-blog network.
//!
//! §1 of the paper motivates jury selection with rumor identification:
//! decide whether a message is true by asking selected users. This
//! example runs the whole system:
//!
//! 1. generate a micro-blog service (users, tweets, retweet cascades);
//! 2. estimate individual error rates from the retweet graph via HITS
//!    (paper §4.1) — the users' *true* reliabilities stay hidden;
//! 3. select a jury with AltrALG;
//! 4. stream simulated rumor-checking tasks, where each juror votes
//!    according to their *latent* reliability, and measure how often the
//!    jury's majority verdict is right;
//! 5. compare against asking a random jury of the same size.
//!
//! Run with: `cargo run --release --example rumor_detection`

use jury_selection::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TASKS: usize = 20_000;

fn main() {
    // 1. A synthetic micro-blog service with 800 accounts.
    let dataset = MicroblogDataset::generate(&SynthConfig {
        n_users: 800,
        n_tweets: 12_000,
        seed: 7,
        ..Default::default()
    });
    println!("generated {} tweets by {} users", dataset.tweets.len(), dataset.users.len());

    // 2. Parameter estimation from the public timeline only.
    let candidates = estimate_candidates(
        &dataset.tweets,
        |name| dataset.users.iter().find(|u| u.name == name).map(|u| u.account_age_days),
        &PipelineConfig {
            ranking: RankingAlgorithm::Hits(Default::default()),
            normalization: NormalizationParams::default(),
            top_k: Some(200),
        },
    );
    println!("estimated error rates for top {} users", candidates.len());

    // 3. Jury selection over the *estimated* pool.
    let selection = AltrAlg::solve(&candidates.jurors, &AltrConfig::default())
        .expect("non-empty candidate pool");
    let jury_names: Vec<&str> =
        selection.members.iter().map(|&i| candidates.usernames[i].as_str()).collect();
    println!(
        "selected jury of {} (estimated JER {:.2e}): {}",
        selection.size(),
        selection.jer,
        jury_names.join(", ")
    );

    // 4. The ground truth the estimator never saw: latent reliabilities.
    let latent_jury = jury_from_latent(&dataset, &jury_names);
    let mut rng = StdRng::seed_from_u64(99);
    let report = run_tasks(&latent_jury, &TaskConfig { tasks: TASKS, prior_yes: 0.5 }, &mut rng);
    println!(
        "\nrumor verdicts over {TASKS} tasks:\n  selected jury : {:.4} error rate \
         (weighted MV: {:.4})",
        report.majority_error_rate(),
        report.weighted_error_rate()
    );

    // 5. Baseline: a random jury of the same (odd) size.
    let random_names: Vec<&str> = {
        let mut idx: Vec<usize> = (0..dataset.users.len()).collect();
        // Fisher–Yates prefix shuffle.
        for i in 0..selection.size() {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..selection.size()].iter().map(|&i| dataset.users[i].name.as_str()).collect()
    };
    let random_jury = jury_from_latent(&dataset, &random_names);
    let random_report =
        run_tasks(&random_jury, &TaskConfig { tasks: TASKS, prior_yes: 0.5 }, &mut rng);
    println!("  random jury   : {:.4} error rate", random_report.majority_error_rate());

    assert!(
        report.majority_error_rate() < random_report.majority_error_rate(),
        "selection should beat random membership"
    );
    println!("\nthe ranked-and-selected jury beats random selection.");
}

/// Builds a jury whose behaviour follows the users' *latent* error rates.
fn jury_from_latent(dataset: &MicroblogDataset, names: &[&str]) -> Jury {
    let members: Vec<Juror> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let rate =
                dataset.true_error_rate_of(name).expect("selected user exists in the dataset");
            Juror::free(i as u32, ErrorRate::clamped(rate))
        })
        .collect();
    Jury::new(members).expect("odd jury")
}
