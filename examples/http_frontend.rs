//! The coalescing HTTP front-end, end to end over a real socket.
//!
//! Starts a [`jury_frontend::HttpServer`] on an ephemeral port,
//! registers the Figure-1 pool over the wire (`POST /v1/pools`), fires
//! a burst of concurrent `POST /v1/solve` requests from several client
//! threads — which the front-end coalesces into shared solver windows —
//! reads the combined counters back from `GET /stats`, and shuts down
//! gracefully, recovering the wrapped service.
//!
//! Run with: `cargo run --release --example http_frontend`

use jury_frontend::client::Client;
use jury_frontend::{Frontend, FrontendConfig, HttpServer};
use jury_service::{DecisionTask, JuryService};
use std::time::Duration;

fn main() {
    // --- The Figure-1 pool: (error rate, payment requirement) ---
    let jurors = jury_core::juror::pool_from_rates_and_costs(&[
        (0.1, 0.2),
        (0.2, 0.2),
        (0.2, 0.3),
        (0.3, 0.4),
        (0.3, 0.65),
        (0.4, 0.05),
        (0.4, 0.05),
    ])
    .expect("valid rates and costs");

    // --- Boot: a service wrapped in the coalescing front-end, served ---
    let frontend = Frontend::start(
        JuryService::new(),
        FrontendConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(10),
            ..Default::default()
        },
    );
    let server = HttpServer::start(frontend, "127.0.0.1:0", 2).expect("bind front-end");
    let addr = server.local_addr();
    println!("front-end listening on http://{addr}");

    // --- Register the pool over the wire ---
    let mut admin = Client::connect(addr).expect("connect");
    let pool = admin.create_pool(&jurors).expect("transport").expect("pool accepted");

    // --- A concurrent burst: 4 tenants x 8 requests each ---
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..8 {
                    let task = if i % 2 == 0 {
                        DecisionTask::altruism(pool)
                    } else {
                        DecisionTask::pay_as_you_go(pool, 0.8 + 0.2 * i as f64)
                    };
                    let selection =
                        client.solve(&tenant, &task).expect("transport").expect("solved");
                    if i == 0 {
                        println!(
                            "{tenant}: jury {:?}, JER {:.6}, cost {:.2}",
                            selection.members, selection.jer, selection.total_cost
                        );
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // --- What the machinery did, from GET /stats ---
    let stats = admin.stats().expect("transport").expect("stats");
    println!(
        "solved {} tasks: {} inline, {} through {} coalesced windows (max occupancy {})",
        stats.service.tasks_solved,
        stats.frontend.inline_solves,
        stats.frontend.coalesced_tasks,
        stats.frontend.coalesced_windows,
        stats.frontend.max_window_occupancy,
    );

    // --- Graceful shutdown returns the wrapped service ---
    drop(admin);
    let service = server.shutdown().expect("service recovered");
    println!("drained; service reports {} tasks solved", service.stats().tasks_solved);
}
