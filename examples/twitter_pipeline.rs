//! The §4 parameter-estimation pipeline, step by step.
//!
//! Shows every stage the paper describes for turning raw micro-blog data
//! into a candidate juror pool, and compares the two ranking algorithms:
//!
//! 1. raw tweets (here: synthetic, but real `RT @user` markup);
//! 2. retweet-chain parsing (Algorithm 5's two cases);
//! 3. graph construction with deduplicated edges;
//! 4. HITS (Algorithm 6) and PageRank (Algorithm 7) ranking;
//! 5. score → error-rate normalisation (§4.1.3, α = β = 10);
//! 6. account age → payment requirement (§4.2).
//!
//! Run with: `cargo run --release --example twitter_pipeline`

use jury_microblog::parser::extract_retweet_chain;
use jury_selection::graph::weakly_connected_components;
use jury_selection::microblog::build_retweet_graph;
use jury_selection::prelude::*;

fn main() {
    // 1. Generate the corpus.
    let dataset = MicroblogDataset::generate(&SynthConfig {
        n_users: 500,
        n_tweets: 8_000,
        chain_continue_prob: 0.35,
        seed: 21,
        ..Default::default()
    });
    let retweets = dataset.tweets.iter().filter(|t| t.is_retweet()).count();
    println!(
        "corpus: {} tweets, {} retweets ({} users)",
        dataset.tweets.len(),
        retweets,
        dataset.users.len()
    );

    // 2. Show Algorithm 5's chain extraction on a real multi-hop tweet.
    if let Some(chained) =
        dataset.tweets.iter().find(|t| extract_retweet_chain(&t.content).len() >= 2)
    {
        let chain = extract_retweet_chain(&chained.content);
        println!(
            "\nexample chain tweet by {}:\n  {:?}\n  -> chain {:?} gives pairs {:?}",
            chained.author,
            chained.content,
            chain,
            {
                let mut pairs = vec![(chained.author.as_str(), chain[0])];
                pairs.extend(chain.windows(2).map(|w| (w[0], w[1])));
                pairs
            }
        );
    }

    // 3. Graph construction.
    let rg = build_retweet_graph(&dataset.tweets);
    let components = weakly_connected_components(&rg.graph);
    let largest = components.iter().map(Vec::len).max().unwrap_or(0);
    println!(
        "\nretweet graph: {} nodes, {} deduplicated edges, largest component {} \
         ({} components)",
        rg.graph.node_count(),
        rg.graph.edge_count(),
        largest,
        components.len()
    );

    // 4–6. Full pipeline under both rankers.
    let age_of =
        |name: &str| dataset.users.iter().find(|u| u.name == name).map(|u| u.account_age_days);
    let top_k = 50;
    let ht = estimate_candidates(
        &dataset.tweets,
        age_of,
        &PipelineConfig {
            ranking: RankingAlgorithm::Hits(Default::default()),
            top_k: Some(top_k),
            ..Default::default()
        },
    );
    let pr = estimate_candidates(
        &dataset.tweets,
        age_of,
        &PipelineConfig {
            ranking: RankingAlgorithm::PageRank(Default::default()),
            top_k: Some(top_k),
            ..Default::default()
        },
    );

    println!("\ntop-10 candidates (HITS vs PageRank):");
    println!(
        "{:>4}  {:>8} {:>10} {:>6}   {:>8} {:>10} {:>6}",
        "rank", "HT user", "ε", "r", "PR user", "ε", "r"
    );
    for i in 0..10 {
        println!(
            "{:>4}  {:>8} {:>10.2e} {:>6.2}   {:>8} {:>10.2e} {:>6.2}",
            i + 1,
            ht.usernames[i],
            ht.jurors[i].epsilon(),
            ht.jurors[i].cost,
            pr.usernames[i],
            pr.jurors[i].epsilon(),
            pr.jurors[i].cost,
        );
    }

    // §5.2.1's observation: the rankers broadly agree on top users.
    let ht_top: std::collections::HashSet<&String> = ht.usernames.iter().take(20).collect();
    let overlap = pr.usernames.iter().take(20).filter(|u| ht_top.contains(u)).count();
    println!("\ntop-20 overlap between rankers: {overlap}/20");

    // How well do estimated rates track the hidden truth? (rank corr.)
    let spearman = rank_correlation(&ht, &dataset);
    println!("Spearman rank correlation (estimated ε vs latent ε): {spearman:.2}");
    assert!(spearman > 0.2, "estimation should carry signal");
}

/// Spearman rank correlation between estimated and latent error rates of
/// the candidates.
fn rank_correlation(cands: &EstimatedCandidates, dataset: &MicroblogDataset) -> f64 {
    let latent: Vec<f64> = cands
        .usernames
        .iter()
        .map(|u| dataset.true_error_rate_of(u).expect("known user"))
        .collect();
    let estimated: Vec<f64> = cands.jurors.iter().map(|j| j.epsilon()).collect();
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
        let mut r = vec![0.0; xs.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(&latent);
    let rb = rank(&estimated);
    let n = ra.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (a, b) in ra.iter().zip(&rb) {
        cov += (a - mean) * (b - mean);
        va += (a - mean) * (a - mean);
        vb += (b - mean) * (b - mean);
    }
    cov / (va.sqrt() * vb.sqrt())
}
