//! Quickstart: the paper's §1 motivating example, end to end.
//!
//! Seven micro-blog users A–G are candidate jurors for the question in
//! Figure 1 ("Is Turkey in Europe or in Asia?"). We reproduce Table 2,
//! register the pool with the serving layer and solve one batch of mixed
//! AltrM/PayM tasks, then sanity-check the selected jury with a
//! simulated voting.
//!
//! Run with: `cargo run --release --example quickstart`

use jury_selection::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- The Figure-1 pool: (error rate, payment requirement) ---
    let users = ["A", "B", "C", "D", "E", "F", "G"];
    let pool = jury_core::juror::pool_from_rates_and_costs(&[
        (0.1, 0.2),
        (0.2, 0.2),
        (0.2, 0.3),
        (0.3, 0.4),
        (0.3, 0.65),
        (0.4, 0.05),
        (0.4, 0.05),
    ])
    .expect("valid rates and costs");

    // --- Table 2: JER of the juries discussed in the introduction ---
    println!("Table 2 (computed exactly):");
    let juries: [(&str, &[usize]); 5] = [
        ("C,D,E", &[2, 3, 4]),
        ("A,B,C", &[0, 1, 2]),
        ("A,B,C,D,E", &[0, 1, 2, 3, 4]),
        ("A,B,C,D,E,F,G", &[0, 1, 2, 3, 4, 5, 6]),
        ("A,B,C,F,G", &[0, 1, 2, 5, 6]),
    ];
    for (label, members) in juries {
        let eps: Vec<f64> = members.iter().map(|&i| pool[i].epsilon()).collect();
        println!("  {label:>14}: JER = {:.6}", JerEngine::Auto.jer(&eps));
    }

    // --- Register the pool once; solve both models in one batch ---
    let mut service = JuryService::new();
    let pool_id = service.create_pool(pool.clone());
    let tasks = [
        DecisionTask::altruism(pool_id),           // AltrM: any jury allowed
        DecisionTask::pay_as_you_go(pool_id, 1.0), // PayM: budget $1
    ];
    let mut results = service.solve_batch(&tasks).into_iter();
    let altr = results.next().unwrap().expect("non-empty pool");
    let paym = results.next().unwrap().expect("feasible jury");

    let names: Vec<&str> = altr.members.iter().map(|&i| users[i]).collect();
    println!("\nAltrM optimum: {{{}}} with JER {:.6}", names.join(","), altr.jer);
    assert_eq!(names, ["A", "B", "C", "D", "E"]);

    // Under budget $1, D+E together are too expensive.
    let names: Vec<&str> = paym.members.iter().map(|&i| users[i]).collect();
    println!(
        "PayM (B = $1): {{{}}} costing ${:.2} with JER {:.6}",
        names.join(","),
        paym.total_cost,
        paym.jer
    );
    assert!(paym.total_cost <= 1.0);

    // --- Validate the PayM jury empirically ---
    let jurors: Vec<Juror> = paym.members.iter().map(|&i| pool[i]).collect();
    let jury = Jury::new(jurors).expect("odd-sized selection");
    let mut rng = StdRng::seed_from_u64(2012);
    let estimate = estimate_jer(&jury, 200_000, &mut rng);
    println!(
        "Monte-Carlo check: empirical JER {:.6} ± {:.6} (analytic {:.6})",
        estimate.point, estimate.half_width_95, paym.jer
    );
    assert!(estimate.covers(paym.jer));
    println!("\nAnalytic and simulated JER agree — the jury is ready to be @-mentioned.");
}
