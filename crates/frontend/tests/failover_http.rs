//! Role transitions and retry behaviour over live HTTP: a follower
//! front-end that reports its role, refuses writes with a leader hint,
//! promotes itself over a stale writer lease, demotes when fenced —
//! and a client that rides out backpressure and a full server restart
//! with `submit_with_retry`.

use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_frontend::client::{Client, RetryPolicy};
use jury_frontend::{Frontend, FrontendConfig, HttpServer, Role};
use jury_service::{DecisionTask, JuryService, LeaseConfig, PoolId, ServiceConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("jury-failover-http-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn jurors() -> Vec<Juror> {
    pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3)]).unwrap()
}

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_millis() as u64
}

fn forge_lease(dir: &Path, holder: &str, epoch: u64, heartbeat_ms: u64) {
    std::fs::write(
        dir.join("writer.lease"),
        format!(
            r#"{{"format":"jury-lease","holder":"{holder}","epoch":"{epoch:016x}","heartbeat_ms":"{heartbeat_ms:016x}"}}"#
        ),
    )
    .unwrap();
}

fn lease_holder(dir: &Path) -> String {
    let value =
        serde::json::parse(&std::fs::read_to_string(dir.join("writer.lease")).unwrap()).unwrap();
    value.get("holder").unwrap().as_str().unwrap().to_string()
}

/// Seeds `dir` with a committed generation 1 over [`jurors`] and
/// releases the seeder's lease.
fn seed_generation(dir: &Path) {
    let mut seeder = JuryService::new();
    let pool = seeder.create_pool(jurors());
    seeder.warm_pool(pool).unwrap();
    seeder.solve(&DecisionTask::altruism(pool)).unwrap();
    seeder.snapshot(dir).unwrap();
    seeder.release_snapshot_lease(dir).unwrap();
}

/// A follower front-end over `dir`: service restores from (and would
/// checkpoint into) the shared directory, lease ttl as given, the
/// supervisor polling every few milliseconds.
fn follower_server(dir: &Path, ttl: Duration) -> (HttpServer, PoolId) {
    let mut service = JuryService::with_config(ServiceConfig {
        snapshot_dir: Some(dir.to_path_buf()),
        lease: LeaseConfig { ttl },
        ..Default::default()
    });
    let pool = service.create_pool(jurors());
    let frontend = Frontend::start(
        service,
        FrontendConfig { follower_watch: Some(Duration::from_millis(10)), ..Default::default() },
    );
    let server = HttpServer::start(frontend, "127.0.0.1:0", 2).unwrap();
    (server, pool)
}

fn wait_for<T>(mut probe: impl FnMut() -> Option<T>, what: &str) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Behind a live writer, a follower front-end keeps solving, reports
/// `follower` on both health routes, and refuses mutating routes with
/// the writer's identity — without ever touching the lease.
#[test]
fn follower_serves_solves_but_refuses_writes_with_a_leader_hint() {
    let tmp = TempDir::new("follower-refusal");
    seed_generation(tmp.path());
    // A live rival writer: fresh heartbeat, never goes stale in-test.
    forge_lease(tmp.path(), "the-writer", 2, now_ms());

    let (server, pool) = follower_server(tmp.path(), Duration::from_secs(30));
    assert_eq!(server.frontend().role(), Role::Follower, "follower_watch starts as follower");

    let mut client = Client::connect(server.local_addr()).unwrap();

    // Solves flow in follower role, against the restored generation.
    let selection = client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
    assert!(!selection.members.is_empty());
    let stats = client.stats().unwrap().unwrap();
    assert_eq!(stats.service.snapshot_restores, 1, "the follower serves restored bytes");
    assert_eq!(stats.frontend.promotions, 0);

    // Health reports the role and the followed generation.
    let health = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let body = health.result.unwrap();
    assert_eq!(body.get("role").and_then(serde::Value::as_str), Some("follower"));
    assert_eq!(body.get("generation").and_then(serde::Value::as_f64), Some(1.0));
    assert_eq!(body.get("draining").and_then(serde::Value::as_bool), Some(false));
    let ready = client.request("GET", "/readyz", None).unwrap();
    assert_eq!(ready.status, 200, "a serving follower is ready");

    // The supervisor's probe learns who the writer is; from then on
    // every refused write names it.
    wait_for(|| server.frontend().leader_hint(), "the leader hint to be learned");
    let refused = client.request("POST", "/v1/pools", Some(r#"{"jurors": []}"#)).unwrap();
    assert_eq!(refused.status, 503);
    let err = refused.result.unwrap_err();
    assert_eq!(err.kind, "not-leader");
    assert!(err.message.contains("the-writer"), "hint names the writer: {}", err.message);
    let refused = client.request("POST", "/v1/snapshot", Some("{}")).unwrap();
    assert_eq!(refused.status, 503);
    assert_eq!(refused.result.unwrap_err().kind, "not-leader");

    // The live lease was never touched, and the follower never
    // promoted behind it.
    assert_eq!(lease_holder(tmp.path()), "the-writer");
    assert_eq!(server.frontend().role(), Role::Follower);
    drop(client);
    server.shutdown();
    assert_eq!(lease_holder(tmp.path()), "the-writer", "a follower drain releases nothing");
}

/// The full failover arc over HTTP: stale lease → automatic promotion
/// (writes open up), forged usurper → fencing demotion (writes refuse
/// again, naming the usurper). The usurper's heartbeat is forged in
/// the future, which doubles as the backwards-clock guard: its age
/// clamps to zero, so the demoted follower never breaks it back.
#[test]
fn follower_promotes_over_a_stale_lease_and_demotes_when_fenced() {
    let tmp = TempDir::new("promote-demote");
    seed_generation(tmp.path());
    // The previous writer died two minutes ago.
    forge_lease(tmp.path(), "dead-writer", 3, now_ms().saturating_sub(120_000));

    let (server, pool) = follower_server(tmp.path(), Duration::from_millis(50));
    let frontend = server.frontend();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The supervisor breaks the stale lease and promotes.
    wait_for(|| (frontend.role() == Role::Writer).then_some(()), "promotion over a stale lease");
    let stats = wait_for(
        || {
            let stats = frontend.stats();
            (stats.promotions >= 1).then_some(stats)
        },
        "the promotion to be counted",
    );
    assert_eq!(stats.promotions, 1, "one stale lease, one promotion");
    assert_eq!(stats.demotions, 0);
    let health = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.result.unwrap().get("role").and_then(serde::Value::as_str), Some("writer"));

    // Writes are open now: pool registration over the wire works.
    let extra = pool_from_rates_and_costs(&[(0.15, 0.3), (0.22, 0.2), (0.31, 0.5)]).unwrap();
    let new_pool = client.create_pool(&extra).unwrap().unwrap();
    let solved = client.solve("t1", &DecisionTask::altruism(new_pool)).unwrap().unwrap();
    assert!(!solved.members.is_empty());

    // A usurper fences the promoted writer. Its heartbeat claims a
    // minute in the future — age clamps to zero, so it reads live
    // forever (within this test) and can never be broken back.
    forge_lease(tmp.path(), "usurper", 99, now_ms() + 60_000);
    wait_for(|| (frontend.role() == Role::Follower).then_some(()), "the fencing demotion");
    wait_for(|| (frontend.stats().demotions >= 1).then_some(()), "the demotion to be counted");

    // Solves keep flowing; writes refuse again and name the usurper.
    let solved = client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
    assert!(!solved.members.is_empty());
    wait_for(
        || frontend.leader_hint().filter(|h| h == "usurper"),
        "the new leader hint to be learned",
    );
    let refused = client.request("POST", "/v1/pools", Some(r#"{"jurors": []}"#)).unwrap();
    assert_eq!(refused.status, 503);
    assert!(refused.result.unwrap_err().message.contains("usurper"));

    // Over the wire, the stats round-trip carries both transitions.
    let stats = client.stats().unwrap().unwrap();
    assert_eq!(stats.frontend.promotions, 1);
    assert_eq!(stats.frontend.demotions, 1);

    // Draining as a (demoted) follower leaves the usurper's lease
    // alone.
    drop(client);
    server.shutdown();
    assert_eq!(lease_holder(tmp.path()), "usurper");
}

/// `submit_with_retry` honours the server's `Retry-After` hint on 429
/// backpressure: three attempts against a zero-capacity queue sleep
/// the hinted backoff twice, then surface the server's last refusal
/// untouched.
#[test]
fn retry_honours_the_servers_retry_after_hint() {
    let mut service = JuryService::new();
    let pool = service.create_pool(jurors());
    let frontend = Frontend::start(
        service,
        FrontendConfig {
            queue_capacity: 0,
            max_delay: Duration::from_millis(10),
            ..Default::default()
        },
    );
    let server = HttpServer::start(frontend, "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let policy = RetryPolicy {
        max_attempts: 3,
        base: Duration::from_millis(5),
        cap: Duration::from_secs(1),
    };
    let started = Instant::now();
    let outcome = client.submit_with_retry("t0", &DecisionTask::altruism(pool), &policy).unwrap();
    let elapsed = started.elapsed();
    let err = outcome.expect_err("a zero-capacity queue refuses every attempt");
    assert_eq!(err.kind, "overloaded", "the last refusal is surfaced as-is");
    assert_eq!(err.retry_after_ms, Some(10));
    assert!(
        elapsed >= Duration::from_millis(20),
        "two hinted backoffs of 10ms must have been slept, got {elapsed:?}"
    );
    drop(client);
    server.shutdown();
}

/// The drain-and-restart arc: a client whose server goes away mid-
/// session transparently rides through with `submit_with_retry` —
/// failed dials back off, the reconnect lands on the restarted server,
/// and the answer is bit-identical to the pre-restart one.
#[test]
fn retry_rides_through_a_drained_and_restarted_server() {
    let mut service = JuryService::new();
    let pool = service.create_pool(jurors());
    let frontend = Frontend::start(service, FrontendConfig::default());
    let server = HttpServer::start(frontend, "127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let before = client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();

    // Drain: the server hands the warm service back and the port goes
    // dark. (This client held the only connection, and its retry
    // writes below abort the server-side socket, so the port is
    // immediately rebindable.)
    let service = server.shutdown().expect("drain returns the service");

    std::thread::scope(|scope| {
        let retried = scope.spawn(move || {
            let policy = RetryPolicy {
                max_attempts: 200,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
            };
            let selection = client
                .submit_with_retry("t0", &DecisionTask::altruism(pool), &policy)
                .expect("retries must outlast the restart window")
                .expect("the restarted server solves");
            // The same connection keeps working after the ride-through.
            let again = client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
            (selection, again)
        });

        // A visible downtime window, then restart on the same address
        // with the drained service.
        std::thread::sleep(Duration::from_millis(80));
        let frontend = Frontend::start(service, FrontendConfig::default());
        let restarted = {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match HttpServer::start(Arc::clone(&frontend), &addr.to_string(), 2) {
                    Ok(server) => break server,
                    Err(e) => {
                        assert!(Instant::now() < deadline, "could not rebind {addr}: {e}");
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        };

        let (selection, again) = retried.join().expect("retrying client panicked");
        assert_eq!(selection.members, before.members, "the answer rode through bit-identically");
        assert_eq!(selection.jer.to_bits(), before.jer.to_bits());
        assert_eq!(again.members, before.members);
        restarted.shutdown();
    });
}
