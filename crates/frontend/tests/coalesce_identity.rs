//! Coalescing must be semantically invisible: answers delivered through
//! a coalesced window are bit-identical to a direct
//! `solve_batch_shared` on an identically-prepared service, and a
//! graceful shutdown drains queued windows instead of dropping them.

use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_core::problem::Selection;
use jury_frontend::{Frontend, FrontendConfig, SubmitError};
use jury_service::{DecisionTask, JuryService, PoolId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

type SubmitResult = Result<Arc<Selection>, SubmitError>;
type ResultSlots = Vec<Mutex<Option<SubmitResult>>>;

fn jurors() -> Vec<Juror> {
    let pairs: Vec<(f64, f64)> =
        (0..19).map(|i| (0.04 + (i as f64) / 25.0, 0.1 + ((i * 11) % 7) as f64 / 7.0)).collect();
    pool_from_rates_and_costs(&pairs).unwrap()
}

fn tasks_for(pool: PoolId) -> Vec<DecisionTask> {
    (0..12)
        .map(|i| {
            if i % 3 == 0 {
                DecisionTask::altruism(pool)
            } else {
                DecisionTask::pay_as_you_go(pool, 0.5 + (i % 4) as f64 * 0.4)
            }
        })
        .collect()
}

/// Queue `tasks` concurrently behind a held service lock so they land
/// in coalescing windows, then release and collect results by index.
fn submit_coalesced(frontend: &Frontend, tasks: &[DecisionTask]) -> Vec<SubmitResult> {
    let results: ResultSlots = tasks.iter().map(|_| Mutex::new(None)).collect();
    let hold = Barrier::new(2);
    let release = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (hold, release) = (&hold, &release);
        scope.spawn(move || {
            frontend.with_service(|_| {
                hold.wait();
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
        });
        hold.wait();
        for (i, task) in tasks.iter().enumerate() {
            let slot = &results[i];
            let task = *task;
            scope.spawn(move || {
                *slot.lock().unwrap() = Some(frontend.submit("tenant", task));
            });
        }
        while frontend.stats().requests < tasks.len() as u64 {
            std::thread::yield_now();
        }
        release.store(true, Ordering::Release);
    });
    results.into_iter().map(|slot| slot.into_inner().unwrap().unwrap()).collect()
}

#[test]
fn coalesced_answers_are_bit_identical_to_direct_batches() {
    let jurors = jurors();
    let mut direct = JuryService::new();
    let direct_pool = direct.create_pool(jurors.clone());

    let mut served = JuryService::new();
    let served_pool = served.create_pool(jurors);
    assert_eq!(direct_pool, served_pool, "identical registration order, identical ids");
    let frontend = Frontend::start(served, FrontendConfig::default());

    let tasks = tasks_for(direct_pool);
    let expected = direct.solve_batch_shared(&tasks);
    let coalesced = submit_coalesced(&frontend, &tasks);

    for (i, (got, want)) in coalesced.iter().zip(&expected).enumerate() {
        let got = got.as_ref().unwrap_or_else(|e| panic!("task {i} failed: {e}"));
        let want = want.as_ref().expect("direct solve succeeded");
        assert_eq!(got.members, want.members, "task {i} members");
        assert_eq!(got.jer.to_bits(), want.jer.to_bits(), "task {i} jer bits");
        assert_eq!(got.total_cost.to_bits(), want.total_cost.to_bits(), "task {i} cost bits");
    }
    let stats = frontend.stats();
    assert!(stats.coalesced_windows >= 1, "the held lock forced real windows: {stats:?}");
    assert!(stats.max_window_occupancy >= 2);
    assert_eq!(stats.coalesced_tasks + stats.inline_solves, tasks.len() as u64);
    assert!(stats.solve_nanos > 0, "the timing hook attributed solver time");
}

#[test]
fn shutdown_drains_queued_windows() {
    let jurors = jurors();
    let mut service = JuryService::new();
    let pool = service.create_pool(jurors);
    let frontend = Frontend::start(
        service,
        FrontendConfig { max_delay: Duration::from_secs(30), ..Default::default() },
    );
    let tasks = tasks_for(pool);

    let results: ResultSlots = tasks.iter().map(|_| Mutex::new(None)).collect();
    let hold = Barrier::new(2);
    let release = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let fe = &*frontend;
        let (hold, release) = (&hold, &release);
        scope.spawn(move || {
            fe.with_service(|_| {
                hold.wait();
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
        });
        hold.wait();
        for (i, task) in tasks.iter().enumerate() {
            let slot = &results[i];
            let task = *task;
            scope.spawn(move || {
                *slot.lock().unwrap() = Some(fe.submit("tenant", task));
            });
        }
        while fe.stats().requests < tasks.len() as u64 {
            std::thread::yield_now();
        }
        // Shutdown with a full queue and the solver still held: the
        // flag flips, the holder releases, and the drain must answer
        // every queued waiter before shutdown() returns the service.
        let stopper = scope.spawn(move || fe.shutdown());
        release.store(true, Ordering::Release);
        let service = stopper.join().unwrap().expect("first shutdown wins");
        assert_eq!(service.stats().tasks_solved, tasks.len());
    });
    for (i, slot) in results.iter().enumerate() {
        let result = slot.lock().unwrap().take().unwrap_or_else(|| panic!("task {i} unanswered"));
        assert!(result.is_ok(), "task {i} must be drained, not dropped: {result:?}");
    }
    assert!(matches!(
        frontend.submit("tenant", DecisionTask::altruism(pool)),
        Err(SubmitError::ShuttingDown)
    ));
}
