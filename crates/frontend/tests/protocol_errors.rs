//! Protocol error paths over a live server: every failure mode answers
//! a structured wire error (or silently drops a vanished peer), and
//! none of them kill the acceptor, a worker, or a coalescing window.

use jury_core::juror::pool_from_rates_and_costs;
use jury_frontend::client::Client;
use jury_frontend::{Frontend, FrontendConfig, HttpServer};
use jury_service::{DecisionTask, JuryService, PoolId};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start_server(config: FrontendConfig) -> (HttpServer, PoolId) {
    let jurors =
        pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3)]).unwrap();
    let mut service = JuryService::new();
    let pool = service.create_pool(jurors);
    let frontend = Frontend::start(service, config);
    let server = HttpServer::start(frontend, "127.0.0.1:0", 2).unwrap();
    (server, pool)
}

fn wait_for<T>(mut probe: impl FnMut() -> Option<T>, what: &str) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(value) = probe() {
            return value;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn protocol_failures_answer_structured_errors_and_spare_the_server() {
    let (server, pool) = start_server(FrontendConfig::default());
    let addr = server.local_addr();

    // Malformed JSON body: 400 with a wire error, connection stays up
    // for the next (valid) request.
    let mut client = Client::connect(addr).unwrap();
    let response = client.request("POST", "/v1/solve", Some("{this is not json")).unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.result.unwrap_err().kind, "bad-request");
    let solved = client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
    assert!(!solved.members.is_empty(), "same connection keeps working after a 400");

    // Unknown pool id: 404 with kind unknown-pool.
    let ghost = server.frontend().with_service(|s| {
        let ghost = s.create_pool(pool_from_rates_and_costs(&[(0.2, 0.1)]).unwrap());
        s.remove_pool(ghost).unwrap();
        ghost
    });
    let err = client.solve("t0", &DecisionTask::altruism(ghost)).unwrap().unwrap_err();
    assert_eq!(err.kind, "unknown-pool");

    // Unknown route: 404, still structured.
    let response = client.request("GET", "/v1/nope", None).unwrap();
    assert_eq!(response.status, 404);
    assert_eq!(response.result.unwrap_err().kind, "not-found");

    // Solver refusal (empty pool): 422, kind solver. Invalid budgets
    // never get this far — the wire layer re-validates them at parse
    // time and answers 400.
    let empty = server.frontend().with_service(|s| s.create_pool(Vec::new()));
    let response = client.solve("t0", &DecisionTask::altruism(empty)).unwrap();
    assert_eq!(response.unwrap_err().kind, "solver");
    let response = client
        .request(
            "POST",
            "/v1/solve",
            Some(r#"{"tenant": "t0", "task": {"pool": 0, "task": {"model": "pay-as-you-go", "budget": -1}}}"#),
        )
        .unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(response.result.unwrap_err().kind, "bad-request");

    // Oversized request: the declared body busts the cap, so the 413
    // arrives before any body byte is read (or sent).
    let mut big = TcpStream::connect(addr).unwrap();
    big.write_all(b"POST /v1/solve HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n").unwrap();
    let mut status_line = Vec::new();
    std::io::Read::read_to_end(&mut big, &mut status_line).unwrap();
    let text = String::from_utf8_lossy(&status_line);
    assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    assert!(text.contains("too-large"), "got: {text}");

    // Mid-request disconnects (half a head; a declared body that never
    // arrives) are abandoned without hurting anyone else.
    let before = server.frontend().stats().malformed_requests;
    {
        let mut half_head = TcpStream::connect(addr).unwrap();
        half_head.write_all(b"POST /v1/solve HT").unwrap();
    }
    {
        let mut half_body = TcpStream::connect(addr).unwrap();
        half_body
            .write_all(b"POST /v1/solve HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"ten")
            .unwrap();
    }
    wait_for(
        || (server.frontend().stats().malformed_requests >= before + 2).then_some(()),
        "disconnects to be abandoned",
    );

    // The acceptor and the coalescing machinery shrug all of it off.
    let mut fresh = Client::connect(addr).unwrap();
    let solved = fresh.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
    assert!(!solved.members.is_empty());
    let stats = fresh.stats().unwrap().unwrap();
    assert!(stats.frontend.malformed_requests >= 4, "400/404s and disconnects are counted");
    assert!(stats.service.tasks_solved >= 2);
    assert_eq!(stats.frontend.queue_rejections, 0);

    let service = server.shutdown().expect("server returns the service");
    assert!(service.stats().tasks_solved >= 2);
}

#[test]
fn overflow_returns_429_with_retry_hint() {
    let (server, pool) = start_server(FrontendConfig {
        queue_capacity: 0,
        max_delay: Duration::from_millis(10),
        ..Default::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    let err = client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap_err();
    assert_eq!(err.kind, "overloaded");
    assert_eq!(err.retry_after_ms, Some(10), "the body carries the precise backoff");
    let stats = client.stats().unwrap().unwrap();
    assert_eq!(stats.frontend.queue_rejections, 1);
    assert_eq!(stats.frontend.requests, 0, "rejected work is never admitted");
    drop(client);
    server.shutdown();
}

#[test]
fn handler_panics_cost_their_connection_not_their_worker() {
    let (server, pool) =
        start_server(FrontendConfig { debug_fault_routes: true, ..FrontendConfig::default() });
    let addr = server.local_addr();

    // Three panics across a pool of two workers: if a panic killed its
    // worker, the third request would find the pool empty.
    for _ in 0..3 {
        let mut client = Client::connect(addr).unwrap();
        let response = client.request("POST", "/debug/panic", None).unwrap();
        assert_eq!(response.status, 500);
        assert_eq!(response.result.unwrap_err().kind, "internal");
    }

    // The acceptor and every worker survived; the service still solves.
    let mut fresh = Client::connect(addr).unwrap();
    let solved = fresh.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
    assert!(!solved.members.is_empty());
    let stats = fresh.stats().unwrap().unwrap();
    assert_eq!(stats.frontend.worker_panics, 3);
    drop(fresh);
    server.shutdown();

    // The fault route is gated: off by default, it is an ordinary 404.
    let (server, _) = start_server(FrontendConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client.request("POST", "/debug/panic", None).unwrap();
    assert_eq!(response.status, 404);
    drop(client);
    server.shutdown();
}

#[test]
fn blown_deadline_maps_to_429() {
    use serde::Serialize;
    let (server, pool) = start_server(FrontendConfig {
        deadline: Some(Duration::from_millis(1)),
        ..FrontendConfig::default()
    });
    let addr = server.local_addr();
    let body = serde::json::to_string(&serde::Value::object([
        ("tenant", "t0".to_string().to_value()),
        ("task", DecisionTask::altruism(pool).to_value()),
    ]));

    let hold = std::sync::Barrier::new(2);
    let release = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        use std::sync::atomic::Ordering;
        let fe = server.frontend();
        let (hold, release, body) = (&hold, &release, &body);
        scope.spawn(move || {
            fe.with_service(|_| {
                hold.wait();
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
        });
        hold.wait();
        let stale = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request("POST", "/v1/solve", Some(body)).unwrap()
        });
        wait_for(|| (fe.stats().requests >= 1).then_some(()), "the solve to queue");
        std::thread::sleep(Duration::from_millis(30));
        release.store(true, Ordering::Release);
        let response = stale.join().expect("client panicked");
        assert_eq!(response.status, 429);
        assert_eq!(response.result.unwrap_err().kind, "deadline-exceeded");
    });
    assert_eq!(server.frontend().stats().deadline_rejections, 1);
    server.shutdown();
}

#[test]
fn pools_register_over_the_wire_and_solve() {
    let (server, _) = start_server(FrontendConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let jurors = pool_from_rates_and_costs(&[(0.15, 0.3), (0.22, 0.2), (0.31, 0.5)]).unwrap();
    let pool = client.create_pool(&jurors).unwrap().unwrap();
    let selection = client.solve("t9", &DecisionTask::altruism(pool)).unwrap().unwrap();
    let direct =
        server.frontend().with_service(|s| s.solve(&DecisionTask::altruism(pool))).unwrap();
    assert_eq!(selection.members, direct.members);
    assert_eq!(selection.jer.to_bits(), direct.jer.to_bits());
    drop(client);
    server.shutdown();
}

#[test]
fn snapshot_route_persists_and_a_restarted_server_restores() {
    use jury_service::ServiceConfig;
    use serde::Serialize as _;

    let dir = std::env::temp_dir().join(format!("jury-frontend-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (server, pool) = start_server(FrontendConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // No body and no configured snapshot_dir: unprocessable, structured.
    let response = client.request("POST", "/v1/snapshot", None).unwrap();
    assert_eq!(response.status, 422);
    assert_eq!(response.result.unwrap_err().kind, "bad-request");

    // Warm the pool, then snapshot to an explicit directory from the body.
    let first = client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
    let body = serde::json::to_string(&serde::Value::object([(
        "dir",
        dir.display().to_string().to_value(),
    )]));
    let response = client.request("POST", "/v1/snapshot", Some(&body)).unwrap();
    assert_eq!(response.status, 200);
    let report = response.result.unwrap();
    let entries = report.get("entries").and_then(serde::Value::as_f64).unwrap();
    assert!(entries >= 1.0, "snapshot persisted nothing: {report:?}");
    assert!(dir.join("manifest-1.json").is_file(), "the generation manifest is the commit point");
    server.shutdown();

    // A restarted server over the same juror content and the directory
    // configured answers its first task from the verified snapshot,
    // bit-identically.
    let jurors =
        pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3)]).unwrap();
    let mut service = JuryService::with_config(ServiceConfig {
        snapshot_dir: Some(dir.clone()),
        ..Default::default()
    });
    let restarted = service.create_pool(jurors);
    let frontend = Frontend::start(service, FrontendConfig::default());
    let server = HttpServer::start(frontend, "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let restored = client.solve("t0", &DecisionTask::altruism(restarted)).unwrap().unwrap();
    assert_eq!(restored.members, first.members);
    assert_eq!(restored.jer.to_bits(), first.jer.to_bits());
    let stats = client.stats().unwrap().unwrap();
    assert_eq!(stats.service.snapshot_restores, 1, "first answer came from the snapshot");
    assert_eq!(stats.service.snapshot_rejections, 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One raw HTTP exchange, bypassing [`Client`]'s typed wire error so
/// the test can read *extra* fields in a structured error body.
fn raw_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, serde::Value) {
    use std::io::Read as _;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let status: u16 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
    let json = &text[text.find("\r\n\r\n").unwrap() + 4..];
    (status, serde::json::parse(json).unwrap())
}

#[test]
fn partially_failed_snapshot_answers_a_structured_500_with_counts() {
    use serde::Serialize as _;

    let dir = std::env::temp_dir().join(format!("jury-frontend-partial-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (server, pool) = start_server(FrontendConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.solve("t0", &DecisionTask::altruism(pool)).unwrap().unwrap();
    let body = serde::json::to_string(&serde::Value::object([(
        "dir",
        dir.display().to_string().to_value(),
    )]));
    let response = client.request("POST", "/v1/snapshot", Some(&body)).unwrap();
    assert_eq!(response.status, 200);

    // Sabotage the next write: delete the generation-1 entry file (so
    // the writer must self-heal by rewriting it at generation 2) and
    // squat a *directory* on the exact path that rewrite will take —
    // the atomic rename cannot replace a directory and must fail.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "snap"))
        .expect("one entry file after the first snapshot");
    let healed_name = entry.file_name().unwrap().to_str().unwrap().replace("-g1-", "-g2-");
    std::fs::remove_file(&entry).unwrap();
    std::fs::create_dir(dir.join(&healed_name)).unwrap();

    let (status, envelope) = raw_request(addr, "POST", "/v1/snapshot", &body);
    assert_eq!(status, 500, "partial failure must not masquerade as success: {envelope:?}");
    let error = envelope.get("error").expect("structured error body");
    assert_eq!(error.get("kind").and_then(serde::Value::as_str), Some("snapshot-partial"));
    assert_eq!(error.get("written").and_then(serde::Value::as_f64), Some(0.0));
    assert_eq!(error.get("failed").and_then(serde::Value::as_f64), Some(1.0));
    // No manifest was committed over the failure: generation 1 is
    // still the (only) published manifest.
    assert!(dir.join("manifest-1.json").is_file());
    assert!(!dir.join("manifest-2.json").exists());

    // Clearing the obstruction heals on the next snapshot: the entry
    // is rewritten and a new generation commits.
    std::fs::remove_dir(dir.join(&healed_name)).unwrap();
    let mut client = Client::connect(addr).unwrap();
    let response = client.request("POST", "/v1/snapshot", Some(&body)).unwrap();
    assert_eq!(response.status, 200);
    let report = response.result.unwrap();
    assert!(report.get("written").and_then(serde::Value::as_f64).unwrap() >= 1.0);
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
