//! Minimal HTTP/1.1 framing over [`std::net::TcpStream`]: request
//! parsing with hard head/body limits, and response writing with
//! `Content-Length` framing. Deliberately tiny — just enough protocol
//! for the coalescing front-end, in the same spirit as the workspace's
//! vendored shims.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Hard cap on request line + headers.
pub(crate) const MAX_HEAD: usize = 8 * 1024;
/// Hard cap on request bodies (a 413 refusal, not a connection kill).
pub(crate) const MAX_BODY: usize = 256 * 1024;
/// How long a *partially received* request may dribble before the
/// connection is abandoned.
const PARTIAL_DEADLINE: Duration = Duration::from_secs(5);

/// One parsed request.
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) body: Vec<u8>,
    pub(crate) keep_alive: bool,
}

/// What reading from a connection produced.
pub(crate) enum ReadOutcome {
    Request(Request),
    /// Clean end of the connection (EOF between requests, or shutdown
    /// observed while idle). Nothing to answer.
    Closed,
    /// Unparseable or truncated request — answer 400 (best-effort; the
    /// peer may already be gone) and close.
    Malformed(&'static str),
    /// Head or declared body over the caps — answer 413 and close.
    TooLarge,
}

/// A connection with its read-ahead buffer (keep-alive pipelining means
/// one read may span request boundaries).
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pending: Vec<u8>,
}

enum Fill {
    Bytes,
    Eof,
    TimedOut,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self { stream, pending: Vec::new() }
    }

    fn fill(&mut self) -> io::Result<Fill> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.pending.extend_from_slice(&chunk[..n]);
                Ok(Fill::Bytes)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(Fill::TimedOut)
            }
            Err(e) => Err(e),
        }
    }

    /// Reads one request. `stop` is polled on read timeouts so an idle
    /// keep-alive connection lets its worker exit during shutdown; a
    /// request already in flight is still read to completion.
    pub(crate) fn read_request(&mut self, stop: &AtomicBool) -> ReadOutcome {
        let mut partial_since: Option<Instant> = None;
        let head_end = loop {
            if let Some(end) = find_head_end(&self.pending) {
                break end;
            }
            if self.pending.len() > MAX_HEAD {
                return ReadOutcome::TooLarge;
            }
            if !self.pending.is_empty() {
                partial_since.get_or_insert_with(Instant::now);
            }
            match self.fill() {
                Err(_) => return ReadOutcome::Closed,
                Ok(Fill::Eof) => {
                    return if self.pending.is_empty() {
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Malformed("client disconnected mid-request")
                    };
                }
                Ok(Fill::TimedOut) => {
                    if partial_since.is_some_and(|t| t.elapsed() > PARTIAL_DEADLINE) {
                        return ReadOutcome::Malformed("request timed out mid-head");
                    }
                    if partial_since.is_none() && stop.load(Ordering::Acquire) {
                        return ReadOutcome::Closed;
                    }
                }
                Ok(Fill::Bytes) => {}
            }
        };
        let head = match std::str::from_utf8(&self.pending[..head_end]) {
            Ok(head) => head,
            Err(_) => return ReadOutcome::Malformed("non-UTF-8 request head"),
        };
        let (method, path, content_length, keep_alive) = match parse_head(head) {
            Ok(parts) => parts,
            Err(msg) => return ReadOutcome::Malformed(msg),
        };
        if content_length > MAX_BODY {
            return ReadOutcome::TooLarge;
        }
        let body_end = head_end + 4 + content_length;
        while self.pending.len() < body_end {
            match self.fill() {
                Err(_) => return ReadOutcome::Closed,
                Ok(Fill::Eof) => return ReadOutcome::Malformed("client disconnected mid-body"),
                Ok(Fill::TimedOut) => {
                    if partial_since.get_or_insert_with(Instant::now).elapsed() > PARTIAL_DEADLINE {
                        return ReadOutcome::Malformed("request timed out mid-body");
                    }
                }
                Ok(Fill::Bytes) => {}
            }
        }
        let mut consumed: Vec<u8> = self.pending.drain(..body_end).collect();
        let body = consumed.split_off(head_end + 4);
        ReadOutcome::Request(Request { method, path, body, keep_alive })
    }
}

pub(crate) fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &str) -> Result<(String, String, usize, bool), &'static str> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).ok_or("missing method")?;
    let path = parts.next().filter(|p| p.starts_with('/')).ok_or("missing request path")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if parts.next().is_some() {
        return Err("malformed request line");
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err("unsupported HTTP version"),
    };
    let mut content_length = 0usize;
    let mut keep_alive = http11;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            if line.is_empty() {
                continue;
            }
            return Err("malformed header line");
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| "unparseable content-length")?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close")
                && (http11 || value.eq_ignore_ascii_case("keep-alive"));
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err("chunked bodies are not supported");
        }
    }
    Ok((method.to_string(), path.to_string(), content_length, keep_alive))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Writes one framed JSON response. `retry_after` becomes a
/// whole-seconds `Retry-After` header (rounded up — the wire error body
/// carries the precise `retry_after_ms`).
pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    retry_after: Option<Duration>,
    keep_alive: bool,
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
        status_text(status),
        body.len(),
    );
    if let Some(delay) = retry_after {
        head.push_str(&format!("retry-after: {}\r\n", delay.as_secs_f64().ceil() as u64));
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heads_parse_and_reject() {
        let (method, path, len, keep) =
            parse_head("POST /v1/solve HTTP/1.1\r\nContent-Length: 12\r\nHost: x").unwrap();
        assert_eq!((method.as_str(), path.as_str(), len, keep), ("POST", "/v1/solve", 12, true));
        let (.., keep) = parse_head("GET /stats HTTP/1.1\r\nConnection: close").unwrap();
        assert!(!keep);
        let (.., keep) = parse_head("GET /stats HTTP/1.0\r\n").unwrap();
        assert!(!keep, "HTTP/1.0 defaults to close");
        assert!(parse_head("GET /x HTTP/2\r\n").is_err());
        assert!(parse_head("GET\r\n").is_err());
        assert!(parse_head("POST /x HTTP/1.1\r\nContent-Length: eel").is_err());
        assert!(parse_head("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked").is_err());
    }
}
