//! The std-only HTTP layer: one acceptor thread feeding a fixed worker
//! pool over an [`mpsc`] channel. Each worker owns one connection at a
//! time and runs its keep-alive loop; protocol failures answer a
//! structured wire error (best-effort) and close that connection only —
//! the acceptor and the coalescing queue never see them.

use crate::coalesce::{Frontend, Role, SubmitError};
use crate::proto::{self, Conn, ReadOutcome, Request};
use jury_core::wire::{Envelope, WireError};
use jury_service::{DecisionTask, JuryService, ServiceError, SnapshotError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How often blocked reads wake to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The HTTP front door over a [`Frontend`]. See the crate docs for the
/// protocol.
pub struct HttpServer {
    frontend: Arc<Frontend>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the acceptor plus `workers` connection handlers.
    pub fn start(frontend: Arc<Frontend>, addr: &str, workers: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let frontend = Arc::clone(&frontend);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("jury-http-{i}"))
                    .spawn(move || {
                        // Channel closed = acceptor gone = shutdown.
                        loop {
                            let next = receiver.lock().expect("receiver poisoned").recv();
                            match next {
                                Ok(stream) => handle_connection(stream, &frontend, &stop),
                                Err(_) => return,
                            }
                        }
                    })
                    .expect("spawn http worker")
            })
            .collect();
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("jury-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                        let _ = stream.set_nodelay(true);
                        if sender.send(stream).is_err() {
                            break;
                        }
                    }
                    // Dropping the sender drains the workers.
                })
                .expect("spawn acceptor")
        };
        Ok(Self { frontend, addr, stop, acceptor: Some(acceptor), workers })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coalescing front-end this server feeds.
    pub fn frontend(&self) -> &Arc<Frontend> {
        &self.frontend
    }

    /// Graceful shutdown: stops accepting, lets in-flight requests
    /// finish, drains the coalescing queue, and returns the wrapped
    /// service (None if another handle already claimed it).
    pub fn shutdown(mut self) -> Option<JuryService> {
        self.stop_http();
        self.frontend.shutdown()
    }

    fn stop_http(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_http();
        }
    }
}

fn handle_connection(stream: TcpStream, frontend: &Arc<Frontend>, stop: &AtomicBool) {
    let mut conn = Conn::new(stream);
    loop {
        match conn.read_request(stop) {
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(msg) => {
                // Best-effort 400 — the peer may already be gone, which
                // is fine; the point is this worker survives.
                count_malformed(frontend);
                let _ = respond_error(&mut conn, 400, None, false, "bad-request", msg);
                return;
            }
            ReadOutcome::TooLarge => {
                count_malformed(frontend);
                let _ = respond_error(
                    &mut conn,
                    413,
                    None,
                    false,
                    "too-large",
                    "request exceeds the configured size limits",
                );
                return;
            }
            ReadOutcome::Request(request) => {
                let keep_alive = request.keep_alive;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route(&mut conn, frontend, request)
                }));
                match outcome {
                    Ok(Ok(())) if keep_alive => {}
                    Ok(_) => return,
                    Err(_) => {
                        // A panicking handler costs its connection, not
                        // its worker: count it, answer a best-effort
                        // 500, and go back to the accept loop.
                        frontend.counters().worker_panics.fetch_add(1, Ordering::Relaxed);
                        let _ = respond_error(
                            &mut conn,
                            500,
                            None,
                            false,
                            "internal",
                            "request handler panicked",
                        );
                        return;
                    }
                }
            }
        }
    }
}

fn count_malformed(frontend: &Frontend) {
    frontend.counters().malformed_requests.fetch_add(1, Ordering::Relaxed);
}

fn respond_error(
    conn: &mut Conn,
    status: u16,
    retry_after: Option<Duration>,
    keep_alive: bool,
    kind: &str,
    message: &str,
) -> io::Result<()> {
    let mut error = WireError::new(kind, message);
    if let Some(delay) = retry_after {
        error = error.with_retry_after(delay.as_millis() as u64);
    }
    let body = serde::json::to_string(&Envelope::err(error));
    proto::write_response(&mut conn.stream, status, retry_after, keep_alive, &body)
}

fn respond_ok<T: serde::Serialize>(
    conn: &mut Conn,
    keep_alive: bool,
    result: &T,
) -> io::Result<()> {
    let body = serde::json::to_string(&Envelope::ok(result));
    proto::write_response(&mut conn.stream, 200, None, keep_alive, &body)
}

fn route(conn: &mut Conn, frontend: &Arc<Frontend>, request: Request) -> io::Result<()> {
    let keep = request.keep_alive;
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/solve") => {
            let parsed: Result<SolveRequest, _> = parse_body(&request.body);
            let solve = match parsed {
                Ok(solve) => solve,
                Err(msg) => {
                    count_malformed(frontend);
                    return respond_error(conn, 400, None, keep, "bad-request", &msg);
                }
            };
            match frontend.submit(&solve.tenant, solve.task) {
                Ok(selection) => respond_ok(conn, keep, &*selection),
                Err(SubmitError::Overloaded { retry_after }) => respond_error(
                    conn,
                    429,
                    Some(retry_after),
                    keep,
                    "overloaded",
                    "tenant queue is full",
                ),
                Err(SubmitError::ShuttingDown) => {
                    respond_error(conn, 503, None, keep, "shutting-down", "front-end is draining")
                }
                Err(SubmitError::DeadlineExceeded) => respond_error(
                    conn,
                    429,
                    None,
                    keep,
                    "deadline-exceeded",
                    "queueing deadline elapsed before the task was dispatched",
                ),
                Err(SubmitError::Service(err)) => {
                    let status = match err {
                        ServiceError::UnknownPool(_) => 404,
                        _ => 422,
                    };
                    respond_error(conn, status, None, keep, error_kind(&err), &err.to_string())
                }
            }
        }
        ("POST", "/v1/pools") => {
            if frontend.is_shutting_down() {
                return respond_error(
                    conn,
                    503,
                    None,
                    keep,
                    "shutting-down",
                    "front-end is draining",
                );
            }
            if let Some(err) = refuse_follower_write(conn, frontend, keep) {
                return err;
            }
            let parsed: Result<CreatePool, _> = parse_body(&request.body);
            match parsed {
                Ok(create) => {
                    let pool = frontend.with_service(|s| s.create_pool(create.jurors));
                    respond_ok(conn, keep, &PoolCreated { pool })
                }
                Err(msg) => {
                    count_malformed(frontend);
                    respond_error(conn, 400, None, keep, "bad-request", &msg)
                }
            }
        }
        ("POST", "/v1/snapshot") => {
            if let Some(err) = refuse_follower_write(conn, frontend, keep) {
                return err;
            }
            let dir = match snapshot_dir(&request.body, frontend) {
                Ok(dir) => dir,
                Err(msg) => {
                    count_malformed(frontend);
                    return respond_error(conn, 422, None, keep, "bad-request", &msg);
                }
            };
            match frontend.with_service(|s| s.snapshot(&dir)) {
                Ok(report) => respond_ok(conn, keep, &report),
                // Another live writer owns the directory, or this
                // writer was fenced out: the request conflicts with
                // the directory's current owner, not with anything the
                // caller can fix by rewording — 409.
                Err(e @ (SnapshotError::LeaseHeld { .. } | SnapshotError::Fenced { .. })) => {
                    respond_error(conn, 409, None, keep, "snapshot-conflict", &e.to_string())
                }
                // A partial failure committed nothing (readers still
                // see the previous generation) but must not masquerade
                // as success: a structured 500 carrying the counts.
                Err(SnapshotError::Partial { written, failed, error }) => {
                    use serde::Serialize as _;
                    let body = serde::json::to_string(&serde::Value::object([
                        ("ok", false.to_value()),
                        (
                            "error",
                            serde::Value::object([
                                ("kind", "snapshot-partial".to_value()),
                                (
                                    "message",
                                    format!(
                                        "snapshot partially failed, no manifest committed: {error}"
                                    )
                                    .to_value(),
                                ),
                                ("written", written.to_value()),
                                ("failed", failed.to_value()),
                            ]),
                        ),
                    ]));
                    proto::write_response(&mut conn.stream, 500, None, keep, &body)
                }
                Err(e) => respond_error(conn, 500, None, keep, "snapshot-failed", &e.to_string()),
            }
        }
        ("POST", "/debug/panic") if frontend.debug_fault_routes() => {
            panic!("debug fault injection requested via /debug/panic")
        }
        ("GET", "/stats") => {
            use serde::Serialize;
            let service = frontend.service_stats();
            let entries = frontend.artifact_entries();
            let stats = serde::Value::object([
                ("service", service.to_value()),
                ("frontend", frontend.stats().to_value()),
                ("artifact_entries", entries.to_value()),
            ]);
            respond_ok(conn, keep, &stats)
        }
        // Liveness: always 200 while the process serves HTTP at all —
        // a follower is alive, a draining front-end is alive. The body
        // carries role, generation and lag for operators and tests.
        ("GET", "/healthz") => respond_ok(conn, keep, &health_payload(frontend)),
        // Readiness: 503 while draining (load balancers should stop
        // routing here), 200 in both serving roles — followers answer
        // solves, so they are ready.
        ("GET", "/readyz") => {
            if frontend.is_shutting_down() {
                respond_error(conn, 503, None, keep, "shutting-down", "front-end is draining")
            } else {
                respond_ok(conn, keep, &health_payload(frontend))
            }
        }
        _ => {
            count_malformed(frontend);
            respond_error(conn, 404, None, keep, "not-found", "no such route")
        }
    }
}

/// Refuses a mutating route on a follower with 503 + the leader hint
/// (see the `jury-service` crate docs' *failover contract*): solves
/// keep flowing in both roles, writes belong to the writer. Returns
/// `None` on a writer so the route proceeds.
fn refuse_follower_write(
    conn: &mut Conn,
    frontend: &Arc<Frontend>,
    keep: bool,
) -> Option<io::Result<()>> {
    if frontend.role() != Role::Follower {
        return None;
    }
    let message = match frontend.leader_hint() {
        Some(leader) => format!("this front-end is a follower; the writer is \"{leader}\""),
        None => "this front-end is a follower; no writer is currently known".to_string(),
    };
    Some(respond_error(conn, 503, None, keep, "not-leader", &message))
}

/// The `/healthz` / `/readyz` body: current role, the snapshot
/// generation the service reads from, its lag, and the drain flag.
fn health_payload(frontend: &Arc<Frontend>) -> serde::Value {
    use serde::Serialize as _;
    let stats = frontend.service_stats();
    let (generation, lag_ms) = match frontend.role() {
        Role::Writer => (stats.snapshot_generation, stats.snapshot_age_ms),
        Role::Follower => (stats.follower_generation, stats.follower_lag_ms),
    };
    serde::Value::object([
        ("role", frontend.role().to_string().to_value()),
        ("generation", generation.to_value()),
        ("lag_ms", lag_ms.to_value()),
        ("draining", frontend.is_shutting_down().to_value()),
    ])
}

/// The snapshot target for `POST /v1/snapshot`: an explicit `{"dir"}`
/// in the body wins, else the service's configured `snapshot_dir`, else
/// the request is unprocessable.
fn snapshot_dir(body: &[u8], frontend: &Frontend) -> Result<std::path::PathBuf, String> {
    use serde::Deserialize as _;
    if !body.is_empty() {
        let value: serde::Value = {
            let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
            serde::json::parse(text).map_err(|e| e.to_string())?
        };
        if let Some(dir) = value.get("dir") {
            let dir = String::from_value(dir).map_err(|e| e.to_string())?;
            return Ok(std::path::PathBuf::from(dir));
        }
    }
    frontend
        .with_service(|s| s.config().snapshot_dir.clone())
        .ok_or_else(|| "no \"dir\" in body and no snapshot_dir configured".to_string())
}

fn error_kind(err: &ServiceError) -> &'static str {
    match err {
        ServiceError::UnknownPool(_) => "unknown-pool",
        ServiceError::JurorOutOfRange { .. } => "juror-out-of-range",
        ServiceError::Solver(_) => "solver",
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    serde::json::from_str(text).map_err(|e| e.to_string())
}

struct SolveRequest {
    tenant: String,
    task: DecisionTask,
}

impl serde::Deserialize for SolveRequest {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let tenant = value
            .get("tenant")
            .ok_or_else(|| serde::Error::missing_field("tenant"))
            .and_then(String::from_value)?;
        let task = value.get("task").ok_or_else(|| serde::Error::missing_field("task"))?;
        Ok(Self { tenant, task: DecisionTask::from_value(task)? })
    }
}

struct CreatePool {
    jurors: Vec<jury_core::juror::Juror>,
}

impl serde::Deserialize for CreatePool {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let jurors = value.get("jurors").ok_or_else(|| serde::Error::missing_field("jurors"))?;
        Ok(Self { jurors: Vec::from_value(jurors)? })
    }
}

struct PoolCreated {
    pool: jury_service::PoolId,
}

impl serde::Serialize for PoolCreated {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([("pool", self.pool.to_value())])
    }
}
