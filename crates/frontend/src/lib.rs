//! Coalescing HTTP/1.1 front-end for the jury-selection service.
//!
//! The serving library ([`jury_service`]) solves decision tasks at
//! millions per second *when handed batches*; real micro-blog traffic
//! arrives as independent single-task requests. This crate closes that
//! gap with an [adaptive coalescing queue](coalesce) that merges
//! concurrent arrivals into `solve_batch_shared` windows, plus a
//! std-only HTTP layer (no async runtime — a dedicated acceptor thread
//! and a small worker pool over [`std::net`], matching the workspace's
//! offline vendored-shim approach).
//!
//! # Protocol
//!
//! JSON over HTTP/1.1 with keep-alive; `Content-Length` framing only.
//! Every response body is a [`jury_core::wire::Envelope`]:
//! `{"ok": true, "result": …}` or
//! `{"ok": false, "error": {"kind": …, "message": …}}` (plus
//! `retry_after_ms` on backpressure refusals, mirrored in the HTTP
//! `Retry-After` header).
//!
//! | Route | Body | Result |
//! |---|---|---|
//! | `POST /v1/solve` | `{"tenant": "…", "task": {"pool": N, "task": {"model": "altruism"}}}` | the [`Selection`](jury_core::problem::Selection) |
//! | `POST /v1/pools` | `{"jurors": [{"id": …, "error_rate": …, "cost": …}, …]}` | `{"pool": N}` |
//! | `GET /stats` | — | `{"service": ServiceStats, "frontend": FrontendStats, "artifact_entries": N}` |
//! | `GET /healthz` | — | `{"role": "writer"\|"follower", "generation": N, "lag_ms": N, "draining": bool}` — 200 while the process serves at all |
//! | `GET /readyz` | — | same body; `503` while draining |
//!
//! PayM tasks use `{"model": "pay-as-you-go", "budget": b}` — the
//! adjacently-tagged [`jury_core::model::CrowdModel`] wire form.
//!
//! Error statuses: `400` malformed request (JSON or framing), `404`
//! unknown route or pool, `413` oversized body, `429` tenant queue full
//! (with `Retry-After`), `503` shutting down — or, on a follower
//! front-end ([`FrontendConfig::follower_watch`]), a mutating route
//! refused with kind `not-leader` and the current writer's identity in
//! the message (solves keep flowing in both roles). Protocol failures
//! never kill the acceptor and never poison a coalescing window: the
//! worker answers (or abandons a half-read connection) and moves on.
//!
//! # Coalescing window semantics & backpressure
//!
//! See the [`coalesce`] module docs: windows are keyed by
//! `(tenant, pool)`, close on max-batch / max-delay / idle-service
//! (whichever first), solo arrivals on an idle service solve inline on
//! the handler thread, and per-tenant admission control refuses work
//! beyond [`FrontendConfig::queue_capacity`] *before* it queues.
//! Graceful [`shutdown`](Frontend::shutdown) stops admitting, drains
//! every queued window (each waiter still gets its answer), then hands
//! the wrapped [`JuryService`](jury_service::JuryService) back.

pub mod client;
mod coalesce;
mod http;
mod proto;

pub use coalesce::{Frontend, FrontendConfig, FrontendStats, Role, SubmitError};
pub use http::HttpServer;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

impl Serialize for FrontendStats {
    fn to_value(&self) -> Value {
        Value::object([
            ("requests", self.requests.to_value()),
            ("inline_solves", self.inline_solves.to_value()),
            ("coalesced_windows", self.coalesced_windows.to_value()),
            ("coalesced_tasks", self.coalesced_tasks.to_value()),
            ("max_window_occupancy", self.max_window_occupancy.to_value()),
            ("queue_rejections", self.queue_rejections.to_value()),
            ("queue_depth_highwater", self.queue_depth_highwater.to_value()),
            ("malformed_requests", self.malformed_requests.to_value()),
            ("queue_wait_nanos", self.queue_wait_nanos.to_value()),
            ("solve_nanos", self.solve_nanos.to_value()),
            ("deadline_rejections", self.deadline_rejections.to_value()),
            ("worker_panics", self.worker_panics.to_value()),
            ("checkpoints", self.checkpoints.to_value()),
            ("checkpoint_failures", self.checkpoint_failures.to_value()),
            ("promotions", self.promotions.to_value()),
            ("demotions", self.demotions.to_value()),
        ])
    }
}

impl Deserialize for FrontendStats {
    /// Missing counters read as zero and unknown counters are ignored,
    /// so `/stats` consumers keep working across front-end versions.
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if !matches!(value, Value::Object(_)) {
            return Err(SerdeError::expected("a front-end stats object", value));
        }
        let counter = |name: &str| -> Result<u64, SerdeError> {
            value.get(name).map_or(Ok(0), u64::from_value)
        };
        Ok(Self {
            requests: counter("requests")?,
            inline_solves: counter("inline_solves")?,
            coalesced_windows: counter("coalesced_windows")?,
            coalesced_tasks: counter("coalesced_tasks")?,
            max_window_occupancy: counter("max_window_occupancy")?,
            queue_rejections: counter("queue_rejections")?,
            queue_depth_highwater: counter("queue_depth_highwater")?,
            malformed_requests: counter("malformed_requests")?,
            queue_wait_nanos: counter("queue_wait_nanos")?,
            solve_nanos: counter("solve_nanos")?,
            deadline_rejections: counter("deadline_rejections")?,
            worker_panics: counter("worker_panics")?,
            checkpoints: counter("checkpoints")?,
            checkpoint_failures: counter("checkpoint_failures")?,
            promotions: counter("promotions")?,
            demotions: counter("demotions")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;

    #[test]
    fn frontend_stats_round_trip() {
        let stats = FrontendStats {
            requests: 101,
            inline_solves: 7,
            coalesced_windows: 5,
            coalesced_tasks: 94,
            max_window_occupancy: 40,
            queue_rejections: 3,
            queue_depth_highwater: 61,
            malformed_requests: 2,
            queue_wait_nanos: 123_456_789,
            solve_nanos: 42_000,
            deadline_rejections: 6,
            worker_panics: 1,
            checkpoints: 12,
            checkpoint_failures: 4,
            promotions: 2,
            demotions: 1,
        };
        let text = json::to_string(&stats);
        let back: FrontendStats = json::from_str(&text).unwrap();
        assert_eq!(back, stats);

        let lax: FrontendStats = json::from_str(r#"{"requests": 9, "new_counter": 1}"#).unwrap();
        assert_eq!(lax, FrontendStats { requests: 9, ..Default::default() });
        assert!(json::from_str::<FrontendStats>("[]").is_err());
    }
}
