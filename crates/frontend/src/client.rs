//! A small blocking keep-alive client for the front-end's protocol —
//! used by the integration tests, the example, and the load generator's
//! over-the-wire spot checks. One [`Client`] is one connection.

use jury_core::problem::Selection;
use jury_core::wire::{Envelope, WireError};
use jury_service::{DecisionTask, PoolId, ServiceStats};
use serde::{json, Deserialize, Serialize, Value};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::coalesce::FrontendStats;
use crate::proto::find_head_end;

/// One HTTP response: status, optional `Retry-After` (milliseconds, as
/// hinted by the error body when present, else the header), and the
/// decoded envelope.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The decoded body envelope, already split ok/err.
    pub result: Result<Value, WireError>,
}

/// Combined `/stats` payload.
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot {
    /// The wrapped service's counters.
    pub service: ServiceStats,
    /// The front-end's counters.
    pub frontend: FrontendStats,
    /// Interned warm-artifact entries.
    pub artifact_entries: usize,
}

/// How [`Client::submit_with_retry`] spaces its attempts: capped
/// exponential backoff with decorrelated jitter, overridden by any
/// `Retry-After` the server sends (its hint is authoritative — it
/// knows its backlog's drain time; the client merely caps it).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, the first included. 0 behaves as 1.
    pub max_attempts: usize,
    /// First backoff, and the lower bound of every jittered draw.
    pub base: Duration,
    /// Upper bound on any single backoff, server-hinted or drawn.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 8, base: Duration::from_millis(10), cap: Duration::from_secs(1) }
    }
}

/// A blocking HTTP/1.1 keep-alive connection to a front-end.
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
    /// The resolved peer, kept so retries can transparently reconnect
    /// after the server restarts.
    addr: SocketAddr,
    /// splitmix64 state for backoff jitter.
    jitter: u64,
}

impl Client {
    /// Connects to a running [`crate::HttpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        // Seed jitter from the ephemeral local port: deterministic per
        // connection, distinct across concurrent clients.
        let seed =
            0x9e37_79b9_7f4a_7c15u64 ^ u64::from(stream.local_addr().map_or(0, |a| a.port()));
        Ok(Self { stream, pending: Vec::new(), addr, jitter: seed })
    }

    /// Drops the (possibly dead) connection and dials the same peer
    /// again. Any half-read response is discarded.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.pending.clear();
        Ok(())
    }

    /// Sends one request and decodes the envelope. `body = None` sends
    /// no `Content-Length` payload (GET).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: jury\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len(),
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `POST /v1/solve` for `tenant`; `Ok(Err(_))` is a structured
    /// refusal (backpressure, unknown pool, solver error), `Err(_)` a
    /// transport failure.
    pub fn solve(
        &mut self,
        tenant: &str,
        task: &DecisionTask,
    ) -> io::Result<Result<Selection, WireError>> {
        self.solve_once(tenant, task).map(|(_, result)| result)
    }

    fn solve_once(
        &mut self,
        tenant: &str,
        task: &DecisionTask,
    ) -> io::Result<(u16, Result<Selection, WireError>)> {
        let body = json::to_string(&Value::object([
            ("tenant", tenant.to_value()),
            ("task", task.to_value()),
        ]));
        let response = self.request("POST", "/v1/solve", Some(&body))?;
        let status = response.status;
        let result = response.result.and_then(|value| {
            Selection::from_value(&value).map_err(|e| WireError::new("bad-response", e.to_string()))
        });
        Ok((status, result))
    }

    /// [`Client::solve`] with transparent retries: `429` and `503`
    /// refusals (backpressure, drain, a follower without a writer) and
    /// transport failures (connection reset by a restarting server —
    /// reconnects to the same peer) are retried up to
    /// [`RetryPolicy::max_attempts`], sleeping the server's
    /// `Retry-After` hint when one is sent, else a decorrelated-jitter
    /// backoff (`min(cap, uniform(base, 3·previous))`). Anything else —
    /// success, a 4xx the caller must fix, a malformed response — is
    /// returned immediately. When attempts run out the last retryable
    /// outcome is returned as-is, so callers see exactly what the
    /// server last said.
    pub fn submit_with_retry(
        &mut self,
        tenant: &str,
        task: &DecisionTask,
        policy: &RetryPolicy,
    ) -> io::Result<Result<Selection, WireError>> {
        let attempts = policy.max_attempts.max(1);
        let mut previous = policy.base;
        let mut broken = false;
        let mut attempt = 0;
        loop {
            if broken {
                match self.reconnect() {
                    Ok(()) => broken = false,
                    // Server still down: a failed dial is a failed
                    // attempt — keep backing off.
                    Err(e) => {
                        attempt += 1;
                        if attempt >= attempts {
                            return Err(e);
                        }
                        previous = self.backoff(policy, previous, None);
                        continue;
                    }
                }
            }
            match self.solve_once(tenant, task) {
                Ok((status, result)) => match result {
                    Err(err) if status == 429 || status == 503 => {
                        attempt += 1;
                        if attempt >= attempts {
                            return Ok(Err(err));
                        }
                        let hint = err.retry_after_ms.map(Duration::from_millis);
                        previous = self.backoff(policy, previous, hint);
                    }
                    other => return Ok(other),
                },
                Err(transport) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(transport);
                    }
                    broken = true;
                    previous = self.backoff(policy, previous, None);
                }
            }
        }
    }

    /// Sleeps one backoff and returns it (the next draw's upper-bound
    /// seed). The server's hint wins when present; both are capped.
    fn backoff(
        &mut self,
        policy: &RetryPolicy,
        previous: Duration,
        hint: Option<Duration>,
    ) -> Duration {
        let delay = match hint {
            Some(hinted) => hinted.clamp(policy.base, policy.cap),
            None => {
                // Decorrelated jitter: uniform in [base, 3·previous].
                self.jitter = self.jitter.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.jitter;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                let lo = policy.base.as_nanos() as u64;
                let hi = (previous.as_nanos() as u64).saturating_mul(3).max(lo + 1);
                Duration::from_nanos(lo + z % (hi - lo)).min(policy.cap)
            }
        };
        std::thread::sleep(delay);
        delay.max(policy.base)
    }

    /// `POST /v1/pools`.
    pub fn create_pool(
        &mut self,
        jurors: &[jury_core::juror::Juror],
    ) -> io::Result<Result<PoolId, WireError>> {
        let body = json::to_string(&Value::object([("jurors", jurors.to_vec().to_value())]));
        let response = self.request("POST", "/v1/pools", Some(&body))?;
        Ok(response.result.and_then(|value| {
            value
                .get("pool")
                .ok_or_else(|| WireError::new("bad-response", "missing pool id"))
                .and_then(|v| {
                    PoolId::from_value(v).map_err(|e| WireError::new("bad-response", e.to_string()))
                })
        }))
    }

    /// `GET /stats`.
    pub fn stats(&mut self) -> io::Result<Result<StatsSnapshot, WireError>> {
        let response = self.request("GET", "/stats", None)?;
        Ok(response.result.and_then(|value| {
            let field = |name: &str| {
                value.get(name).ok_or_else(|| WireError::new("bad-response", "missing field"))
            };
            let bad = |e: serde::Error| WireError::new("bad-response", e.to_string());
            Ok(StatsSnapshot {
                service: ServiceStats::from_value(field("service")?).map_err(bad)?,
                frontend: FrontendStats::from_value(field("frontend")?).map_err(bad)?,
                artifact_entries: usize::from_value(field("artifact_entries")?).map_err(bad)?,
            })
        }))
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.pending.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let head_end = loop {
            if let Some(end) = find_head_end(&self.pending) {
                break end;
            }
            if self.fill()? == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
        };
        let head = String::from_utf8_lossy(&self.pending[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad length"))?;
                }
            }
        }
        let body_end = head_end + 4 + content_length;
        while self.pending.len() < body_end {
            if self.fill()? == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
        }
        let mut consumed: Vec<u8> = self.pending.drain(..body_end).collect();
        let body = consumed.split_off(head_end + 4);
        let text = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        let envelope: Envelope = json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(Response { status, result: envelope.into_result() })
    }
}
