//! The adaptive coalescing engine: concurrent single-task submissions
//! are merged into [`JuryService::solve_batch_shared`] windows keyed by
//! `(tenant, pool)`, so N arrivals that replay one cached answer cost
//! one solver pass plus N `Arc` bumps instead of N passes.
//!
//! # Window semantics
//!
//! A window opens when the first task for its `(tenant, pool)` key is
//! queued and closes — becoming a dispatched batch — on the first of:
//!
//! * **max-batch**: the window holds [`FrontendConfig::max_batch`] tasks;
//! * **max-delay**: the window's *oldest* task has waited
//!   [`FrontendConfig::max_delay`] (the p99 latency knob — under any
//!   load, no admitted task waits longer than `max_delay` plus one
//!   in-flight window's solve time before its solve begins);
//! * **idle service**: the solver is free and no other window is ready —
//!   adaptive greedy dispatch, so light load pays solve latency, not the
//!   full delay bound, while heavy load accumulates occupancy behind the
//!   in-flight window.
//!
//! An idle front-end skips the machinery entirely: a submission that
//! finds zero queued tasks and an uncontended solver solves inline on
//! the caller thread ([`JuryService`]'s own small-batch fast path), so
//! batch-1 latency matches the bare library call.
//!
//! # Backpressure contract
//!
//! Admission control is per tenant: each tenant may hold at most
//! [`FrontendConfig::queue_capacity`] queued tasks across its windows.
//! The submission that would exceed the cap is refused *immediately*
//! with [`SubmitError::Overloaded`], never queued — a slow tenant
//! cannot grow another tenant's tail. Refusals are counted in
//! [`FrontendStats::queue_rejections`].
//!
//! The refusal's `retry_after` hint scales with the backlog: it is the
//! queued-window count times the mean per-window solve time observed
//! so far (floored at one `max_delay`, which is also the estimate
//! before any window has been dispatched). A tenant refused behind a
//! deep backlog is told to come back after the backlog's expected
//! drain time, not after one window's delay bound.

use jury_core::problem::Selection;
use jury_service::{
    DecisionTask, JuryService, PoolId, ServiceError, ServiceStats, SnapshotError, SnapshotWatcher,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for the coalescing front-end.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Tasks per window before it closes regardless of age. Values at or
    /// above the service's internal small-batch threshold (32) let a
    /// full window take the multi-task solver path.
    pub max_batch: usize,
    /// Oldest-task age at which a window closes regardless of occupancy
    /// — the latency bound traded against batching opportunity.
    pub max_delay: Duration,
    /// Per-tenant cap on queued tasks; the submission that would exceed
    /// it is refused with a 429-style [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// End-to-end queueing budget per task. With `Some(budget)`, a task
    /// still queued when its window dispatches *after* the budget has
    /// elapsed is refused with [`SubmitError::DeadlineExceeded`]
    /// (counted in [`FrontendStats::deadline_rejections`]) instead of
    /// being solved — the client has already given up on it, and the
    /// solver's time goes to tasks whose answers will still be read.
    /// `None` (the default) never refuses on age. The check is at
    /// dispatch time: admission stays cheap, and a task the solver can
    /// reach in time is never refused pre-emptively.
    pub deadline: Option<Duration>,
    /// Enables the `/debug/panic` fault-injection route on the HTTP
    /// layer — a handler that panics on purpose, for proving worker
    /// panic isolation. Off by default; never enable in production.
    pub debug_fault_routes: bool,
    /// With `Some(interval)`, a checkpoint thread calls the service's
    /// `snapshot()` every `interval` under live churn (incremental:
    /// only dirty entries are rewritten). A failed checkpoint is
    /// counted in [`FrontendStats::checkpoint_failures`] and backs off
    /// by doubling the wait, capped at 8× the interval; the next
    /// success resets it. `None` (the default) checkpoints only on
    /// graceful drain. Requires the service to have a `snapshot_dir`.
    pub checkpoint_interval: Option<Duration>,
    /// With `Some(interval)`, the front-end starts as a warm
    /// **follower** (see the `jury-service` crate docs' *failover
    /// contract*) and the checkpoint thread becomes a role-aware
    /// supervisor polling the service's `snapshot_dir` roughly every
    /// `interval` (±25% jitter). Follower ticks adopt newer committed
    /// generations without restart and probe for promotion — a stale
    /// or absent writer lease promotes this front-end to **writer**,
    /// after which ticks checkpoint exactly like
    /// [`FrontendConfig::checkpoint_interval`] (which, when also set,
    /// provides the writer-role cadence). A fenced checkpoint demotes
    /// back to follower. Solves flow in both roles; mutating routes
    /// answer 503 plus a leader hint on followers. `None` (the
    /// default): the front-end is a plain writer from the start and
    /// never demotes.
    pub follower_watch: Option<Duration>,
}

/// The supervisor role a front-end is currently serving in (see
/// [`FrontendConfig::follower_watch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Holds (or is entitled to take) the writer lease: checkpoints
    /// periodically and accepts mutations.
    Writer,
    /// Serves solves from adopted generations, refuses mutations, and
    /// probes for promotion.
    Follower,
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Writer => "writer",
            Self::Follower => "follower",
        })
    }
}

const ROLE_WRITER: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_millis(25),
            queue_capacity: 1024,
            deadline: None,
            debug_fault_routes: false,
            checkpoint_interval: None,
            follower_watch: None,
        }
    }
}

/// Why a submission was not solved.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The tenant's queue is full; retry after the hinted delay.
    Overloaded {
        /// Backoff hint, surfaced as HTTP `Retry-After`.
        retry_after: Duration,
    },
    /// The front-end is draining for shutdown; no new work is admitted.
    ShuttingDown,
    /// The task's [`FrontendConfig::deadline`] budget was already blown
    /// when its window dispatched; it was refused unsolved.
    DeadlineExceeded,
    /// The service refused the task (unknown pool, solver error, …).
    Service(ServiceError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { retry_after } => {
                write!(f, "tenant queue full, retry after {retry_after:?}")
            }
            Self::ShuttingDown => write!(f, "front-end is shutting down"),
            Self::DeadlineExceeded => write!(f, "queueing deadline exceeded before dispatch"),
            Self::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Monotone counters describing the front-end's traffic so far (the
/// `/stats` payload next to [`ServiceStats`]). All counters are updated
/// with relaxed atomics — they are observability, not synchronization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Submissions admitted (inline + queued), excluding rejections.
    pub requests: u64,
    /// Submissions solved inline on the caller thread (idle fast path).
    pub inline_solves: u64,
    /// Windows dispatched through the coalescing queue.
    pub coalesced_windows: u64,
    /// Tasks carried by those windows (mean occupancy =
    /// `coalesced_tasks / coalesced_windows`).
    pub coalesced_tasks: u64,
    /// Largest single-window occupancy seen.
    pub max_window_occupancy: u64,
    /// Submissions refused by per-tenant admission control.
    pub queue_rejections: u64,
    /// High-water mark of tasks queued across all windows.
    pub queue_depth_highwater: u64,
    /// Requests the HTTP layer refused before reaching the queue
    /// (malformed JSON, oversized bodies, unknown routes).
    pub malformed_requests: u64,
    /// Total queueing delay (enqueue → window dispatch) over all
    /// coalesced tasks, in nanoseconds.
    pub queue_wait_nanos: u64,
    /// Total solver time attributed to coalesced tasks, in nanoseconds
    /// (per-task durations from the service's timing hook, summed).
    pub solve_nanos: u64,
    /// Queued tasks refused at dispatch because their
    /// [`FrontendConfig::deadline`] budget had already elapsed.
    pub deadline_rejections: u64,
    /// Request handlers that panicked. Each cost its connection only:
    /// the worker caught the unwind, answered a best-effort 500 and
    /// went back to the accept loop.
    pub worker_panics: u64,
    /// Periodic checkpoints that committed (timer thread; the final
    /// drain snapshot is not counted here).
    pub checkpoints: u64,
    /// Periodic checkpoints that failed (lease contention, fencing,
    /// I/O). Each failure doubles the timer's wait, capped at 8× the
    /// configured interval.
    pub checkpoint_failures: u64,
    /// Follower → writer transitions: a supervisor tick found the
    /// writer lease stale (or absent), broke it by epoch bump, and
    /// committed — this front-end now checkpoints.
    pub promotions: u64,
    /// Writer → follower transitions: a checkpoint came back fenced
    /// (another writer holds a higher epoch), so this front-end
    /// stepped back to adopting generations.
    pub demotions: u64,
}

#[derive(Default)]
pub(crate) struct Counters {
    requests: AtomicU64,
    inline_solves: AtomicU64,
    coalesced_windows: AtomicU64,
    coalesced_tasks: AtomicU64,
    max_window_occupancy: AtomicU64,
    queue_rejections: AtomicU64,
    queue_depth_highwater: AtomicU64,
    pub(crate) malformed_requests: AtomicU64,
    queue_wait_nanos: AtomicU64,
    solve_nanos: AtomicU64,
    deadline_rejections: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_failures: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> FrontendStats {
        FrontendStats {
            requests: self.requests.load(Ordering::Relaxed),
            inline_solves: self.inline_solves.load(Ordering::Relaxed),
            coalesced_windows: self.coalesced_windows.load(Ordering::Relaxed),
            coalesced_tasks: self.coalesced_tasks.load(Ordering::Relaxed),
            max_window_occupancy: self.max_window_occupancy.load(Ordering::Relaxed),
            queue_rejections: self.queue_rejections.load(Ordering::Relaxed),
            queue_depth_highwater: self.queue_depth_highwater.load(Ordering::Relaxed),
            malformed_requests: self.malformed_requests.load(Ordering::Relaxed),
            queue_wait_nanos: self.queue_wait_nanos.load(Ordering::Relaxed),
            solve_nanos: self.solve_nanos.load(Ordering::Relaxed),
            deadline_rejections: self.deadline_rejections.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
        }
    }

    fn raise_max(cell: &AtomicU64, seen: u64) {
        let mut current = cell.load(Ordering::Relaxed);
        while seen > current {
            match cell.compare_exchange_weak(current, seen, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => current = now,
            }
        }
    }
}

/// One queued submission's rendezvous: the dispatcher deposits the
/// result and signals; the submitting thread sleeps on the condvar.
struct Waiter {
    slot: Mutex<Option<Result<Arc<Selection>, SubmitError>>>,
    ready: Condvar,
    enqueued: Instant,
}

struct Window {
    tasks: Vec<DecisionTask>,
    waiters: Vec<Arc<Waiter>>,
    opened: Instant,
}

#[derive(Default)]
struct QueueState {
    windows: HashMap<(String, PoolId), Window>,
    tenant_pending: HashMap<String, usize>,
    total_pending: usize,
}

struct Shared {
    service: Mutex<JuryService>,
    queue: Mutex<QueueState>,
    /// Signals the dispatcher: new work queued, or shutdown requested.
    work: Condvar,
    config: FrontendConfig,
    counters: Counters,
    shutdown: AtomicBool,
    /// Parking spot for the checkpoint timer thread; `checkpoint_wake`
    /// is notified on shutdown so the thread exits promptly instead of
    /// sleeping out its interval.
    checkpoint_gate: Mutex<()>,
    checkpoint_wake: Condvar,
    /// [`ROLE_WRITER`] or [`ROLE_FOLLOWER`]; flipped only by the
    /// supervisor thread, read by routes and stats.
    role: AtomicU8,
    /// The lease holder a promotion probe last saw — surfaced to
    /// clients whose writes a follower refuses.
    leader_hint: Mutex<Option<String>>,
}

impl Shared {
    fn role(&self) -> Role {
        match self.role.load(Ordering::Acquire) {
            ROLE_FOLLOWER => Role::Follower,
            _ => Role::Writer,
        }
    }
}

/// The coalescing front-end around one [`JuryService`]. See the module
/// docs for window semantics and the backpressure contract.
///
/// `Frontend` is the transport-free core: [`Frontend::submit`] is the
/// whole request path, and the HTTP layer in [`crate::http`] is a thin
/// codec over it. Cloning the handle (`Arc` internally) shares the same
/// queue, dispatcher and service.
pub struct Frontend {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    checkpointer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Frontend {
    /// Starts the front-end over `service`, spawning the dispatcher
    /// thread that closes and solves coalescing windows.
    pub fn start(service: JuryService, config: FrontendConfig) -> Arc<Self> {
        let initial_role =
            if config.follower_watch.is_some() { ROLE_FOLLOWER } else { ROLE_WRITER };
        let shared = Arc::new(Shared {
            service: Mutex::new(service),
            queue: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            config,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            checkpoint_gate: Mutex::new(()),
            checkpoint_wake: Condvar::new(),
            role: AtomicU8::new(initial_role),
            leader_hint: Mutex::new(None),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("jury-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawn dispatcher")
        };
        let checkpointer = if let Some(watch) = shared.config.follower_watch {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("jury-supervisor".into())
                    .spawn(move || supervisor_loop(&shared, watch))
                    .expect("spawn supervisor"),
            )
        } else {
            shared.config.checkpoint_interval.map(|interval| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("jury-checkpoint".into())
                    .spawn(move || checkpoint_loop(&shared, interval))
                    .expect("spawn checkpointer")
            })
        };
        Arc::new(Self {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
            checkpointer: Mutex::new(checkpointer),
        })
    }

    /// Submits one task for `tenant`, blocking until it is solved (or
    /// refused). This is the complete admission → coalesce → solve path;
    /// see the module docs for when it solves inline versus queues.
    pub fn submit(&self, tenant: &str, task: DecisionTask) -> Result<Arc<Selection>, SubmitError> {
        let shared = &*self.shared;
        if shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let waiter;
        {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            // Re-checked under the queue lock: the dispatcher's exit
            // scan holds this lock, so a submission that sees the flag
            // clear here is guaranteed to be drained before exit.
            if shared.shutdown.load(Ordering::Acquire) {
                return Err(SubmitError::ShuttingDown);
            }
            let pending = queue.tenant_pending.get(tenant).copied().unwrap_or(0);
            if pending >= shared.config.queue_capacity {
                shared.counters.queue_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded { retry_after: retry_hint(shared, &queue) });
            }
            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
            if queue.total_pending == 0 {
                // Idle fast path: nothing queued and the solver free —
                // solve on this thread through the service's own
                // small-batch path. The dispatcher cannot be starved:
                // with zero pending tasks it has nothing to dispatch.
                if let Ok(mut service) = shared.service.try_lock() {
                    drop(queue);
                    shared.counters.inline_solves.fetch_add(1, Ordering::Relaxed);
                    let mut out = service.solve_batch_shared(std::slice::from_ref(&task));
                    return out.pop().expect("one result per task").map_err(SubmitError::Service);
                }
            }
            waiter = Arc::new(Waiter {
                slot: Mutex::new(None),
                ready: Condvar::new(),
                enqueued: Instant::now(),
            });
            let key = (tenant.to_string(), task.pool);
            let window = queue.windows.entry(key).or_insert_with(|| Window {
                tasks: Vec::new(),
                waiters: Vec::new(),
                opened: Instant::now(),
            });
            window.tasks.push(task);
            window.waiters.push(Arc::clone(&waiter));
            *queue.tenant_pending.entry(tenant.to_string()).or_insert(0) += 1;
            queue.total_pending += 1;
            Counters::raise_max(&shared.counters.queue_depth_highwater, queue.total_pending as u64);
            shared.work.notify_one();
        }
        let mut slot = waiter.slot.lock().expect("waiter poisoned");
        while slot.is_none() {
            slot = waiter.ready.wait(slot).expect("waiter poisoned");
        }
        slot.take().expect("checked above")
    }

    /// Runs `f` with exclusive access to the wrapped service — the
    /// mutation side-channel (juror churn, pool registration) and the
    /// test hook for holding the solver busy. Blocks dispatch while `f`
    /// runs; queued windows simply accumulate occupancy.
    pub fn with_service<R>(&self, f: impl FnOnce(&mut JuryService) -> R) -> R {
        let mut service = self.shared.service.lock().expect("service poisoned");
        f(&mut service)
    }

    /// Snapshot of the front-end counters.
    pub fn stats(&self) -> FrontendStats {
        self.shared.counters.snapshot()
    }

    /// Snapshot of the wrapped service's counters (blocks on the
    /// service lock like any solve).
    pub fn service_stats(&self) -> ServiceStats {
        self.with_service(|s| s.stats())
    }

    /// Count of interned warm-artifact entries in the service's store.
    pub fn artifact_entries(&self) -> usize {
        self.with_service(|s| s.artifact_entries())
    }

    pub(crate) fn counters(&self) -> &Counters {
        &self.shared.counters
    }

    pub(crate) fn debug_fault_routes(&self) -> bool {
        self.shared.config.debug_fault_routes
    }

    /// The supervisor role this front-end currently serves in. Always
    /// [`Role::Writer`] without [`FrontendConfig::follower_watch`].
    pub fn role(&self) -> Role {
        self.shared.role()
    }

    /// The writer-lease holder a promotion probe last observed — the
    /// leader hint a follower attaches to refused writes. `None` until
    /// a probe has seen a live foreign lease (or after a promotion).
    pub fn leader_hint(&self) -> Option<String> {
        self.shared.leader_hint.lock().expect("leader hint poisoned").clone()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stops admitting, lets the dispatcher drain
    /// every queued window (each waiter still receives its result), then
    /// returns the wrapped service. Idempotent across clones — only the
    /// first caller gets `Some(service)`.
    pub fn shutdown(&self) -> Option<JuryService> {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        self.shared.checkpoint_wake.notify_all();
        if let Some(ckpt) = self.checkpointer.lock().expect("checkpointer handle poisoned").take() {
            ckpt.join().expect("checkpointer panicked");
        }
        let handle = self.dispatcher.lock().expect("dispatcher handle poisoned").take()?;
        handle.join().expect("dispatcher panicked");
        let mut service = std::mem::replace(
            &mut *self.shared.service.lock().expect("service poisoned"),
            JuryService::new(),
        );
        // Graceful drain persists the warm store so the next process
        // starts warm, then hands the writer lease back so a successor
        // can start checkpointing without waiting out the ttl.
        // Best-effort: a failed write must not turn a clean shutdown
        // into an error. A draining *follower* skips this — taking the
        // lease on the way out would fence the live writer's epoch for
        // nothing.
        if self.shared.role() == Role::Writer {
            if let Some(dir) = service.config().snapshot_dir.clone() {
                let _ = service.snapshot(&dir);
                let _ = service.release_snapshot_lease(&dir);
            }
        }
        Some(service)
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Backoff hint for a refused submission: the backlog's expected drain
/// time — queued windows times the mean per-window solve time observed
/// so far — floored at one `max_delay` (also the per-window estimate
/// before the first window has been dispatched).
fn retry_hint(shared: &Shared, queue: &QueueState) -> Duration {
    let backlog = u32::try_from(queue.windows.len().max(1)).unwrap_or(u32::MAX);
    let per_window = shared
        .counters
        .solve_nanos
        .load(Ordering::Relaxed)
        .checked_div(shared.counters.coalesced_windows.load(Ordering::Relaxed))
        .map_or(shared.config.max_delay, Duration::from_nanos);
    shared.config.max_delay.max(per_window.saturating_mul(backlog))
}

/// Outcome of one queue scan: a batch to solve (with the service guard
/// when greedy dispatch already claimed it), or how long to sleep.
enum Dispatch<'a> {
    Batch {
        tasks: Vec<DecisionTask>,
        waiters: Vec<Arc<Waiter>>,
        service: Option<MutexGuard<'a, JuryService>>,
    },
    Sleep(Option<Duration>),
    Exit,
}

fn scan<'a>(shared: &'a Shared, queue: &mut QueueState, now: Instant) -> Dispatch<'a> {
    if queue.total_pending == 0 {
        if shared.shutdown.load(Ordering::Acquire) {
            return Dispatch::Exit;
        }
        return Dispatch::Sleep(None);
    }
    let draining = shared.shutdown.load(Ordering::Acquire);
    // Ready = full window, expired window, or (drain mode) anything.
    // Among ready windows take the oldest; otherwise remember the
    // earliest deadline to sleep toward.
    let mut ready: Option<(&(String, PoolId), Instant)> = None;
    let mut next_deadline: Option<Instant> = None;
    for (key, window) in &queue.windows {
        let full = window.tasks.len() >= shared.config.max_batch;
        let deadline = window.opened + shared.config.max_delay;
        if full || draining || now >= deadline {
            if ready.is_none_or(|(_, opened)| window.opened < opened) {
                ready = Some((key, window.opened));
            }
        } else if next_deadline.is_none_or(|d| deadline < d) {
            next_deadline = Some(deadline);
        }
    }
    // Adaptive greedy dispatch: nothing has hit its bound yet, but the
    // solver is idle — ship the oldest window now rather than letting
    // an idle solver wait out max_delay. `try_lock` under the queue
    // lock is safe: submitters take the same q → service order and
    // never block on the service while holding the queue.
    let mut claimed = None;
    if ready.is_none() {
        if let Ok(guard) = shared.service.try_lock() {
            claimed = Some(guard);
            ready = queue
                .windows
                .iter()
                .min_by_key(|(_, w)| w.opened)
                .map(|(key, window)| (key, window.opened));
        }
    }
    let Some((key, _)) = ready else {
        return Dispatch::Sleep(next_deadline.map(|d| d.saturating_duration_since(now)));
    };
    let key = key.clone();
    let window = queue.windows.get_mut(&key).expect("key just scanned");
    let take = window.tasks.len().min(shared.config.max_batch);
    let tasks: Vec<DecisionTask> = window.tasks.drain(..take).collect();
    let waiters: Vec<Arc<Waiter>> = window.waiters.drain(..take).collect();
    if window.tasks.is_empty() {
        queue.windows.remove(&key);
    } else {
        // Leftovers beyond max_batch start a fresh delay clock.
        window.opened = now;
    }
    queue.total_pending -= tasks.len();
    if let Some(pending) = queue.tenant_pending.get_mut(&key.0) {
        *pending = pending.saturating_sub(tasks.len());
        if *pending == 0 {
            queue.tenant_pending.remove(&key.0);
        }
    }
    Dispatch::Batch { tasks, waiters, service: claimed }
}

/// The checkpoint timer: snapshots the service every `interval` so a
/// crash loses at most one interval of warmth. Failures (lease held by
/// another process, fenced, I/O) double the wait — capped at 8× the
/// interval — so a contended directory is not hammered; the next
/// success resets the cadence. Exits as soon as shutdown is flagged
/// (the drain path takes its own final snapshot).
fn checkpoint_loop(shared: &Shared, interval: Duration) {
    let cap = interval.saturating_mul(8);
    let mut wait = interval;
    let mut gate = shared.checkpoint_gate.lock().expect("checkpoint gate poisoned");
    loop {
        let (g, _) =
            shared.checkpoint_wake.wait_timeout(gate, wait).expect("checkpoint gate poisoned");
        gate = g;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let outcome = {
            let mut service = shared.service.lock().expect("service poisoned");
            // No directory to checkpoint into means nothing this
            // thread can ever do — it parks until shutdown below.
            service.config().snapshot_dir.clone().map(|dir| service.snapshot(&dir))
        };
        match outcome {
            None => wait = Duration::from_secs(3600),
            Some(Ok(_)) => {
                shared.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                wait = interval;
            }
            Some(Err(_)) => {
                shared.counters.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                wait = wait.saturating_mul(2).min(cap);
            }
        }
    }
}

/// The role-aware supervisor (see [`FrontendConfig::follower_watch`]):
/// one thread that is a generation watcher + promotion prober while
/// the front-end follows, and the checkpoint timer while it writes.
///
/// * **Follower tick.** First adopt: a jittered [`SnapshotWatcher`]
///   poll (directory-mtime fast path) detects newer committed
///   generations and [`JuryService::adopt_snapshot`] hot-swaps them in
///   — solves keep flowing throughout; the service lock is held only
///   for the swap itself. Then probe: one `snapshot()` attempt. A live
///   foreign lease refuses it (`LeaseHeld` — the holder id is recorded
///   as the leader hint); a stale or absent one is broken by epoch
///   bump and the commit *is* the promotion.
/// * **Writer tick.** Checkpoint exactly like [`checkpoint_loop`]
///   (failure backoff included), except [`SnapshotError::Fenced`]
///   demotes back to follower instead of merely counting a failure:
///   another writer holds a higher epoch, and this one's next ticks
///   should adopt that writer's generations, not fight it.
fn supervisor_loop(shared: &Shared, watch: Duration) {
    let dir = {
        let service = shared.service.lock().expect("service poisoned");
        service.config().snapshot_dir.clone()
    };
    let Some(dir) = dir else {
        // Nothing to watch or checkpoint — park until shutdown.
        let mut gate = shared.checkpoint_gate.lock().expect("checkpoint gate poisoned");
        while !shared.shutdown.load(Ordering::Acquire) {
            let (g, _) = shared
                .checkpoint_wake
                .wait_timeout(gate, Duration::from_secs(3600))
                .expect("checkpoint gate poisoned");
            gate = g;
        }
        return;
    };
    let mut watcher = SnapshotWatcher::new(&dir, watch);
    {
        // Seed the watch with whatever generation the service restored
        // at startup, so a quiet directory settles onto the stat-only
        // fast path instead of rescanning an already-adopted commit.
        let service = shared.service.lock().expect("service poisoned");
        watcher.observe(service.stats().follower_generation as u64);
    }
    let checkpoint_every = shared.config.checkpoint_interval.unwrap_or(watch);
    let cap = checkpoint_every.saturating_mul(8);
    let mut wait = watcher.next_wait();
    let mut gate = shared.checkpoint_gate.lock().expect("checkpoint gate poisoned");
    loop {
        let (g, _) =
            shared.checkpoint_wake.wait_timeout(gate, wait).expect("checkpoint gate poisoned");
        gate = g;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match shared.role() {
            Role::Follower => {
                if watcher.poll().is_some() {
                    let adopted = {
                        let mut service = shared.service.lock().expect("service poisoned");
                        service.adopt_snapshot()
                    };
                    if let Some(report) = adopted {
                        watcher.observe(report.generation);
                    }
                }
                let probe = {
                    let mut service = shared.service.lock().expect("service poisoned");
                    service.snapshot(&dir)
                };
                match probe {
                    Ok(_) => {
                        shared.role.store(ROLE_WRITER, Ordering::Release);
                        *shared.leader_hint.lock().expect("leader hint poisoned") = None;
                        shared.counters.promotions.fetch_add(1, Ordering::Relaxed);
                        shared.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                        wait = checkpoint_every;
                    }
                    Err(SnapshotError::LeaseHeld { holder, .. }) => {
                        *shared.leader_hint.lock().expect("leader hint poisoned") = Some(holder);
                        wait = watcher.next_wait();
                    }
                    Err(_) => wait = watcher.next_wait(),
                }
            }
            Role::Writer => {
                let outcome = {
                    let mut service = shared.service.lock().expect("service poisoned");
                    service.snapshot(&dir)
                };
                match outcome {
                    Ok(_) => {
                        shared.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                        wait = checkpoint_every;
                    }
                    Err(SnapshotError::Fenced { .. }) => {
                        shared.role.store(ROLE_FOLLOWER, Ordering::Release);
                        shared.counters.demotions.fetch_add(1, Ordering::Relaxed);
                        shared.counters.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                        wait = watcher.next_wait();
                    }
                    Err(_) => {
                        shared.counters.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                        wait = wait.saturating_mul(2).min(cap);
                    }
                }
            }
        }
    }
}

fn dispatcher_loop(shared: &Shared) {
    let mut solve_times: Vec<Duration> = Vec::new();
    loop {
        let (tasks, waiters, claimed) = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                match scan(shared, &mut queue, Instant::now()) {
                    Dispatch::Exit => return,
                    Dispatch::Batch { tasks, waiters, service } => break (tasks, waiters, service),
                    Dispatch::Sleep(timeout) => {
                        let wait = timeout.unwrap_or(Duration::from_millis(100));
                        let (q, _) = shared.work.wait_timeout(queue, wait).expect("queue poisoned");
                        queue = q;
                    }
                }
            }
        };
        let dispatched = Instant::now();
        let (tasks, waiters) = match shared.config.deadline {
            None => (tasks, waiters),
            Some(budget) => {
                let mut live_tasks = Vec::with_capacity(tasks.len());
                let mut live_waiters = Vec::with_capacity(waiters.len());
                let mut refused = 0u64;
                for (task, waiter) in tasks.into_iter().zip(waiters) {
                    if dispatched.saturating_duration_since(waiter.enqueued) > budget {
                        refused += 1;
                        let mut slot = waiter.slot.lock().expect("waiter poisoned");
                        *slot = Some(Err(SubmitError::DeadlineExceeded));
                        drop(slot);
                        waiter.ready.notify_one();
                    } else {
                        live_tasks.push(task);
                        live_waiters.push(waiter);
                    }
                }
                if refused > 0 {
                    shared.counters.deadline_rejections.fetch_add(refused, Ordering::Relaxed);
                }
                (live_tasks, live_waiters)
            }
        };
        if tasks.is_empty() {
            continue;
        }
        let mut service = match claimed {
            Some(guard) => guard,
            None => shared.service.lock().expect("service poisoned"),
        };
        let results = service.solve_batch_shared_timed(&tasks, &mut solve_times);
        drop(service);

        let counters = &shared.counters;
        counters.coalesced_windows.fetch_add(1, Ordering::Relaxed);
        counters.coalesced_tasks.fetch_add(tasks.len() as u64, Ordering::Relaxed);
        Counters::raise_max(&counters.max_window_occupancy, tasks.len() as u64);
        let solved: u64 = solve_times.iter().map(|d| d.as_nanos() as u64).sum();
        counters.solve_nanos.fetch_add(solved, Ordering::Relaxed);
        let waited: u64 = waiters
            .iter()
            .map(|w| dispatched.saturating_duration_since(w.enqueued).as_nanos() as u64)
            .sum();
        counters.queue_wait_nanos.fetch_add(waited, Ordering::Relaxed);

        for (waiter, result) in waiters.into_iter().zip(results) {
            let mut slot = waiter.slot.lock().expect("waiter poisoned");
            *slot = Some(result.map_err(SubmitError::Service));
            waiter.ready.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::juror::pool_from_rates_and_costs;

    fn service_with_pool() -> (JuryService, jury_service::PoolId) {
        let jurors =
            pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3)]).unwrap();
        let mut service = JuryService::new();
        let pool = service.create_pool(jurors);
        (service, pool)
    }

    #[test]
    fn idle_submission_solves_inline() {
        let (service, pool) = service_with_pool();
        let frontend = Frontend::start(service, FrontendConfig::default());
        let selection = frontend.submit("t0", DecisionTask::altruism(pool)).unwrap();
        assert!(!selection.members.is_empty());
        let stats = frontend.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.inline_solves, 1);
        assert_eq!(stats.coalesced_windows, 0);
    }

    #[test]
    fn held_service_coalesces_concurrent_submissions() {
        // Holding the service lock keeps every submission off the inline
        // fast path and parks the dispatcher, so concurrent submissions
        // pile into windows; releasing the lock ships them batched.
        let (service, pool) = service_with_pool();
        let frontend = Frontend::start(service, FrontendConfig::default());
        let hold = std::sync::Barrier::new(2);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let fe = &frontend;
            let (hold, release) = (&hold, &release);
            scope.spawn(move || {
                fe.with_service(|_| {
                    hold.wait();
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                });
            });
            hold.wait();
            for _ in 0..8 {
                scope.spawn(move || {
                    fe.submit("t0", DecisionTask::altruism(pool)).unwrap();
                });
            }
            // Wait for all eight to queue behind the held lock before
            // letting the dispatcher at them.
            while fe.stats().requests < 8 {
                std::thread::yield_now();
            }
            release.store(true, Ordering::Release);
        });
        let stats = frontend.stats();
        assert_eq!(stats.requests, 8);
        assert!(stats.coalesced_windows >= 1);
        assert_eq!(stats.coalesced_tasks + stats.inline_solves, 8);
        assert!(stats.max_window_occupancy >= 2, "held lock must coalesce: {stats:?}");
    }

    #[test]
    fn tenant_overflow_is_rejected_with_retry_hint() {
        let (service, pool) = service_with_pool();
        let config = FrontendConfig { queue_capacity: 0, ..Default::default() };
        let frontend = Frontend::start(service, config);
        let err = frontend.submit("t0", DecisionTask::altruism(pool)).unwrap_err();
        assert!(matches!(err, SubmitError::Overloaded { .. }));
        assert_eq!(frontend.stats().queue_rejections, 1);
        assert_eq!(frontend.stats().requests, 0, "rejected submissions are not admitted");
    }

    #[test]
    fn fuller_queue_raises_retry_hint() {
        // The Overloaded hint must grow with the backlog: a tenant
        // refused behind two queued windows is told to wait longer than
        // one refused behind a single window. A huge max_delay keeps
        // every window below its bound, and the held service lock keeps
        // the dispatcher from claiming anything greedily, so the
        // backlog is exactly what the test queued.
        let (service, pool) = service_with_pool();
        let config = FrontendConfig {
            queue_capacity: 1,
            max_delay: Duration::from_secs(3600),
            ..Default::default()
        };
        let max_delay = config.max_delay;
        let frontend = Frontend::start(service, config);
        let hold = std::sync::Barrier::new(2);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let fe = &frontend;
            let (hold, release) = (&hold, &release);
            scope.spawn(move || {
                fe.with_service(|_| {
                    hold.wait();
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                });
            });
            hold.wait();
            // One queued window: tenant t0 reaches its capacity of 1.
            scope.spawn(move || {
                fe.submit("t0", DecisionTask::altruism(pool)).unwrap();
            });
            while fe.stats().requests < 1 {
                std::thread::yield_now();
            }
            let shallow = match fe.submit("t0", DecisionTask::altruism(pool)).unwrap_err() {
                SubmitError::Overloaded { retry_after } => retry_after,
                other => panic!("expected Overloaded, got {other:?}"),
            };
            // A second tenant's window deepens the backlog; t0's next
            // refusal must carry a strictly larger hint.
            scope.spawn(move || {
                fe.submit("t1", DecisionTask::altruism(pool)).unwrap();
            });
            while fe.stats().requests < 2 {
                std::thread::yield_now();
            }
            let deep = match fe.submit("t0", DecisionTask::altruism(pool)).unwrap_err() {
                SubmitError::Overloaded { retry_after } => retry_after,
                other => panic!("expected Overloaded, got {other:?}"),
            };
            assert!(shallow >= max_delay, "hint is floored at max_delay: {shallow:?}");
            assert!(deep > shallow, "deeper backlog must raise the hint: {deep:?} vs {shallow:?}");
            release.store(true, Ordering::Release);
            // The dispatcher is parked for the full (huge) delay bound;
            // drain mode wakes it so the queued submitters can return.
            frontend.shutdown();
        });
        assert_eq!(frontend.stats().queue_rejections, 2);
    }

    #[test]
    fn blown_deadline_is_refused_at_dispatch_not_solved() {
        // A task whose queueing budget has elapsed by the time its
        // window dispatches is refused — the solver never sees it, and
        // the service stays healthy for the next submission.
        let (service, pool) = service_with_pool();
        let config =
            FrontendConfig { deadline: Some(Duration::from_millis(1)), ..Default::default() };
        let frontend = Frontend::start(service, config);
        let hold = std::sync::Barrier::new(2);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let fe = &frontend;
            let (hold, release) = (&hold, &release);
            scope.spawn(move || {
                fe.with_service(|_| {
                    hold.wait();
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                });
            });
            hold.wait();
            let stale = scope.spawn(move || fe.submit("t0", DecisionTask::altruism(pool)));
            while fe.stats().requests < 1 {
                std::thread::yield_now();
            }
            // Let the queued task age well past its budget, then let
            // the dispatcher at it.
            std::thread::sleep(Duration::from_millis(30));
            release.store(true, Ordering::Release);
            let err = stale.join().expect("submitter panicked").unwrap_err();
            assert!(matches!(err, SubmitError::DeadlineExceeded), "got {err:?}");
        });
        let stats = frontend.stats();
        assert_eq!(stats.deadline_rejections, 1);
        assert_eq!(stats.coalesced_tasks, 0, "a refused task is never solved");
        let fresh = frontend.submit("t0", DecisionTask::altruism(pool));
        assert!(fresh.is_ok(), "the front-end keeps serving after a refusal");
    }

    fn wait_for(mut probe: impl FnMut() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !probe() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("jury-frontend-ckpt-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn checkpoint_timer_snapshots_periodically_and_drain_releases_the_lease() {
        let tmp = TempDir::new("timer");
        let jurors =
            pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4), (0.25, 0.3)]).unwrap();
        let mut service = jury_service::JuryService::with_config(jury_service::ServiceConfig {
            snapshot_dir: Some(tmp.0.clone()),
            ..Default::default()
        });
        let pool = service.create_pool(jurors);
        let config = FrontendConfig {
            checkpoint_interval: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let frontend = Frontend::start(service, config);
        frontend.submit("t0", DecisionTask::altruism(pool)).unwrap();
        wait_for(|| frontend.stats().checkpoints >= 2, "two periodic checkpoints");
        assert_eq!(frontend.stats().checkpoint_failures, 0);
        assert!(
            tmp.0.join("writer.lease").is_file(),
            "a live checkpointing front-end holds the writer lease"
        );
        frontend.shutdown().expect("first shutdown returns the service");
        assert!(
            !tmp.0.join("writer.lease").exists(),
            "graceful drain releases the lease for a successor"
        );
        let manifests = std::fs::read_dir(&tmp.0)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().file_name().to_str().is_some_and(|n| n.starts_with("manifest-"))
            })
            .count();
        assert_eq!(manifests, 1, "GC keeps exactly the newest generation manifest");
    }

    #[test]
    fn failed_checkpoints_are_counted_and_backed_off() {
        let tmp = TempDir::new("contended");
        // A *live* foreign lease (fresh heartbeat, default 30s ttl):
        // every periodic checkpoint loses the acquire and must count a
        // failure rather than write anything.
        let now_ms =
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_millis()
                as u64;
        std::fs::write(
            tmp.0.join("writer.lease"),
            format!(
                r#"{{"format":"jury-lease","holder":"other-process","epoch":"{:016x}","heartbeat_ms":"{now_ms:016x}"}}"#,
                7
            ),
        )
        .unwrap();
        let jurors = pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1)]).unwrap();
        let mut service = jury_service::JuryService::with_config(jury_service::ServiceConfig {
            snapshot_dir: Some(tmp.0.clone()),
            ..Default::default()
        });
        let pool = service.create_pool(jurors);
        let config = FrontendConfig {
            checkpoint_interval: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let frontend = Frontend::start(service, config);
        frontend.submit("t0", DecisionTask::altruism(pool)).unwrap();
        wait_for(|| frontend.stats().checkpoint_failures >= 1, "a counted checkpoint failure");
        assert_eq!(frontend.stats().checkpoints, 0, "nothing committed under a foreign lease");
        assert!(!tmp.0.join("manifest-1.json").exists(), "no manifest under a foreign lease");
        frontend.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_work_and_returns_the_service() {
        let (service, pool) = service_with_pool();
        let frontend = Frontend::start(service, FrontendConfig::default());
        frontend.submit("t0", DecisionTask::altruism(pool)).unwrap();
        let mut service = frontend.shutdown().expect("first shutdown returns the service");
        assert!(frontend.shutdown().is_none(), "second shutdown is a no-op");
        assert!(matches!(
            frontend.submit("t0", DecisionTask::altruism(pool)),
            Err(SubmitError::ShuttingDown)
        ));
        assert_eq!(service.stats().tasks_solved, 1);
        assert!(service.solve(&DecisionTask::altruism(pool)).is_ok());
    }
}
