//! Property-based tests for the graph substrate.

use jury_graph::digraph::{DiGraph, DiGraphBuilder};
use jury_graph::hits::{hits, HitsConfig};
use jury_graph::pagerank::{pagerank, PageRankConfig};
use jury_graph::scc::strongly_connected_components;
use jury_graph::traversal::{bfs_reachable, weakly_connected_components};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;

/// Random edge lists over up to 24 nodes.
fn edges(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    vec((0..max_nodes, 0..max_nodes), 0..max_edges)
}

fn build(edge_list: &[(u32, u32)]) -> DiGraph {
    let mut b = DiGraphBuilder::new();
    for &(u, v) in edge_list {
        b.add_edge(u, v);
    }
    b.build()
}

proptest! {
    #[test]
    fn adjacency_matches_edge_set(edge_list in edges(24, 80)) {
        let g = build(&edge_list);
        let expected: HashSet<(u32, u32)> = edge_list
            .iter()
            .copied()
            .filter(|&(u, v)| u != v) // builder drops self-loops
            .collect();
        let actual: HashSet<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(actual, expected);
        // Degree sums both equal the edge count.
        let out_sum: usize = (0..g.node_count() as u32).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..g.node_count() as u32).map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
    }

    #[test]
    fn predecessors_mirror_successors(edge_list in edges(20, 60)) {
        let g = build(&edge_list);
        for u in 0..g.node_count() as u32 {
            for &v in g.successors(u) {
                prop_assert!(g.predecessors(v).contains(&u));
            }
            for &p in g.predecessors(u) {
                prop_assert!(g.successors(p).contains(&u));
            }
        }
    }

    #[test]
    fn pagerank_is_a_distribution(edge_list in edges(20, 60)) {
        let g = build(&edge_list);
        if g.node_count() == 0 { return Ok(()); }
        let r = pagerank(&g, &PageRankConfig::default());
        let total: f64 = r.scores.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {}", total);
        prop_assert!(r.scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn hits_scores_are_non_negative_and_normalised(edge_list in edges(20, 60)) {
        let g = build(&edge_list);
        if g.node_count() == 0 || g.edge_count() == 0 { return Ok(()); }
        let s = hits(&g, &HitsConfig::default());
        prop_assert!(s.authority.iter().all(|&a| a >= 0.0));
        prop_assert!(s.hub.iter().all(|&h| h >= 0.0));
        let norm: f64 = s.authority.iter().map(|a| a * a).sum::<f64>().sqrt();
        // Either a proper unit vector or all-zero (no in-edges anywhere).
        prop_assert!((norm - 1.0).abs() < 1e-6 || norm < 1e-12, "norm {}", norm);
    }

    #[test]
    fn sccs_partition_the_nodes(edge_list in edges(20, 60)) {
        let g = build(&edge_list);
        let comps = strongly_connected_components(&g);
        let mut seen: Vec<u32> = comps.iter().flatten().copied().collect();
        seen.sort_unstable();
        let all: Vec<u32> = (0..g.node_count() as u32).collect();
        prop_assert_eq!(seen, all);
    }

    #[test]
    fn scc_members_are_mutually_reachable(edge_list in edges(14, 40)) {
        let g = build(&edge_list);
        for comp in strongly_connected_components(&g) {
            for &u in &comp {
                let reach: HashSet<u32> = bfs_reachable(&g, u).into_iter().collect();
                for &v in &comp {
                    prop_assert!(reach.contains(&v), "{} cannot reach {}", u, v);
                }
            }
        }
    }

    #[test]
    fn every_scc_is_inside_one_weak_component(edge_list in edges(20, 60)) {
        let g = build(&edge_list);
        let weak = weakly_connected_components(&g);
        let member_of = |node: u32| -> usize {
            weak.iter().position(|c| c.contains(&node)).expect("covered")
        };
        for comp in strongly_connected_components(&g) {
            let home = member_of(comp[0]);
            for &v in &comp[1..] {
                prop_assert_eq!(member_of(v), home);
            }
        }
    }

    #[test]
    fn bfs_reachable_is_closed_under_successors(edge_list in edges(20, 60), start in 0u32..20) {
        let g = build(&edge_list);
        if (start as usize) >= g.node_count() { return Ok(()); }
        let reach: HashSet<u32> = bfs_reachable(&g, start).into_iter().collect();
        prop_assert!(reach.contains(&start));
        for &u in &reach {
            for &v in g.successors(u) {
                prop_assert!(reach.contains(&v));
            }
        }
    }

    #[test]
    fn dedup_makes_build_idempotent(edge_list in edges(16, 40)) {
        let once = build(&edge_list);
        let doubled: Vec<(u32, u32)> =
            edge_list.iter().chain(edge_list.iter()).copied().collect();
        let twice = build(&doubled);
        prop_assert_eq!(once.edge_count(), twice.edge_count());
        prop_assert_eq!(once.node_count(), twice.node_count());
    }
}
