//! Directed-graph substrate with user-ranking algorithms.
//!
//! Section 4.1 of the paper estimates individual error rates by building a
//! *retweet graph* over micro-blog users and ranking them with HITS
//! (Algorithm 6) and PageRank (Algorithm 7). This crate provides the graph
//! storage and both ranking algorithms, independent of any micro-blog
//! specifics (those live in `jury-microblog`).
//!
//! * [`interner`] — maps string usernames to dense `u32` node ids.
//! * [`digraph`] — compact adjacency-list directed graph with O(1) duplicate
//!   edge detection during construction ("link once and only once per
//!   retweet-relationship pair").
//! * [`mod@hits`] — Kleinberg's HITS with configurable normalisation.
//! * [`mod@pagerank`] — PageRank with damping and dangling-node handling.
//! * [`traversal`] — BFS reachability and weakly-connected components.
//! * [`scc`] — strongly-connected components (iterative Tarjan), the
//!   mutual-retweet cores within which HITS mass circulates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod digraph;
pub mod hits;
pub mod interner;
pub mod pagerank;
pub mod scc;
pub mod traversal;

pub use digraph::{DiGraph, DiGraphBuilder, NodeId};
pub use hits::{hits, HitsConfig, HitsScores, Norm};
pub use interner::Interner;
pub use pagerank::{pagerank, PageRankConfig};
pub use scc::{largest_scc_size, strongly_connected_components};
pub use traversal::{bfs_reachable, weakly_connected_components};
