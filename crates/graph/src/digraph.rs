//! Compact directed graph with deduplicated edges.
//!
//! The retweet graph of the paper's Algorithm 5 links `user1 → user2`
//! "once and only once for each pair", i.e. parallel edges collapse.
//! [`DiGraphBuilder`] performs that deduplication with a hash set during
//! construction; [`DiGraph`] then stores forward and reverse adjacency in
//! CSR (compressed sparse row) form so ranking iterations stream
//! cache-friendly over flat arrays.

use std::collections::HashSet;

/// Dense node identifier (index into per-node arrays).
pub type NodeId = u32;

/// Incremental builder that deduplicates edges and tracks the node count.
#[derive(Debug, Default, Clone)]
pub struct DiGraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: HashSet<(NodeId, NodeId)>,
    allow_self_loops: bool,
}

impl DiGraphBuilder {
    /// A builder with no nodes or edges. Nodes appear implicitly when
    /// referenced by an edge, or explicitly via [`Self::ensure_node`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder that keeps self-loops (`u → u`). By default they are
    /// dropped: a user retweeting themselves carries no authority signal.
    pub fn with_self_loops(mut self) -> Self {
        self.allow_self_loops = true;
        self
    }

    /// Makes sure node `id` exists even if isolated.
    pub fn ensure_node(&mut self, id: NodeId) -> &mut Self {
        self.n = self.n.max(id as usize + 1);
        self
    }

    /// Adds the edge `from → to` if not already present. Returns `true`
    /// if the edge was new.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if from == to && !self.allow_self_loops {
            self.ensure_node(from);
            return false;
        }
        self.n = self.n.max(from.max(to) as usize + 1);
        if self.seen.insert((from, to)) {
            self.edges.push((from, to));
            true
        } else {
            false
        }
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Current (deduplicated) edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalises into CSR form.
    pub fn build(self) -> DiGraph {
        DiGraph::from_edges(self.n, &self.edges)
    }
}

/// Immutable directed graph in CSR form with both edge directions.
#[derive(Debug, Clone)]
pub struct DiGraph {
    n: usize,
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
}

impl DiGraph {
    /// Builds from an explicit edge list over `n` nodes. Edges are assumed
    /// already deduplicated (use [`DiGraphBuilder`] otherwise).
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of bounds for {n} nodes"
            );
        }
        let (out_offsets, out_targets) = csr(n, edges.iter().copied());
        let (in_offsets, in_sources) = csr(n, edges.iter().map(|&(u, v)| (v, u)));
        Self { n, out_offsets, out_targets, in_offsets, in_sources }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// `true` when there are no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Successors of `u` (nodes `v` with an edge `u → v`).
    #[inline]
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// Predecessors of `u` (nodes `v` with an edge `v → u`).
    #[inline]
    pub fn predecessors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[u as usize] as usize;
        let hi = self.in_offsets[u as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.successors(u).len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.predecessors(u).len()
    }

    /// Iterates all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n as u32).flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// Nodes with no incident edges at all.
    pub fn isolated_nodes(&self) -> Vec<NodeId> {
        (0..self.n as u32).filter(|&u| self.out_degree(u) == 0 && self.in_degree(u) == 0).collect()
    }
}

/// Builds CSR offsets/targets from an edge iterator keyed by source.
fn csr(n: usize, edges: impl Iterator<Item = (NodeId, NodeId)> + Clone) -> (Vec<u32>, Vec<NodeId>) {
    let mut offsets = vec![0u32; n + 1];
    for (u, _) in edges.clone() {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut targets = vec![0 as NodeId; offsets[n] as usize];
    for (u, v) in edges {
        let slot = cursor[u as usize] as usize;
        targets[slot] = v;
        cursor[u as usize] += 1;
    }
    // Sort each adjacency run for deterministic iteration and binary search.
    for u in 0..n {
        let lo = offsets[u] as usize;
        let hi = offsets[u + 1] as usize;
        targets[lo..hi].sort_unstable();
    }
    (offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn builder_counts_nodes_and_edges() {
        let mut b = DiGraphBuilder::new();
        assert!(b.add_edge(0, 5));
        assert_eq!(b.node_count(), 6);
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn builder_dedups_parallel_edges() {
        let mut b = DiGraphBuilder::new();
        assert!(b.add_edge(1, 2));
        assert!(!b.add_edge(1, 2));
        assert!(b.add_edge(2, 1)); // reverse direction is distinct
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn builder_drops_self_loops_by_default() {
        let mut b = DiGraphBuilder::new();
        assert!(!b.add_edge(3, 3));
        assert_eq!(b.edge_count(), 0);
        assert_eq!(b.node_count(), 4); // node still materialises

        let mut b = DiGraphBuilder::new().with_self_loops();
        assert!(b.add_edge(3, 3));
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn ensure_node_creates_isolated_nodes() {
        let mut b = DiGraphBuilder::new();
        b.ensure_node(9);
        let g = b.build();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.isolated_nodes().len(), 10);
    }

    #[test]
    fn adjacency_is_correct_and_sorted() {
        let g = diamond();
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(1), &[3]);
        assert_eq!(g.successors(3), &[] as &[NodeId]);
        assert_eq!(g.predecessors(3), &[1, 2]);
        assert_eq!(g.predecessors(0), &[] as &[NodeId]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = diamond();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn from_edges_direct() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.successors(2), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_bounds_checked() {
        let _ = DiGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_mixed() {
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_node(3);
        let g = b.build();
        assert_eq!(g.isolated_nodes(), vec![2, 3]);
    }
}
