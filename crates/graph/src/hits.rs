//! HITS (Hyperlink-Induced Topic Search) user ranking.
//!
//! The paper's Algorithm 6 computes *quality scores* as HITS authority
//! scores on the retweet graph: an edge `u → v` means `u` retweeted `v`,
//! so `v` accumulates authority from `u`'s hub weight. The iteration is
//!
//! ```text
//! Score[v] ← Σ_{(u,v)∈E} Hub[u]     then normalise Score
//! Hub[u]   ← Σ_{(u,v)∈E} Score[v]   then normalise Hub
//! ```
//!
//! Algorithm 6 says "Normalize" without naming the norm. Classic HITS
//! (Kleinberg 1999) uses L2; summing scores to 1 (L1) is also common in
//! the expert-finding literature. Both are supported via [`Norm`]; L2 is
//! the default. The fixpoint direction (who ranks above whom) is identical,
//! only the scale differs.

use crate::digraph::DiGraph;

/// Vector normalisation applied after each half-iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Norm {
    /// Divide by the Euclidean norm (classic HITS).
    #[default]
    L2,
    /// Divide by the sum of entries (scores form a distribution).
    L1,
    /// Divide by the maximum entry (scores in `[0, 1]`, max = 1).
    Max,
}

impl Norm {
    fn apply(self, v: &mut [f64]) {
        let denom = match self {
            Norm::L2 => v.iter().map(|x| x * x).sum::<f64>().sqrt(),
            Norm::L1 => v.iter().sum::<f64>(),
            Norm::Max => v.iter().cloned().fold(0.0f64, f64::max),
        };
        if denom > 0.0 {
            for x in v.iter_mut() {
                *x /= denom;
            }
        }
    }
}

/// Configuration for the HITS iteration.
#[derive(Debug, Clone, Copy)]
pub struct HitsConfig {
    /// Maximum number of full (authority + hub) iterations.
    pub max_iterations: usize,
    /// Stop once the L1 change of the authority vector between successive
    /// iterations falls below this threshold.
    pub tolerance: f64,
    /// Normalisation applied after each update.
    pub norm: Norm,
}

impl Default for HitsConfig {
    fn default() -> Self {
        Self { max_iterations: 100, tolerance: 1e-10, norm: Norm::L2 }
    }
}

/// Result of a HITS run.
#[derive(Debug, Clone)]
pub struct HitsScores {
    /// Authority score per node — the paper's quality score.
    pub authority: Vec<f64>,
    /// Hub score per node.
    pub hub: Vec<f64>,
    /// Number of iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
}

/// Runs HITS on `graph` (paper Algorithm 6).
///
/// Returns zeroed scores for an empty graph. Nodes with no incident edges
/// end with authority and hub 0.
pub fn hits(graph: &DiGraph, config: &HitsConfig) -> HitsScores {
    let n = graph.node_count();
    if n == 0 {
        return HitsScores { authority: vec![], hub: vec![], iterations: 0, converged: true };
    }
    let mut authority = vec![1.0f64; n];
    let mut hub = vec![1.0f64; n];
    let mut prev_authority = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;

    while iterations < config.max_iterations {
        iterations += 1;
        // Authority update: Score[v] = Σ Hub[u] over in-edges (u,v).
        for v in 0..n as u32 {
            let mut acc = 0.0;
            for &u in graph.predecessors(v) {
                acc += hub[u as usize];
            }
            authority[v as usize] = acc;
        }
        config.norm.apply(&mut authority);

        // Hub update: Hub[u] = Σ Score[v] over out-edges (u,v).
        for u in 0..n as u32 {
            let mut acc = 0.0;
            for &v in graph.successors(u) {
                acc += authority[v as usize];
            }
            hub[u as usize] = acc;
        }
        config.norm.apply(&mut hub);

        let delta: f64 = authority.iter().zip(&prev_authority).map(|(a, b)| (a - b).abs()).sum();
        prev_authority.copy_from_slice(&authority);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    HitsScores { authority, hub, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraphBuilder;

    fn star_graph(fans: u32) -> DiGraph {
        // fans 1..=fans all point at node 0 (everyone retweets node 0).
        let mut b = DiGraphBuilder::new();
        for u in 1..=fans {
            b.add_edge(u, 0);
        }
        b.build()
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = DiGraphBuilder::new().build();
        let s = hits(&g, &HitsConfig::default());
        assert!(s.authority.is_empty());
        assert!(s.converged);
    }

    #[test]
    fn star_center_has_all_authority() {
        let g = star_graph(5);
        let s = hits(&g, &HitsConfig::default());
        assert!(s.converged);
        // Node 0 is the unique authority; fans are pure hubs.
        assert!(s.authority[0] > 0.99);
        for u in 1..=5 {
            assert!(s.authority[u] < 1e-9, "fan {u} authority {}", s.authority[u]);
            assert!(s.hub[u] > 0.1);
        }
        assert!(s.hub[0] < 1e-9);
    }

    #[test]
    fn more_retweeted_user_ranks_higher() {
        // 1,2,3 retweet 0; only 3 retweets 4 => authority(0) > authority(4).
        let mut b = DiGraphBuilder::new();
        b.add_edge(1, 0);
        b.add_edge(2, 0);
        b.add_edge(3, 0);
        b.add_edge(3, 4);
        let s = hits(&b.build(), &HitsConfig::default());
        assert!(s.authority[0] > s.authority[4]);
    }

    #[test]
    fn l2_normalisation_yields_unit_vector() {
        let g = star_graph(4);
        let s = hits(&g, &HitsConfig { norm: Norm::L2, ..Default::default() });
        let norm: f64 = s.authority.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn l1_normalisation_yields_distribution() {
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        b.add_edge(0, 3);
        let s = hits(&b.build(), &HitsConfig { norm: Norm::L1, ..Default::default() });
        let total: f64 = s.authority.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_normalisation_caps_at_one() {
        let g = star_graph(3);
        let s = hits(&g, &HitsConfig { norm: Norm::Max, ..Default::default() });
        let max = s.authority.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_cycle_gives_equal_scores() {
        // 0 -> 1 -> 2 -> 0: perfect symmetry.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = hits(&g, &HitsConfig::default());
        for w in s.authority.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn isolated_nodes_score_zero() {
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_node(5);
        let s = hits(&b.build(), &HitsConfig::default());
        assert_eq!(s.authority[5], 0.0);
        assert_eq!(s.hub[5], 0.0);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = star_graph(3);
        let s = hits(&g, &HitsConfig { max_iterations: 2, tolerance: 0.0, ..Default::default() });
        assert_eq!(s.iterations, 2);
        assert!(!s.converged);
    }

    #[test]
    fn bipartite_hub_authority_split() {
        // Hubs {0,1} each point to authorities {2,3}.
        let g = DiGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let s = hits(&g, &HitsConfig::default());
        assert!((s.authority[2] - s.authority[3]).abs() < 1e-9);
        assert!((s.hub[0] - s.hub[1]).abs() < 1e-9);
        assert!(s.authority[0] < 1e-9);
        assert!(s.hub[2] < 1e-9);
    }
}
