//! Breadth-first reachability and weakly-connected components.
//!
//! Used by the micro-blog substrate to report how connected a generated
//! retweet graph is (the paper keeps only well-connected high-score users)
//! and by tests asserting structural properties of synthetic networks.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Nodes reachable from `start` following edge direction (including
/// `start` itself). Returns an empty vector if `start` is out of range.
pub fn bfs_reachable(graph: &DiGraph, start: NodeId) -> Vec<NodeId> {
    let n = graph.node_count();
    if (start as usize) >= n {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let mut order = Vec::new();
    visited[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in graph.successors(u) {
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Weakly-connected components (edge direction ignored), each sorted
/// ascending; components ordered by their smallest member.
pub fn weakly_connected_components(graph: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut queue = VecDeque::new();
    for s in 0..n as u32 {
        if visited[s as usize] {
            continue;
        }
        visited[s as usize] = true;
        queue.push_back(s);
        let mut comp = Vec::new();
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &v in graph.successors(u).iter().chain(graph.predecessors(u)) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// Size of the largest weakly-connected component (0 for an empty graph).
pub fn largest_component_size(graph: &DiGraph) -> usize {
    weakly_connected_components(graph).iter().map(Vec::len).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraphBuilder;

    fn two_islands() -> DiGraph {
        // Island A: 0 -> 1 -> 2; Island B: 3 <-> 4.
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.add_edge(4, 3);
        b.build()
    }

    #[test]
    fn bfs_follows_direction() {
        let g = two_islands();
        assert_eq!(bfs_reachable(&g, 0), vec![0, 1, 2]);
        assert_eq!(bfs_reachable(&g, 2), vec![2]); // sink
        assert_eq!(bfs_reachable(&g, 3), vec![3, 4]);
    }

    #[test]
    fn bfs_out_of_range_is_empty() {
        let g = two_islands();
        assert!(bfs_reachable(&g, 99).is_empty());
    }

    #[test]
    fn components_ignore_direction() {
        let g = two_islands();
        let comps = weakly_connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_node(3);
        let comps = weakly_connected_components(&b.build());
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = DiGraphBuilder::new().build();
        assert!(weakly_connected_components(&g).is_empty());
        assert_eq!(largest_component_size(&g), 0);
    }

    #[test]
    fn bfs_visits_breadth_first() {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 4: BFS layers [0][1,2][3,4].
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        let order = bfs_reachable(&g, 0);
        assert_eq!(order[0], 0);
        assert!(order[1..3].contains(&1) && order[1..3].contains(&2));
        assert!(order[3..5].contains(&3) && order[3..5].contains(&4));
    }
}
