//! String interning: usernames ⇄ dense node ids.
//!
//! Retweet parsing produces usernames as strings; graph algorithms want
//! dense integer ids. The interner owns each name exactly once and hands
//! out stable `u32` ids in insertion order.

use std::collections::HashMap;

/// Bidirectional map between owned strings and dense `u32` ids.
///
/// Ids are assigned consecutively from zero in first-seen order, so they
/// can directly index per-node vectors.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `cap` names.
    pub fn with_capacity(cap: usize) -> Self {
        Self { by_name: HashMap::with_capacity(cap), names: Vec::with_capacity(cap) }
    }

    /// Returns the id for `name`, inserting it if unseen.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing id without inserting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The name for `id`, if assigned.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_order() {
        let mut it = Interner::new();
        assert_eq!(it.intern("alice"), 0);
        assert_eq!(it.intern("bob"), 1);
        assert_eq!(it.intern("carol"), 2);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("alice");
        assert_eq!(it.intern("alice"), a);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn get_does_not_insert() {
        let mut it = Interner::new();
        assert_eq!(it.get("ghost"), None);
        it.intern("real");
        assert_eq!(it.get("real"), Some(0));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = Interner::with_capacity(4);
        let id = it.intern("user_42");
        assert_eq!(it.resolve(id), Some("user_42"));
        assert_eq!(it.resolve(99), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = Interner::new();
        for name in ["x", "y", "z"] {
            it.intern(name);
        }
        let collected: Vec<(u32, &str)> = it.iter().collect();
        assert_eq!(collected, vec![(0, "x"), (1, "y"), (2, "z")]);
    }

    #[test]
    fn empty_state() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn case_sensitive_names() {
        let mut it = Interner::new();
        let a = it.intern("Alice");
        let b = it.intern("alice");
        assert_ne!(a, b);
    }
}
