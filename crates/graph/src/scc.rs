//! Strongly-connected components (Tarjan, iterative).
//!
//! §4.1.2 notes the constructed retweet network is "directed and
//! connected" before ranking. Weak connectivity lives in
//! [`crate::traversal`]; this module adds *strong* connectivity, which
//! characterises mutual-retweet communities — the cores within which
//! HITS scores circulate rather than drain. The implementation is
//! Tarjan's algorithm with an explicit stack (recursion-free, so deep
//! chains from long retweet cascades cannot overflow the call stack).

use crate::digraph::{DiGraph, NodeId};

/// Strongly-connected components in reverse topological order (each
/// component appears before any component it points to... precisely:
/// Tarjan emits a component only after all components reachable from it);
/// members of each component are sorted ascending.
pub fn strongly_connected_components(graph: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let succs = graph.successors(v);
            if *pos < succs.len() {
                let w = succs[*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("root is on the stack");
                        on_stack[w as usize] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Size of the largest strongly-connected component (0 for an empty
/// graph).
pub fn largest_scc_size(graph: &DiGraph) -> usize {
    strongly_connected_components(graph).iter().map(Vec::len).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraphBuilder;

    fn components_as_sets(graph: &DiGraph) -> Vec<Vec<NodeId>> {
        let mut comps = strongly_connected_components(graph);
        comps.sort();
        comps
    }

    #[test]
    fn empty_graph() {
        let g = DiGraphBuilder::new().build();
        assert!(strongly_connected_components(&g).is_empty());
        assert_eq!(largest_scc_size(&g), 0);
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let comps = components_as_sets(&g);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn cycle_is_one_component() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let comps = components_as_sets(&g);
        assert_eq!(comps, vec![vec![0, 1, 2]]);
        assert_eq!(largest_scc_size(&g), 3);
    }

    #[test]
    fn two_cycles_bridged_by_one_way_edge() {
        // {0,1} <-> and {2,3} <->, bridge 1 -> 2.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let comps = components_as_sets(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn tarjan_emits_reverse_topological_order() {
        // A -> B (both SCCs): B must be emitted before A.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let comps = strongly_connected_components(&g);
        let pos_a = comps.iter().position(|c| c.contains(&0)).unwrap();
        let pos_b = comps.iter().position(|c| c.contains(&2)).unwrap();
        assert!(pos_b < pos_a, "downstream SCC must be emitted first");
    }

    #[test]
    fn mutual_retweet_pair() {
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 0); // fan, one-way
        let comps = components_as_sets(&b.build());
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node path: a recursive Tarjan would blow the call stack.
        let n = 100_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n as usize, &edges);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), n as usize);
    }

    #[test]
    fn covers_every_node_exactly_once() {
        let g = DiGraph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (5, 6)]);
        let comps = strongly_connected_components(&g);
        let mut seen: Vec<NodeId> = comps.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }
}
