//! PageRank user ranking.
//!
//! The paper's Algorithm 7 computes quality scores with the standard
//! PageRank iteration on the retweet graph:
//!
//! ```text
//! New_Score[v] = (1-d)/n + d · Σ_{u ∈ In(v)} Score[u] / Out[u]
//! ```
//!
//! Algorithm 7 as printed ignores *dangling* nodes (out-degree 0), whose
//! mass leaks out of the system each iteration. Standard practice
//! redistributes dangling mass uniformly; we do that by default and offer
//! the paper-literal leaking behaviour behind
//! [`PageRankConfig::redistribute_dangling`] so both can be compared.

use crate::digraph::DiGraph;

/// Configuration for the PageRank iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor `d` (teleport probability is `1-d`). The customary
    /// value — and the one we use for all experiments — is 0.85.
    pub damping: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Stop once the L1 change between successive score vectors falls
    /// below this threshold.
    pub tolerance: f64,
    /// Redistribute dangling-node mass uniformly (standard formulation).
    /// Set to `false` for the paper-literal Algorithm 7, which lets that
    /// mass decay; the induced ranking order is identical on the graphs we
    /// generate but scores no longer sum to 1.
    pub redistribute_dangling: bool,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            // Error contracts by ~d per iteration: 0.85^200 ≈ 8e-15, so
            // 200 iterations comfortably reach the 1e-10 tolerance.
            max_iterations: 200,
            tolerance: 1e-10,
            redistribute_dangling: true,
        }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankScores {
    /// Score per node (a probability distribution when
    /// `redistribute_dangling` is on).
    pub scores: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
}

/// Runs PageRank on `graph` (paper Algorithm 7).
///
/// # Panics
/// Panics if `damping` is outside `[0, 1)`.
pub fn pagerank(graph: &DiGraph, config: &PageRankConfig) -> PageRankScores {
    assert!(
        (0.0..1.0).contains(&config.damping),
        "damping must be in [0,1), got {}",
        config.damping
    );
    let n = graph.node_count();
    if n == 0 {
        return PageRankScores { scores: vec![], iterations: 0, converged: true };
    }
    let inv_n = 1.0 / n as f64;
    let d = config.damping;
    let mut scores = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let out_deg: Vec<f64> = (0..n as u32).map(|u| graph.out_degree(u) as f64).collect();
    let dangling: Vec<u32> = (0..n as u32).filter(|&u| graph.out_degree(u) == 0).collect();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let dangling_mass: f64 = if config.redistribute_dangling {
            dangling.iter().map(|&u| scores[u as usize]).sum::<f64>() * inv_n
        } else {
            0.0
        };
        let base = (1.0 - d) * inv_n + d * dangling_mass;
        for v in 0..n as u32 {
            let mut acc = 0.0;
            for &u in graph.predecessors(v) {
                acc += scores[u as usize] / out_deg[u as usize];
            }
            next[v as usize] = base + d * acc;
        }
        let delta: f64 = scores.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut scores, &mut next);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    PageRankScores { scores, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::{DiGraph, DiGraphBuilder};

    #[test]
    fn empty_graph_is_trivial() {
        let g = DiGraphBuilder::new().build();
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn scores_form_distribution() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let r = pagerank(&g, &PageRankConfig::default());
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum={total}");
        assert!(r.converged);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = pagerank(&g, &PageRankConfig::default());
        for &s in &r.scores {
            assert!((s - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn heavily_cited_node_ranks_highest() {
        // Everyone retweets node 0; node 0 retweets node 1.
        let g = DiGraph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let r = pagerank(&g, &PageRankConfig::default());
        let top = r.scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(top, 0);
        // Node 1 receives node 0's entire rank: second place.
        assert!(r.scores[1] > r.scores[2]);
    }

    #[test]
    fn dangling_redistribution_conserves_mass() {
        // Node 1 is dangling.
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let on = pagerank(&g, &PageRankConfig::default());
        let total: f64 = on.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);

        let off =
            pagerank(&g, &PageRankConfig { redistribute_dangling: false, ..Default::default() });
        let leaked: f64 = off.scores.iter().sum();
        assert!(leaked < 1.0 - 1e-6, "mass should leak, got {leaked}");
        // Order agrees even when mass leaks.
        assert!(off.scores[1] > off.scores[0]);
        assert!(on.scores[1] > on.scores[0]);
    }

    #[test]
    fn zero_damping_gives_uniform_scores() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = pagerank(&g, &PageRankConfig { damping: 0.0, ..Default::default() });
        for &s in &r.scores {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_invalid_damping() {
        let g = DiGraph::from_edges(1, &[]);
        let _ = pagerank(&g, &PageRankConfig { damping: 1.0, ..Default::default() });
    }

    #[test]
    fn respects_iteration_cap() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = pagerank(
            &g,
            &PageRankConfig { max_iterations: 1, tolerance: 0.0, ..Default::default() },
        );
        assert_eq!(r.iterations, 1);
        assert!(!r.converged);
    }

    #[test]
    fn isolated_node_gets_teleport_share() {
        let mut b = DiGraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_node(2); // isolated (also dangling)
        let r = pagerank(&b.build(), &PageRankConfig::default());
        assert!(r.scores[2] > 0.0);
        assert!(r.scores[1] > r.scores[2]); // 1 is actually cited
    }

    #[test]
    fn matches_hand_computed_two_node_chain() {
        // 0 -> 1 with redistribution; solve the 2-node fixpoint by hand.
        // s0 = (1-d)/2 + d*(s1/2)   (node 1 dangling, redistributes /2)
        // s1 = (1-d)/2 + d*(s0 + s1/2)
        // With d = 0.85 the solution is s0 = 20/57, s1 = 37/57.
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!((r.scores[0] - 20.0 / 57.0).abs() < 1e-8, "s0={}", r.scores[0]);
        assert!((r.scores[1] - 37.0 / 57.0).abs() < 1e-8, "s1={}", r.scores[1]);
    }
}
