//! Ablation X2 — the direct-vs-FFT convolution cutoff.
//!
//! CBA merges sub-jury distributions by polynomial multiplication; the
//! adaptive dispatcher (`jury_numeric::conv::DEFAULT_FFT_CUTOFF`) flips
//! from the schoolbook loop to the FFT path once `len(a)·len(b)` is
//! large. This bench regenerates the trade-off curve that justifies the
//! cutoff constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jury_numeric::conv::{convolve_direct, convolve_fft};
use std::hint::black_box;

fn vector(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 * 0.7 + phase).sin().abs()) / n as f64).collect()
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolution");
    for &n in &[16usize, 32, 64, 128, 256, 512, 1024, 4096] {
        let a = vector(n, 0.0);
        let b = vector(n, 1.3);
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |bench, _| {
            bench.iter(|| convolve_direct(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |bench, _| {
            bench.iter(|| convolve_fft(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convolution);
criterion_main!(benches);
