//! Figures 3(c)–3(f) companion — PayM solver costs.
//!
//! PayALG is linear-ish in the pool (the paper calls it "a linear time
//! cost"); exact enumeration is exponential and only viable on tiny
//! pools. This bench quantifies both, plus the crossbeam-parallel exact
//! solver's speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jury_core::exact::{exact_paym, exact_paym_parallel, ExactConfig};
use jury_core::paym::{PayAlg, PayConfig};
use jury_data::distributions::Truncation;
use jury_data::pools::{paid_pool, PoolConfig};
use std::hint::black_box;

fn bench_paym(c: &mut Criterion) {
    let mut group = c.benchmark_group("paym_solvers");
    group.sample_size(10);

    for &n in &[1000usize, 4000] {
        let pool = paid_pool(&PoolConfig {
            size: n,
            rate_mean: 0.2,
            rate_std: 0.05,
            cost_mean: 0.4,
            cost_std: 0.2,
            truncation: Truncation::Resample,
            seed: 0x9A9,
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &pool, |b, p| {
            b.iter(|| PayAlg::solve(black_box(p), 0.5, &PayConfig::default()))
        });
    }

    for &n in &[16usize, 20] {
        let pool = paid_pool(&PoolConfig {
            size: n,
            rate_mean: 0.2,
            rate_std: 0.05,
            cost_mean: 0.05,
            cost_std: 0.2,
            truncation: Truncation::Resample,
            seed: 0x9A9,
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &pool, |b, p| {
            b.iter(|| exact_paym(black_box(p), 1.0, &ExactConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("exact_parallel", n), &pool, |b, p| {
            b.iter(|| exact_paym_parallel(black_box(p), 1.0, &ExactConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paym);
criterion_main!(benches);
