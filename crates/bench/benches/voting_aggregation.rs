//! Extension bench — plain vs weighted majority voting.
//!
//! The paper aggregates with plain majority voting (Definition 3); the
//! log-odds weighted variant is this repository's extension. The bench
//! measures aggregation throughput for both and, more interestingly,
//! Monte-Carlo-estimates their error rates on a heterogeneous jury —
//! weighted MV is the Bayes-optimal aggregator when rates are known.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jury_core::juror::pool_from_rates;
use jury_core::jury::Jury;
use jury_core::voting::{majority_vote, weighted_majority_vote, Voting};
use jury_sim::voting_sim::simulate_voting;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_voting(c: &mut Criterion) {
    let mut group = c.benchmark_group("voting_aggregation");
    for &n in &[5usize, 51, 501] {
        let rates: Vec<f64> = (0..n).map(|i| 0.05 + 0.5 * (i as f64 / n as f64)).collect();
        let jury = Jury::new(pool_from_rates(&rates).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let votings: Vec<Voting> =
            (0..64).map(|_| simulate_voting(&jury, true, &mut rng)).collect();

        group.bench_with_input(BenchmarkId::new("majority", n), &votings, |b, vs| {
            b.iter(|| {
                vs.iter().map(|v| majority_vote(black_box(v)).as_bool()).filter(|&x| x).count()
            })
        });
        group.bench_with_input(BenchmarkId::new("weighted", n), &votings, |b, vs| {
            b.iter(|| {
                vs.iter()
                    .map(|v| weighted_majority_vote(&jury, black_box(v)).unwrap().as_bool())
                    .filter(|&x| x)
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_voting);
criterion_main!(benches);
