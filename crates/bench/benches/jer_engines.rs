//! Ablation X1 — JER engine scaling.
//!
//! Measures the paper's §3.1 complexity claims: naive enumeration is
//! exponential, the Lemma-1 dynamic program is `O(n²)` and CBA is
//! `O(n log n)`; the DP should win on small juries and CBA beyond the
//! `Auto` crossover (`jury_core::jer::AUTO_CBA_THRESHOLD`). The `O(n)`
//! refined-normal approximation rides along as the screening-accuracy
//! ablation's speed side (accuracy is pinned by `jury-numeric` tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jury_core::jer::JerEngine;
use jury_numeric::approx::refined_normal_tail;
use std::hint::black_box;

fn rates(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.05 + 0.9 * ((i * 37 % 100) as f64 / 100.0)).collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("jer_engines");
    for &n in &[15usize, 63, 255, 1023, 4095] {
        let eps = rates(n);
        if n <= 15 {
            group.bench_with_input(BenchmarkId::new("naive", n), &eps, |b, eps| {
                b.iter(|| JerEngine::Naive.jer(black_box(eps)))
            });
        }
        group.bench_with_input(BenchmarkId::new("dp", n), &eps, |b, eps| {
            b.iter(|| JerEngine::DynamicProgramming.jer(black_box(eps)))
        });
        group.bench_with_input(BenchmarkId::new("tail_dp", n), &eps, |b, eps| {
            b.iter(|| JerEngine::TailDp.jer(black_box(eps)))
        });
        group.bench_with_input(BenchmarkId::new("cba", n), &eps, |b, eps| {
            b.iter(|| JerEngine::Convolution.jer(black_box(eps)))
        });
        // O(n) refined-normal screening approximation (ablation X5).
        group.bench_with_input(BenchmarkId::new("refined_normal", n), &eps, |b, eps| {
            b.iter(|| refined_normal_tail(black_box(eps), eps.len().div_ceil(2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
