//! Figure 3(b) companion + ablation X3 — AltrALG variants.
//!
//! Criterion-grade measurement of the three AltrALG configurations on
//! the Figure 3(b) workload (ε ~ N(0.1, 0.05²)): the paper's algorithm
//! without bounding, with Lemma-2 bounding, and the incremental-pmf
//! extension. Also includes an error-prone pool (mean 0.7) where the
//! bound actually prunes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::juror::Juror;
use jury_data::distributions::Truncation;
use jury_data::pools::{rate_pool, PoolConfig};
use std::hint::black_box;

fn pool(n: usize, mean: f64) -> Vec<Juror> {
    rate_pool(&PoolConfig {
        size: n,
        rate_mean: mean,
        rate_std: 0.05,
        truncation: Truncation::Resample,
        seed: 0xA17A,
        ..Default::default()
    })
}

fn bench_altr(c: &mut Criterion) {
    let mut group = c.benchmark_group("altr_scaling");
    group.sample_size(10);
    for &n in &[250usize, 500, 1000] {
        let reliable = pool(n, 0.1);
        group.bench_with_input(BenchmarkId::new("paper", n), &reliable, |b, p| {
            b.iter(|| AltrAlg::solve(black_box(p), &AltrConfig::paper_without_bound()))
        });
        group.bench_with_input(BenchmarkId::new("paper_bounded", n), &reliable, |b, p| {
            b.iter(|| AltrAlg::solve(black_box(p), &AltrConfig::paper_with_bound()))
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &reliable, |b, p| {
            b.iter(|| AltrAlg::solve(black_box(p), &AltrConfig::default()))
        });
        // Error-prone pool: γ < 1 prefixes appear, the bound prunes.
        let error_prone = pool(n, 0.7);
        group.bench_with_input(
            BenchmarkId::new("paper_bounded_errorprone", n),
            &error_prone,
            |b, p| b.iter(|| AltrAlg::solve(black_box(p), &AltrConfig::paper_with_bound())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_altr);
criterion_main!(benches);
