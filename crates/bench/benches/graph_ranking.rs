//! Ablation X4 — HITS/PageRank cost on synthetic retweet graphs.
//!
//! §4.1's parameter-estimation pipeline spends its time in graph
//! construction and power iterations. This bench measures the parse →
//! graph step and both rankers over growing micro-blog corpora.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jury_graph::{hits, pagerank, HitsConfig, PageRankConfig};
use jury_microblog::graph_builder::build_retweet_graph;
use jury_microblog::synth::{MicroblogDataset, SynthConfig};
use std::hint::black_box;

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_ranking");
    group.sample_size(20);
    for &n_users in &[500usize, 2000] {
        let dataset = MicroblogDataset::generate(&SynthConfig {
            n_users,
            n_tweets: n_users * 10,
            seed: 0x6EA9,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("parse_and_build", n_users), &dataset, |b, d| {
            b.iter(|| build_retweet_graph(black_box(&d.tweets)))
        });
        let rg = dataset.build_graph();
        group.bench_with_input(BenchmarkId::new("hits", n_users), &rg, |b, rg| {
            b.iter(|| hits(black_box(&rg.graph), &HitsConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("pagerank", n_users), &rg, |b, rg| {
            b.iter(|| pagerank(black_box(&rg.graph), &PageRankConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
