//! Figure 3(h) — precision & recall of PayALG on Twitter-like data.
//!
//! The paper takes the top 20 candidates per ranker (exact enumeration
//! must stay feasible), budgets of {0.1%, 1%, 10%, 20%} of
//! `M = mean requirement × candidate count`, and reports the precision
//! and recall of the greedy selection against the enumerated optimum.
//! Their finding: HITS pools give precision/recall 1 while PageRank
//! pools resemble ground truth less — many near-equal error rates widen
//! the space of JER-equivalent juries.

use crate::report::{fmt_f, Report};
use crate::twitter::{budget_scale_m, build_twitter_pools};
use jury_core::exact::{exact_paym_parallel, ExactConfig};
use jury_core::metrics::precision_recall;
use jury_core::paym::{PayAlg, PayConfig};

/// Budget fractions of M used by the paper.
pub const BUDGET_FRACTIONS: [f64; 4] = [0.001, 0.01, 0.1, 0.2];

/// Regenerates Figure 3(h).
pub fn run(quick: bool) -> Vec<Report> {
    let (n_users, top_k) = if quick { (600, 12) } else { (8000, 20) };
    let pools = build_twitter_pools(n_users, top_k);

    let mut report = Report::new(
        "fig3h",
        "Figure 3(h): Precision & Recall on Twitter Data",
        &["B (xM)", "HT-Prec", "HT-Rec", "PR-Prec", "PR-Rec"],
    );
    for &fraction in &BUDGET_FRACTIONS {
        let mut cells = vec![format!("{fraction}")];
        for jurors in [&pools.hits.jurors, &pools.pagerank.jurors] {
            let budget = fraction * budget_scale_m(jurors);
            let (prec, rec) = match (
                PayAlg::solve(jurors, budget, &PayConfig::default()),
                exact_paym_parallel(jurors, budget, &ExactConfig::default()),
            ) {
                (Ok(appx), Ok(opt)) => {
                    let pr = precision_recall(&appx.members, &opt.members);
                    (pr.precision, pr.recall)
                }
                // No feasible jury at this budget for either solver.
                _ => (f64::NAN, f64::NAN),
            };
            cells.push(fmt_f(prec, 3));
            cells.push(fmt_f(rec, 3));
        }
        report.push_row(&cells);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_budget_rows() {
        let reports = run(true);
        assert_eq!(reports[0].len(), BUDGET_FRACTIONS.len());
    }

    #[test]
    fn values_are_probabilities_when_defined() {
        for report in run(true) {
            for line in report.to_csv().lines().skip(1) {
                for cell in line.split(',').skip(1) {
                    let v: f64 = cell.parse().unwrap();
                    if !v.is_nan() {
                        assert!((0.0..=1.0).contains(&v), "{v}");
                    }
                }
            }
        }
    }
}
