//! Figure 3(e) — APPX vs OPT on total cost.
//!
//! PayALG ("APPX") against exhaustive enumeration ("OPT") on a small
//! PayM pool (N = 22, ε ~ N(0.2, 0.05²/0.1²), r ~ N(0.05, 0.2²)⁺),
//! budgets 0.5–1.5. The paper's shape: OPT's spent cost tracks the
//! budget tightly (the constraint binds); APPX spends no more than OPT.

use crate::report::{fmt_f, Report};
use jury_core::exact::{exact_paym_parallel, ExactConfig};
use jury_core::paym::{PayAlg, PayConfig};
use jury_data::workloads::{fig3ef_budgets, fig3ef_grid};

/// Regenerates Figure 3(e). The same solver runs back Figure 3(f); see
/// [`super::fig3f`].
pub fn run(quick: bool) -> Vec<Report> {
    let grid = fig3ef_grid();
    let budgets = if quick { vec![0.5, 1.0, 1.5] } else { fig3ef_budgets() };

    let mut reports = Vec::new();
    for cell in &grid {
        let mut report = Report::new(
            format!("fig3e_var{}", (cell.rate_std * 100.0) as u32),
            format!("Figure 3(e): APPX v.s. OPT on Total Cost (rate std {})", cell.rate_std),
            &["B", "APPX cost", "OPT cost"],
        );
        for &budget in &budgets {
            let appx = PayAlg::solve(&cell.pool, budget, &PayConfig::default())
                .map(|s| s.total_cost)
                .unwrap_or(0.0);
            let opt = exact_paym_parallel(&cell.pool, budget, &ExactConfig::default())
                .map(|s| s.total_cost)
                .unwrap_or(0.0);
            report.push_row(&[fmt_f(budget, 1), fmt_f(appx, 4), fmt_f(opt, 4)]);
        }
        reports.push(report);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_respect_budget() {
        let reports = run(true);
        assert_eq!(reports.len(), 2); // one per rate-std cell
        for report in &reports {
            for line in report.to_csv().lines().skip(1) {
                let cells: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
                assert!(cells[1] <= cells[0] + 1e-9, "APPX overspent: {line}");
                assert!(cells[2] <= cells[0] + 1e-9, "OPT overspent: {line}");
            }
        }
    }
}
