//! Figure 3(c) — budget vs. total cost of the selected jury.
//!
//! PayALG on pools of 1000 candidates (ε ~ N(0.2, 0.05²)) whose payment
//! requirements follow N(m, 0.2²) for m ∈ {0.3, 0.4, 0.5, 0.6}; the
//! budget sweeps 0.1–0.5. The paper's shape: spent cost grows with the
//! budget and stays below it; cheaper pools (smaller m) spend closer to
//! the budget because more enlargements fit.

use crate::report::{fmt_f, Report};
use jury_core::paym::{PayAlg, PayConfig};
use jury_data::workloads::{fig3cd_budgets, fig3cd_grid};

/// Regenerates Figure 3(c).
pub fn run(quick: bool) -> Vec<Report> {
    let grid = if quick { quick_grid() } else { fig3cd_grid() };
    let budgets = fig3cd_budgets();

    let mut report = Report::new(
        "fig3c",
        "Figure 3(c): Budget v.s. Total Cost",
        &["B", "m(0.3)", "m(0.4)", "m(0.5)", "m(0.6)"],
    );
    for &budget in &budgets {
        let mut cells = vec![fmt_f(budget, 1)];
        for cell in &grid {
            let cost = match PayAlg::solve(&cell.pool, budget, &PayConfig::default()) {
                Ok(sel) => sel.total_cost,
                Err(_) => 0.0, // no affordable juror at this budget
            };
            cells.push(fmt_f(cost, 4));
        }
        report.push_row(&cells);
    }
    vec![report]
}

fn quick_grid() -> Vec<jury_data::workloads::Fig3cdCell> {
    use jury_data::distributions::Truncation;
    use jury_data::pools::{paid_pool, PoolConfig};
    [0.3, 0.4, 0.5, 0.6]
        .iter()
        .enumerate()
        .map(|(i, &cost_mean)| jury_data::workloads::Fig3cdCell {
            cost_mean,
            pool: paid_pool(&PoolConfig {
                size: 150,
                rate_mean: 0.2,
                rate_std: 0.05,
                cost_mean,
                cost_std: 0.2,
                truncation: Truncation::Resample,
                seed: 0xC0FFEE ^ i as u64,
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_never_exceeds_budget() {
        let reports = run(true);
        let csv = reports[0].to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            let budget = cells[0];
            for &cost in &cells[1..] {
                assert!(cost <= budget + 1e-9, "cost {cost} > budget {budget}");
            }
        }
    }

    #[test]
    fn spent_cost_grows_with_budget() {
        let reports = run(true);
        let csv = reports[0].to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // For each pool column, the largest budget spends at least as
        // much as the smallest one.
        for col in 1..rows[0].len() {
            assert!(rows.last().unwrap()[col] + 1e-9 >= rows[0][col], "column {col} shrank");
        }
    }
}
