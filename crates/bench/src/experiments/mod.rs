//! One module per table/figure of the paper's evaluation (§5).
//!
//! Every module exposes `run(quick) -> Vec<Report>`: `quick = true`
//! shrinks pool sizes so integration tests and smoke runs finish in
//! seconds, `quick = false` uses the paper's parameters. The binaries in
//! `src/bin/` are one-line wrappers; `reproduce` chains everything.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table2`] | Table 2 — motivating-example JERs |
//! | [`fig3a`] | Fig 3(a) — jury size vs mean error rate |
//! | [`fig3b`] | Fig 3(b) — AltrALG efficiency (±bounding) |
//! | [`fig3c`] | Fig 3(c) — budget vs total cost (PayALG) |
//! | [`fig3d`] | Fig 3(d) — budget vs JER (PayALG) |
//! | [`fig3e`] | Fig 3(e) — APPX vs OPT, total cost |
//! | [`fig3f`] | Fig 3(f) — APPX vs OPT, JER |
//! | [`fig3g`] | Fig 3(g) — efficiency on Twitter-like data |
//! | [`fig3h`] | Fig 3(h) — precision & recall on Twitter-like data |
//! | [`fig3i`] | Fig 3(i) — jury size on Twitter-like data |

pub mod fig3a;
pub mod fig3b;
pub mod fig3c;
pub mod fig3d;
pub mod fig3e;
pub mod fig3f;
pub mod fig3g;
pub mod fig3h;
pub mod fig3i;
pub mod table2;

/// Reads the quick-mode switch from the environment
/// (`JURY_BENCH_QUICK=1`) or a `--quick` CLI flag.
pub fn quick_mode() -> bool {
    std::env::var_os("JURY_BENCH_QUICK").is_some_and(|v| v == "1")
        || std::env::args().any(|a| a == "--quick")
}
