//! Table 2 — the motivating example's jury error rates.
//!
//! Seven users A–G (Figure 1) with error rates .1/.2/.2/.3/.3/.4/.4; the
//! table lists JER for the juries discussed in §1. Our column adds the
//! exact (unrounded) values; the paper's printed "0.0805" for
//! {A…G} is a typo for the exact 0.085248 (its own text says "0.085").

use crate::report::{fmt_f, Report};
use jury_core::jer::JerEngine;

/// The Figure-1 error rates, indexed A=0 … G=6.
pub const FIGURE1_RATES: [f64; 7] = [0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4];

/// Table 2 rows: (label, member indices).
pub const TABLE2_JURIES: [(&str, &[usize]); 7] = [
    ("C", &[2]),
    ("A", &[0]),
    ("C,D,E", &[2, 3, 4]),
    ("A,B,C", &[0, 1, 2]),
    ("A,B,C,D,E", &[0, 1, 2, 3, 4]),
    ("A,B,C,D,E,F,G", &[0, 1, 2, 3, 4, 5, 6]),
    ("A,B,C,F,G", &[0, 1, 2, 5, 6]),
];

/// Regenerates Table 2.
pub fn run(_quick: bool) -> Vec<Report> {
    let mut report = Report::new(
        "table2",
        "Table 2: Error-rate of Example in Figure 1",
        &["crowd", "individual error-rates", "JER (exact)", "JER (paper)"],
    );
    let paper_values = ["0.2", "0.1", "0.174", "0.072", "0.0703", "0.0805*", "0.104"];
    for ((label, members), paper) in TABLE2_JURIES.iter().zip(paper_values) {
        let eps: Vec<f64> = members.iter().map(|&i| FIGURE1_RATES[i]).collect();
        let jer = JerEngine::Auto.jer(&eps);
        let rates = eps.iter().map(|e| format!("{e:.1}")).collect::<Vec<_>>().join(",");
        report.push_row(&[label.to_string(), rates, fmt_f(jer, 6), paper.to_string()]);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_all_paper_rows() {
        let reports = run(true);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].len(), 7);
        let csv = reports[0].to_csv();
        // Exact values for the juries the paper rounds.
        assert!(csv.contains("0.174000"));
        assert!(csv.contains("0.072000"));
        assert!(csv.contains("0.070360"));
        assert!(csv.contains("0.085248"));
        assert!(csv.contains("0.103840"));
    }
}
