//! Figure 3(b) — efficiency of JSP on AltrM.
//!
//! Wall-clock running time of the paper's AltrALG (CBA engine) with and
//! without the Lemma-2 lower-bounding enhancement, over pools of
//! 2000–6000 candidates with ε ~ N(0.1, std²), std ∈ {0.05, 0.1}.
//!
//! The legend matches the paper: `m(σ)` is the plain algorithm,
//! `m(σ,b)` the bound-enhanced one. With mean 0.1 the sorted prefixes are
//! reliable (γ > 1), so the bound can never prune and the `b` variants
//! pay pure overhead — the crossover behaviour the paper reports for
//! small sizes. The incremental extension is included as a third series
//! (an ablation the paper does not have).

use crate::report::{fmt_secs, Report};
use crate::timing::time_it;
use jury_core::altr::{AltrAlg, AltrConfig};
use jury_data::distributions::Truncation;
use jury_data::pools::{rate_pool, PoolConfig};
use jury_data::workloads::WORKLOAD_SEED;

/// Regenerates Figure 3(b).
pub fn run(quick: bool) -> Vec<Report> {
    let sizes: Vec<usize> =
        if quick { vec![200, 400, 600] } else { (2000..=6000).step_by(1000).collect() };
    let stds = [0.05, 0.1];

    let mut report = Report::new(
        "fig3b",
        "Figure 3(b): Efficiency of JSP on AltrM",
        &["N", "m(0.05)", "m(0.05,b)", "m(0.1)", "m(0.1,b)", "incremental(0.1)"],
    );
    for (ni, &n) in sizes.iter().enumerate() {
        let mut cells = vec![n.to_string()];
        let mut pool_01 = None;
        for (si, &std) in stds.iter().enumerate() {
            let pool = rate_pool(&PoolConfig {
                size: n,
                rate_mean: 0.1,
                rate_std: std,
                truncation: Truncation::Resample,
                seed: WORKLOAD_SEED ^ 0xB000 ^ ((si as u64) << 32) ^ ni as u64,
                ..Default::default()
            });
            let (_, plain) =
                time_it(|| AltrAlg::solve(&pool, &AltrConfig::paper_without_bound()).unwrap());
            let (_, bounded) =
                time_it(|| AltrAlg::solve(&pool, &AltrConfig::paper_with_bound()).unwrap());
            cells.push(fmt_secs(plain));
            cells.push(fmt_secs(bounded));
            if si == 1 {
                pool_01 = Some(pool);
            }
        }
        let (_, inc) =
            time_it(|| AltrAlg::solve(pool_01.as_ref().unwrap(), &AltrConfig::default()).unwrap());
        cells.push(fmt_secs(inc));
        report.push_row(&cells);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::altr::AltrStrategy;
    use jury_core::jer::JerEngine;

    #[test]
    fn produces_one_row_per_size() {
        let reports = run(true);
        assert_eq!(reports[0].len(), 3);
    }

    #[test]
    fn all_variants_agree_on_the_selection() {
        // The figure is about time; quality must be identical. On very
        // reliable pools the optimal JER underflows towards 0 and many
        // sizes tie within rounding, so equality is asserted on the JER,
        // not on the exact member set.
        let pool = rate_pool(&PoolConfig {
            size: 301,
            rate_mean: 0.1,
            rate_std: 0.05,
            seed: 1,
            ..Default::default()
        });
        let a = AltrAlg::solve(&pool, &AltrConfig::paper_without_bound()).unwrap();
        let b = AltrAlg::solve(&pool, &AltrConfig::paper_with_bound()).unwrap();
        let c = AltrAlg::solve(
            &pool,
            &AltrConfig {
                strategy: AltrStrategy::Incremental,
                use_lower_bound: false,
                engine: JerEngine::Auto,
            },
        )
        .unwrap();
        assert!((a.jer - b.jer).abs() < 1e-12);
        assert!((a.jer - c.jer).abs() < 1e-12);
        assert_eq!(a.members, b.members); // same engine, same scan
    }
}
