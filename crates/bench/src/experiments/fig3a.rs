//! Figure 3(a) — optimal jury size vs. mean individual error rate.
//!
//! For N = 1000 candidates with ε ~ N(mean, std²) truncated to (0,1),
//! AltrALG's optimal jury size is plotted against the mean for spreads
//! {0.1, 0.2, 0.3}. The paper's shape: large (noisy) sizes while the
//! mean is below 0.5 — the optimisation surface is flat — then a sharp
//! collapse towards size 1 once candidates are error-prone ("the hands
//! of the few"), with the turning point at mean ≈ 0.5.

use crate::report::{fmt_f, Report};
use jury_core::altr::{AltrAlg, AltrConfig};
use jury_data::distributions::Truncation;
use jury_data::pools::{rate_pool, PoolConfig};
use jury_data::workloads::WORKLOAD_SEED;

/// Regenerates Figure 3(a).
pub fn run(quick: bool) -> Vec<Report> {
    let pool_size = if quick { 120 } else { 1000 };
    let means: Vec<f64> = if quick {
        (1..=9).map(|i| 0.1 * i as f64).collect()
    } else {
        (1..=19).map(|i| 0.05 * i as f64).collect()
    };
    let stds = [0.1, 0.2, 0.3];

    let mut report = Report::new(
        "fig3a",
        "Figure 3(a): Jury Size v.s. Individual Error-rate",
        &["mean", "var(0.1) size", "var(0.2) size", "var(0.3) size"],
    );
    for (mi, &mean) in means.iter().enumerate() {
        let mut cells = vec![fmt_f(mean, 2)];
        for (si, &std) in stds.iter().enumerate() {
            let pool = rate_pool(&PoolConfig {
                size: pool_size,
                rate_mean: mean,
                rate_std: std,
                truncation: Truncation::Resample,
                seed: WORKLOAD_SEED ^ ((si as u64) << 32) ^ mi as u64,
                ..Default::default()
            });
            let sel = AltrAlg::solve(&pool, &AltrConfig::default()).expect("non-empty pool");
            cells.push(sel.size().to_string());
        }
        report.push_row(&cells);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let reports = run(true);
        let report = &reports[0];
        assert!(report.len() >= 9);
        let csv = reports[0].to_csv();
        let rows: Vec<Vec<&str>> = csv.lines().skip(1).map(|l| l.split(',').collect()).collect();
        // Reliable regime (mean 0.1): large juries.
        let low: usize = rows[0][1].parse().unwrap();
        // Error-prone regime (mean 0.9): tiny juries.
        let high: usize = rows[8][1].parse().unwrap();
        assert!(low > high, "low-mean size {low} should exceed high-mean size {high}");
        assert!(high <= 3, "error-prone pools must shrink to the hands of the few");
    }
}
