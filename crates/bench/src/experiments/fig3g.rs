//! Figure 3(g) — AltrALG efficiency on Twitter-like data.
//!
//! The paper runs AltrALG over the top-5000 users of its Twitter crawl,
//! scored by HITS ("HT") and PageRank ("PR"), with and without the
//! lower-bounding enhancement ("-B"), for candidate counts 1000–5000,
//! plotting log running time. Their finding: bounding helps on the
//! PageRank dataset (whose normalised error rates crowd the extremes, so
//! γ < 1 prefixes are common and prunable) but adds overhead on HITS.
//!
//! We reproduce the same four series over the synthetic micro-blog
//! corpus, normalised once over the full top-5000 (as the paper does)
//! and sliced to the first N candidates per measurement.

use crate::report::{fmt_secs, Report};
use crate::timing::time_it;
use crate::twitter::build_twitter_pools;
use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::juror::Juror;

/// Regenerates Figure 3(g).
pub fn run(quick: bool) -> Vec<Report> {
    let (n_users, top_k, sizes): (usize, usize, Vec<usize>) = if quick {
        (1200, 600, vec![200, 400, 600])
    } else {
        (8000, 5000, (1000..=5000).step_by(1000).collect())
    };
    let pools = build_twitter_pools(n_users, top_k);

    let mut report = Report::new(
        "fig3g",
        "Figure 3(g): Efficiency of JSP on Twitter Data",
        &["N", "HT", "HT-B", "PR", "PR-B"],
    );
    for &n in &sizes {
        let mut cells = vec![n.to_string()];
        for jurors in [&pools.hits.jurors, &pools.pagerank.jurors] {
            let slice: &[Juror] = &jurors[..n.min(jurors.len())];
            let (_, plain) =
                time_it(|| AltrAlg::solve(slice, &AltrConfig::paper_without_bound()).unwrap());
            let (_, bounded) =
                time_it(|| AltrAlg::solve(slice, &AltrConfig::paper_with_bound()).unwrap());
            cells.push(fmt_secs(plain));
            cells.push(fmt_secs(bounded));
        }
        report.push_row(&cells);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::altr::AltrStrategy;
    use jury_core::jer::JerEngine;

    #[test]
    fn produces_all_series() {
        let reports = run(true);
        assert_eq!(reports[0].len(), 3);
        let csv = reports[0].to_csv();
        assert!(csv.lines().next().unwrap().contains("HT-B"));
    }

    #[test]
    fn bounding_prunes_on_extreme_rate_pools() {
        // PageRank-normalised pools have most rates near 1 — exactly the
        // regime where γ < 1 prefixes appear and Lemma 2 can prune.
        let pools = build_twitter_pools(800, 400);
        let sel = AltrAlg::solve(
            &pools.pagerank.jurors,
            &AltrConfig {
                strategy: AltrStrategy::PaperRecompute,
                use_lower_bound: true,
                engine: JerEngine::Convolution,
            },
        )
        .unwrap();
        assert!(
            sel.stats.pruned_by_bound > 0,
            "expected pruning on extreme-rate pool, stats {:?}",
            sel.stats
        );
    }
}
