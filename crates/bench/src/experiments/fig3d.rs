//! Figure 3(d) — budget vs. JER of the selected jury.
//!
//! Same pools and budgets as Figure 3(c). The paper's shape: a rising
//! budget lowers JER (looser constraint, bigger feasible juries), and at
//! equal budget the cheaper pool (smaller requirement mean) achieves a
//! lower JER.

use crate::report::{fmt_f, Report};
use jury_core::paym::{PayAlg, PayConfig};
use jury_data::workloads::{fig3cd_budgets, fig3cd_grid};

/// Regenerates Figure 3(d).
pub fn run(quick: bool) -> Vec<Report> {
    let grid = if quick { quick_grid() } else { fig3cd_grid() };
    let budgets = fig3cd_budgets();

    let mut report = Report::new(
        "fig3d",
        "Figure 3(d): Budget v.s. JER",
        &["B", "m(0.3)", "m(0.4)", "m(0.5)", "m(0.6)"],
    );
    for &budget in &budgets {
        let mut cells = vec![fmt_f(budget, 1)];
        for cell in &grid {
            let jer = match PayAlg::solve(&cell.pool, budget, &PayConfig::default()) {
                Ok(sel) => sel.jer,
                Err(_) => f64::NAN, // no jury formable
            };
            cells.push(fmt_f(jer, 6));
        }
        report.push_row(&cells);
    }
    vec![report]
}

fn quick_grid() -> Vec<jury_data::workloads::Fig3cdCell> {
    use jury_data::distributions::Truncation;
    use jury_data::pools::{paid_pool, PoolConfig};
    [0.3, 0.4, 0.5, 0.6]
        .iter()
        .enumerate()
        .map(|(i, &cost_mean)| jury_data::workloads::Fig3cdCell {
            cost_mean,
            pool: paid_pool(&PoolConfig {
                size: 150,
                rate_mean: 0.2,
                rate_std: 0.05,
                cost_mean,
                cost_std: 0.2,
                truncation: Truncation::Resample,
                seed: 0xC0FFEE ^ i as u64,
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        let reports = run(true);
        reports[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect()
    }

    #[test]
    fn jer_improves_with_budget() {
        let rows = rows();
        for col in 1..rows[0].len() {
            let first = rows[0][col];
            let last = rows.last().unwrap()[col];
            if first.is_nan() || last.is_nan() {
                continue;
            }
            assert!(last <= first + 1e-9, "column {col}: {last} > {first}");
        }
    }

    #[test]
    fn cheaper_pool_wins_at_top_budget() {
        let rows = rows();
        let last = rows.last().unwrap();
        // m(0.3) vs m(0.6) at the largest budget.
        if !last[1].is_nan() && !last[4].is_nan() {
            assert!(last[1] <= last[4] + 1e-9, "m(0.3)={} should beat m(0.6)={}", last[1], last[4]);
        }
    }
}
