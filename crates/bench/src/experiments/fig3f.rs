//! Figure 3(f) — APPX vs OPT on JER.
//!
//! Same setting as Figure 3(e), comparing the achieved Jury Error Rate.
//! The paper's shape: OPT ≤ APPX everywhere; the gap is largest at the
//! tightest budget and closes as the budget loosens (the paper reports
//! the heuristic matching OPT on 4 of 11 budgets).

use crate::report::{fmt_f, Report};
use jury_core::exact::{exact_paym_parallel, ExactConfig};
use jury_core::paym::{PayAlg, PayConfig};
use jury_data::workloads::{fig3ef_budgets, fig3ef_grid};

/// Regenerates Figure 3(f).
pub fn run(quick: bool) -> Vec<Report> {
    let grid = fig3ef_grid();
    let budgets = if quick { vec![0.5, 1.0, 1.5] } else { fig3ef_budgets() };

    let mut reports = Vec::new();
    for cell in &grid {
        let mut report = Report::new(
            format!("fig3f_var{}", (cell.rate_std * 100.0) as u32),
            format!("Figure 3(f): APPX v.s. OPT on JER (rate std {})", cell.rate_std),
            &["B", "APPX JER", "OPT JER", "optimal?"],
        );
        let mut hits = 0usize;
        for &budget in &budgets {
            let appx = PayAlg::solve(&cell.pool, budget, &PayConfig::default())
                .map(|s| s.jer)
                .unwrap_or(f64::NAN);
            let opt = exact_paym_parallel(&cell.pool, budget, &ExactConfig::default())
                .map(|s| s.jer)
                .unwrap_or(f64::NAN);
            let optimal = (appx - opt).abs() < 1e-9;
            if optimal {
                hits += 1;
            }
            report.push_row(&[
                fmt_f(budget, 1),
                fmt_f(appx, 6),
                fmt_f(opt, 6),
                if optimal { "yes".into() } else { "no".into() },
            ]);
        }
        report.title =
            format!("{} — APPX optimal on {hits}/{} budgets", report.title, budgets.len());
        reports.push(report);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_dominates_appx() {
        for report in run(true) {
            for line in report.to_csv().lines().skip(1) {
                let cells: Vec<&str> = line.split(',').collect();
                let appx: f64 = cells[1].parse().unwrap();
                let opt: f64 = cells[2].parse().unwrap();
                if appx.is_nan() || opt.is_nan() {
                    continue;
                }
                assert!(opt <= appx + 1e-9, "OPT {opt} worse than APPX {appx}");
            }
        }
    }
}
