//! Figure 3(i) — jury size on Twitter-like data.
//!
//! Same top-20 pools as Figure 3(h); the budget sweeps 0–1 and the
//! figure compares the size of the jury formed by PayALG ("-Pay")
//! against the enumerated optimum ("-TRUE") for both rankers. The
//! paper's shape: sizes grow with the budget in odd steps and the greedy
//! sizes track ground truth closely (identically, for the HITS pool).

use crate::report::Report;
use crate::twitter::build_twitter_pools;
use jury_core::exact::{exact_paym_parallel, ExactConfig};
use jury_core::paym::{PayAlg, PayConfig};

/// Regenerates Figure 3(i).
pub fn run(quick: bool) -> Vec<Report> {
    let (n_users, top_k) = if quick { (600, 12) } else { (8000, 20) };
    let budgets: Vec<f64> =
        if quick { vec![0.2, 0.6, 1.0] } else { (1..=10).map(|i| i as f64 * 0.1).collect() };
    let pools = build_twitter_pools(n_users, top_k);

    let mut report = Report::new(
        "fig3i",
        "Figure 3(i): Jury Size on Twitter Data",
        &["B", "HT-Pay", "HT-TRUE", "PR-Pay", "PR-TRUE"],
    );
    for &budget in &budgets {
        let mut cells = vec![format!("{budget:.1}")];
        for jurors in [&pools.hits.jurors, &pools.pagerank.jurors] {
            let pay = PayAlg::solve(jurors, budget, &PayConfig::default())
                .map(|s| s.size().to_string())
                .unwrap_or_else(|_| "-".into());
            let truth = exact_paym_parallel(jurors, budget, &ExactConfig::default())
                .map(|s| s.size().to_string())
                .unwrap_or_else(|_| "-".into());
            cells.push(pay);
            cells.push(truth);
        }
        report.push_row(&cells);
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_odd_when_defined() {
        for report in run(true) {
            for line in report.to_csv().lines().skip(1) {
                for cell in line.split(',').skip(1) {
                    if cell == "-" {
                        continue;
                    }
                    let size: usize = cell.parse().unwrap();
                    assert_eq!(size % 2, 1, "even jury size {size}");
                }
            }
        }
    }
}
