//! Wall-clock timing helpers for the efficiency figures.
//!
//! The paper's Figures 3(b) and 3(g) plot end-to-end solver running time
//! against pool size. Criterion handles the statistically careful
//! micro-benchmarks; these helpers serve the figure binaries, which need
//! one representative wall-clock number per configuration.

use std::time::Instant;

/// Runs `f` once and returns `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Runs `f` `repeats` times and returns the *minimum* elapsed seconds
/// together with the last result — the minimum is the standard
/// low-variance statistic for wall-clock comparisons.
///
/// # Panics
/// Panics if `repeats` is zero.
pub fn time_best_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(repeats > 0, "need at least one repetition");
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let (out, secs) = time_it(&mut f);
        best = best.min(secs);
        last = Some(out);
    }
    (last.expect("repeats > 0"), best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result_and_positive_time() {
        let (value, secs) = time_it(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn best_of_is_no_larger_than_single() {
        let work = || {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        };
        let (_, single) = time_it(work);
        let (_, best) = time_best_of(5, work);
        // Allow generous scheduling noise; the min of 5 should not exceed
        // a single cold run by much.
        assert!(best <= single * 10.0 + 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repeats_rejected() {
        let _ = time_best_of(0, || ());
    }
}
