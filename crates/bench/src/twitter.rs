//! The shared synthetic "Twitter" dataset for the §5.2 experiments.
//!
//! The paper crawls two days of the public timeline (689,050 users),
//! builds the retweet graph, ranks users with HITS and PageRank, keeps
//! the top scorers and normalises their scores into error rates with
//! α = β = 10. We reproduce the same pipeline over the synthetic
//! micro-blog generator (see DESIGN.md's substitution table): tweets are
//! real text with `RT @user` markup, parsed by the same Algorithm-5 code
//! path a real crawl would use.

use jury_core::juror::Juror;
use jury_estimate::pipeline::{
    estimate_candidates, EstimatedCandidates, PipelineConfig, RankingAlgorithm,
};
use jury_estimate::NormalizationParams;
use jury_graph::{HitsConfig, PageRankConfig};
use jury_microblog::synth::{MicroblogDataset, SynthConfig};

/// Deterministic seed for the §5.2 dataset.
pub const TWITTER_SEED: u64 = 0x7717_2012;

/// Candidate pools estimated from the same tweet corpus with both
/// ranking algorithms.
#[derive(Debug, Clone)]
pub struct TwitterPools {
    /// Candidates ranked/normalised via HITS authority scores ("HT").
    pub hits: EstimatedCandidates,
    /// Candidates ranked/normalised via PageRank ("PR").
    pub pagerank: EstimatedCandidates,
    /// The generating dataset (kept for age lookups and diagnostics).
    pub dataset: MicroblogDataset,
}

/// Generates a micro-blog corpus with `n_users` accounts and estimates
/// candidate pools with both rankers, keeping the `top_k` best scorers
/// (the paper keeps 5,000 of 689,050; the ratio is what matters for the
/// score distribution's shape).
pub fn build_twitter_pools(n_users: usize, top_k: usize) -> TwitterPools {
    let dataset = MicroblogDataset::generate(&SynthConfig {
        n_users,
        n_tweets: n_users * 12, // enough activity for a connected core
        seed: TWITTER_SEED,
        ..Default::default()
    });
    let age_of = |name: &str| {
        name.strip_prefix('u')
            .and_then(|s| s.parse::<usize>().ok())
            .and_then(|i| dataset.users.get(i))
            .map(|u| u.account_age_days)
    };
    let hits = estimate_candidates(
        &dataset.tweets,
        age_of,
        &PipelineConfig {
            ranking: RankingAlgorithm::Hits(HitsConfig::default()),
            normalization: NormalizationParams::default(),
            top_k: Some(top_k),
        },
    );
    let pagerank = estimate_candidates(
        &dataset.tweets,
        age_of,
        &PipelineConfig {
            ranking: RankingAlgorithm::PageRank(PageRankConfig::default()),
            normalization: NormalizationParams::default(),
            top_k: Some(top_k),
        },
    );
    TwitterPools { hits, pagerank, dataset }
}

/// The paper's budget scale for Figure 3(h): `M` is the mean estimated
/// requirement times the number of candidates.
pub fn budget_scale_m(pool: &[Juror]) -> f64 {
    if pool.is_empty() {
        return 0.0;
    }
    let mean: f64 = pool.iter().map(|j| j.cost).sum::<f64>() / pool.len() as f64;
    mean * pool.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_have_requested_size() {
        let p = build_twitter_pools(300, 50);
        assert_eq!(p.hits.len(), 50);
        assert_eq!(p.pagerank.len(), 50);
    }

    #[test]
    fn pools_are_deterministic() {
        let a = build_twitter_pools(200, 20);
        let b = build_twitter_pools(200, 20);
        assert_eq!(a.hits.jurors, b.hits.jurors);
        assert_eq!(a.pagerank.jurors, b.pagerank.jurors);
    }

    #[test]
    fn rates_span_the_normalised_range() {
        // Power-law scores + exponential normalisation: the top user is
        // near-perfect, the worst near 1.
        let p = build_twitter_pools(400, 100);
        let best = p.hits.jurors.iter().map(Juror::epsilon).fold(f64::INFINITY, f64::min);
        let worst = p.hits.jurors.iter().map(Juror::epsilon).fold(0.0, f64::max);
        assert!(best < 1e-6, "best {best}");
        assert!(worst > 0.9, "worst {worst}");
    }

    #[test]
    fn budget_scale() {
        let p = build_twitter_pools(200, 20);
        let m = budget_scale_m(&p.hits.jurors);
        let total: f64 = p.hits.jurors.iter().map(|j| j.cost).sum();
        assert!((m - total).abs() < 1e-9);
        assert_eq!(budget_scale_m(&[]), 0.0);
    }

    #[test]
    fn rankers_agree_on_top_users_broadly() {
        // §5.2.1: "most top ranking users discovered by Pagerank overlaps
        // with the ones identified by HITS". Check top-10 overlap ≥ 5.
        let p = build_twitter_pools(400, 10);
        let hits_top: std::collections::HashSet<&String> = p.hits.usernames.iter().collect();
        let overlap = p.pagerank.usernames.iter().filter(|u| hits_top.contains(u)).count();
        assert!(overlap >= 5, "only {overlap}/10 overlap");
    }
}
