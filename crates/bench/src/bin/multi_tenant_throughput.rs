//! `multi_tenant_throughput` — the warm-artifact store's payoff.
//!
//! The multi-tenant workload: M logical pools (per-tenant, per-topic,
//! per-region registries) over **one** juror population. For each pool
//! size the emitter measures the aggregate *register + first-solve*
//! cost — `create_pool` + one AltrM solve + one PayM solve + one
//! `jer_profile` materialisation per pool — for M replicated pools:
//!
//! * **sharing on** (default config): the first pool builds the warm
//!   artifact set, every further pool attaches to the interned entry
//!   (`O(N)` content verification + `Arc` clones);
//! * **sharing off** (`share_artifacts: false`): every pool pays the
//!   full `O(N log N + N²)`-flavoured warm-up privately — what every
//!   pool paid before the store existed.
//!
//! A second measurement drives the **mutation churn** loop: two
//! replicated pools, one of which is repeatedly perturbed away
//! (copy-on-write detach + in-place repair) and restored (fingerprint
//! re-join), timing the detach→solve and rejoin→solve halves and
//! asserting the detach/re-join counters moved.
//!
//! Appends a `"multi_tenant"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a seconds-long version and writes nothing — CI uses it to keep
//! this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin multi_tenant_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_secs, Report};
use jury_bench::timing::time_it;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_service::{DecisionTask, JuryService, ServiceConfig};
use serde::{json, Serialize, Value};

/// Deterministic pool: rates spread over (0.02, 0.95), convex prices —
/// the same synthetic workload as the other service emitters.
fn pool(n: usize) -> Vec<Juror> {
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0; // golden-ratio spread
            (0.02 + 0.93 * u, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

/// Registers `tenants` replicated pools and runs each one's first
/// solves (AltrM + PayM + profile), returning total seconds.
fn register_and_first_solve(service: &mut JuryService, jurors: &[Juror], tenants: usize) -> f64 {
    let (_, secs) = time_it(|| {
        for t in 0..tenants {
            let id = service.create_pool(jurors.to_vec());
            let altr = service.solve(&DecisionTask::altruism(id));
            assert!(altr.is_ok(), "tenant {t}: altr must solve");
            let paym = service.solve(&DecisionTask::pay_as_you_go(id, 2.5));
            assert!(paym.is_ok(), "tenant {t}: paym must solve");
            assert!(!service.jer_profile(id).unwrap().is_empty());
        }
    });
    secs
}

/// The detach/re-join churn loop on two replicated pools: perturb one
/// juror of pool A (detach + in-place repair + fresh AltrM solve), then
/// restore it (fingerprint re-join + shared replay). Returns mean
/// seconds per (detach half, rejoin half).
fn churn(
    service: &mut JuryService,
    a: jury_service::PoolId,
    original: Juror,
    rounds: usize,
) -> (f64, f64) {
    let perturbed = Juror::new(
        original.id,
        ErrorRate::new((original.epsilon() + 0.011).min(0.98)).unwrap(),
        original.cost,
    );
    let task = DecisionTask::altruism(a);
    let mut detach_total = 0.0;
    let mut rejoin_total = 0.0;
    for _ in 0..rounds {
        let (_, d) = time_it(|| {
            service.update_juror(a, 0, perturbed).unwrap();
            assert!(service.solve(&task).is_ok());
        });
        detach_total += d;
        let (_, r) = time_it(|| {
            service.update_juror(a, 0, original).unwrap();
            assert!(service.solve(&task).is_ok());
        });
        rejoin_total += r;
    }
    (detach_total / rounds as f64, rejoin_total / rounds as f64)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (pool_sizes, tenants, churn_rounds): (Vec<usize>, usize, usize) =
        if smoke { (vec![200], 8, 3) } else { (vec![1_000, 10_000], 64, 20) };

    let mut report = Report::new(
        "multi_tenant_throughput",
        "M replicated pools: aggregate register+first-solve, sharing on vs off, plus \
         detach/re-join churn",
        &["pool", "tenants", "shared", "private", "speedup", "churn detach", "churn rejoin"],
    );
    let mut rows: Vec<Value> = Vec::new();

    for &n in &pool_sizes {
        let jurors = pool(n);

        let mut with_store = JuryService::new();
        let shared_secs = register_and_first_solve(&mut with_store, &jurors, tenants);
        let stats = with_store.stats();
        assert_eq!(
            stats.artifact_share_hits,
            tenants - 1,
            "every tenant after the first must attach"
        );
        assert_eq!(with_store.artifact_entries(), 1, "one interned artifact set");

        let mut without_store = JuryService::with_config(ServiceConfig {
            share_artifacts: false,
            ..Default::default()
        });
        let private_secs = register_and_first_solve(&mut without_store, &jurors, tenants);
        let speedup = private_secs / shared_secs;

        // Churn on the shared service: pool 0 is perturbed and restored
        // against its surviving replicas.
        let a = with_store.create_pool(jurors.clone());
        with_store.warm_pool(a).unwrap();
        let detaches_before = with_store.stats().artifact_detaches;
        let rejoins_before = with_store.stats().artifact_rejoins;
        let (churn_detach, churn_rejoin) = churn(&mut with_store, a, jurors[0], churn_rounds);
        let stats = with_store.stats();
        assert_eq!(
            stats.artifact_detaches - detaches_before,
            2 * churn_rounds,
            "every churn half begins with a detach"
        );
        assert_eq!(
            stats.artifact_rejoins - rejoins_before,
            churn_rounds,
            "every restoration must re-join"
        );

        report.row(&[
            &n,
            &tenants,
            &fmt_secs(shared_secs),
            &fmt_secs(private_secs),
            &format!("{speedup:.1}x"),
            &fmt_secs(churn_detach),
            &fmt_secs(churn_rejoin),
        ]);
        rows.push(Value::object([
            ("pool_size", n.to_value()),
            ("tenants", tenants.to_value()),
            ("shared_register_first_solve_secs", shared_secs.to_value()),
            ("private_register_first_solve_secs", private_secs.to_value()),
            ("speedup", speedup.to_value()),
            ("churn_detach_solve_secs", churn_detach.to_value()),
            ("churn_rejoin_solve_secs", churn_rejoin.to_value()),
            ("churn_rounds", churn_rounds.to_value()),
        ]));
    }
    report.emit();

    if smoke {
        println!("[smoke] multi_tenant_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput, extended
    // by the sharded/staircase/altrm emitters) with the store section.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "M replicated pools over one juror population: aggregate register + first-solve \
             (create_pool + AltrM + PayM + jer_profile per pool) with the warm-artifact store on \
             vs off, plus per-mutation detach/re-join churn on two replicas"
                .to_value(),
        ),
        ("tenants", tenants.to_value()),
        ("pool_sizes", Value::Array(pool_sizes.iter().map(|n| n.to_value()).collect())),
        ("results", Value::Array(rows)),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "multi_tenant");
        fields.push(("multi_tenant".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (multi_tenant section)");
}
