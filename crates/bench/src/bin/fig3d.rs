//! Regenerates the paper's fig3d. Pass --quick for a fast smoke run.

fn main() {
    let quick = jury_bench::experiments::quick_mode();
    for report in jury_bench::experiments::fig3d::run(quick) {
        report.emit();
    }
}
