//! `rebalance_throughput` — the cost of *staying* warm under churn:
//! rescan-free sharded inserts and online shard re-balancing.
//!
//! Three scenarios:
//!
//! * **warm insert** — a warm sharded pool takes one new juror and the
//!   next task. The repair path pays one rank-insert per sorted run
//!   plus ladder pushes; the baseline invalidates the warm layer after
//!   the insert and pays the full shard rebuild on the next solve
//!   (measured at 10⁴ only — a cold 10⁶ rebuild per repeat is seconds
//!   of ladder convolution).
//! * **re-balance episode** — removals hollow out one shard until
//!   `refresh_degeneracy` flags it; the removal that triggers the steal
//!   is timed separately from the steady repairs before it.
//! * **post-steal solve** — the next warm solve after the episode, the
//!   latency a tenant sees once the membership permutation has healed
//!   the shard.
//!
//! Appends a `"rebalance"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a seconds-long version on tiny pools and writes nothing — CI
//! uses it to keep this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin rebalance_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_secs, Report};
use jury_bench::timing::time_best_of;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_service::{DecisionTask, JuryService, ServiceConfig, ShardConfig};
use serde::{json, Serialize, Value};
use std::time::Instant;

/// Deterministic pool: rates spread over (0.02, 0.95), convex prices.
fn pool(n: usize) -> Vec<Juror> {
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0; // golden-ratio spread
            (0.02 + 0.93 * u, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

fn sharded_service(k: usize) -> JuryService {
    JuryService::with_config(ServiceConfig {
        shard: ShardConfig { threshold: 1, shards: k, ..Default::default() },
        ..Default::default()
    })
}

/// Warm ingest: one insert, then the next task. `invalidate` switches to
/// the baseline that drops the warm layer after each insert, so the
/// solve pays the full shard rebuild the repair path avoids.
fn measure_insert(n: usize, k: usize, budget: f64, repeats: usize, invalidate: bool) -> f64 {
    let mut service = sharded_service(k);
    let id = service.create_pool(pool(n));
    let task = DecisionTask::pay_as_you_go(id, budget);
    service.warm_pool(id).expect("pool registered");
    assert!(service.solve(&task).is_ok(), "priming solve must succeed");
    let mut next = 2_000_000u32;
    let (_, secs) = time_best_of(repeats, || {
        next += 1;
        let e = 0.05 + ((next % 90) as f64) / 100.0;
        let juror = Juror::new(next, ErrorRate::new(e).unwrap(), 0.1);
        service.insert_juror(id, juror).expect("pool registered");
        if invalidate {
            service.invalidate_warm(id).expect("pool registered");
        }
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    if !invalidate {
        let stats = service.stats();
        assert_eq!(stats.full_repairs, 1, "warm inserts must repair, not rebuild");
        assert!(stats.insert_repairs > 0, "the repair counter must tick");
    }
    secs
}

/// Forced-degeneracy episode on K=4: removals at positions 0, 3, 6, …
/// hollow out creation shard 0 (its members sit at 4m, and after
/// removing original 4m the juror at 4(m+1) sits at 3(m+1)). Returns
/// (median steady-removal cost, the triggering removal's cost — repair
/// plus the steal —, post-steal warm solve, removals until the flag).
fn measure_episode(n: usize, budget: f64, repeats: usize) -> (f64, f64, f64, usize) {
    let mut service = sharded_service(4);
    let id = service.create_pool(pool(n));
    let task = DecisionTask::pay_as_you_go(id, budget);
    service.warm_pool(id).expect("pool registered");
    assert!(service.solve(&task).is_ok(), "priming solve must succeed");
    let mut steady: Vec<f64> = Vec::new();
    let mut m = 0usize;
    let episode = loop {
        let before = service.stats().shard_rebalances;
        let start = Instant::now();
        service.remove_juror(id, 3 * m).expect("drain schedule stays in range");
        let dt = start.elapsed().as_secs_f64();
        m += 1;
        if service.stats().shard_rebalances > before {
            break dt;
        }
        steady.push(dt);
        assert!(3 * m < n - m, "drain must flag degeneracy before running off the pool");
    };
    assert!(service.is_warm(id), "the steal repairs in place — the pool stays warm");
    let (_, post_steal) = time_best_of(repeats, || {
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    steady.sort_by(f64::total_cmp);
    let median = steady.get(steady.len() / 2).copied().unwrap_or(0.0);
    (median, episode, post_steal, m)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = 3.0f64;
    let (insert_sizes, baseline_sizes, shard_counts, episode_size, repeats): (
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        usize,
        usize,
    ) = if smoke {
        (vec![400], vec![400], vec![4], 400, 1)
    } else {
        (vec![10_000, 1_000_000], vec![10_000], vec![4, 16], 10_000, 3)
    };

    let mut report = Report::new(
        "rebalance_throughput",
        "warm sharded ingest: insert repair vs invalidate-and-rebuild, steal episodes",
        &["scenario", "pool", "shards", "repair", "baseline", "speedup"],
    );
    let mut rows: Vec<Value> = Vec::new();

    for &n in &insert_sizes {
        for &k in &shard_counts {
            let repaired = measure_insert(n, k, budget, repeats, false);
            let baseline = baseline_sizes
                .contains(&n)
                .then(|| measure_insert(n, k, budget, repeats.min(2), true));
            let speedup = baseline.map(|b| b / repaired);
            report.row(&[
                &"warm insert",
                &n,
                &k,
                &fmt_secs(repaired),
                &baseline.map_or("-".into(), fmt_secs),
                &speedup.map_or("-".into(), |s| format!("{s:.1}x")),
            ]);
            rows.push(Value::object([
                ("scenario", "warm_insert".to_value()),
                ("pool_size", n.to_value()),
                ("shards", k.to_value()),
                ("repair_secs", repaired.to_value()),
                ("invalidate_rebuild_secs", baseline.map_or(Value::Null, |b| b.to_value())),
                ("speedup", speedup.map_or(Value::Null, |s| s.to_value())),
            ]));
        }
    }

    let (steady, episode, post_steal, drains) = measure_episode(episode_size, budget, repeats);
    report.row(&[
        &"steal episode",
        &episode_size,
        &4usize,
        &fmt_secs(episode),
        &fmt_secs(steady),
        &format!("after {drains} removals"),
    ]);
    report.row(&[&"post-steal solve", &episode_size, &4usize, &fmt_secs(post_steal), &"-", &"-"]);
    rows.push(Value::object([
        ("scenario", "rebalance_episode".to_value()),
        ("pool_size", episode_size.to_value()),
        ("shards", 4usize.to_value()),
        ("episode_secs", episode.to_value()),
        ("steady_removal_secs", steady.to_value()),
        ("removals_to_flag", drains.to_value()),
    ]));
    rows.push(Value::object([
        ("scenario", "post_steal_solve".to_value()),
        ("pool_size", episode_size.to_value()),
        ("shards", 4usize.to_value()),
        ("solve_secs", post_steal.to_value()),
    ]));

    report.emit();

    if smoke {
        println!("[smoke] rebalance_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput) with the
    // rebalance section rather than clobbering the baseline document.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "warm sharded insert (repair vs invalidate-and-rebuild), forced-degeneracy steal"
                .to_value(),
        ),
        ("budget", budget.to_value()),
        ("pool_sizes", Value::Array(insert_sizes.iter().map(|n| n.to_value()).collect())),
        ("shard_counts", Value::Array(shard_counts.iter().map(|k| k.to_value()).collect())),
        (
            "baseline_note",
            "invalidate-and-rebuild measured at 10^4 only: a cold 10^6 rebuild per repeat is \
             seconds of ladder convolution"
                .to_value(),
        ),
        ("results", Value::Array(rows)),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "rebalance");
        fields.push(("rebalance".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (rebalance section)");
}
