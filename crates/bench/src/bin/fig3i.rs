//! Regenerates the paper's fig3i. Pass --quick for a fast smoke run.

fn main() {
    let quick = jury_bench::experiments::quick_mode();
    for report in jury_bench::experiments::fig3i::run(quick) {
        report.emit();
    }
}
