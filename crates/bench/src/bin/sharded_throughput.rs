//! `sharded_throughput` — post-mutation warm-solve scaling for sharded
//! pools, at pool sizes the flat cache cannot survive.
//!
//! The scenario is the serving layer's steady state: a warm pool, one
//! juror update (a re-estimated error rate), then the next task. A flat
//! pool pays a full cache rebuild — re-sort plus the `O(N²)` AltrM scan
//! and profile — so the flat baseline is only measured at 10⁴ (beyond
//! that a single rebuild takes tens of seconds to hours). A sharded pool
//! re-sorts one shard, re-merges the per-shard runs and lazily re-solves
//! only what the task stream demands, so the same measurement runs
//! comfortably at 10⁶ and the repair work scales with the shard size,
//! not the pool size.
//!
//! Appends a `"sharded"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a seconds-long version on tiny pools and writes nothing — CI
//! uses it to keep this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin sharded_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_secs, Report};
use jury_bench::timing::time_best_of;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_core::model::CrowdModel;
use jury_service::{DecisionTask, JuryService, PoolId, ServiceConfig, ShardConfig};
use serde::{json, Serialize, Value};

/// Deterministic pool: rates spread over (0.02, 0.95), convex prices.
fn pool(n: usize) -> Vec<Juror> {
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0; // golden-ratio spread
            (0.02 + 0.93 * u, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

/// One measurement: steady warm solve vs (mutation + re-warm + solve).
fn measure(
    service: &mut JuryService,
    id: PoolId,
    n: usize,
    model: CrowdModel,
    repeats: usize,
) -> (f64, f64) {
    let task = DecisionTask { pool: id, model };
    service.warm_pool(id).expect("pool registered");
    assert!(service.solve(&task).is_ok(), "priming solve must succeed");
    let (_, warm) = time_best_of(repeats, || {
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    let mut round = 0usize;
    let (_, post_mutation) = time_best_of(repeats, || {
        round += 1;
        let idx = (round * 7919) % n;
        let e = 0.05 + ((round * 13) % 90) as f64 / 100.0;
        let juror = Juror::new(idx as u32, ErrorRate::new(e).unwrap(), 0.1);
        service.update_juror(id, idx, juror).expect("index in range");
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    (post_mutation, warm)
}

fn sharded_service(k: usize) -> JuryService {
    JuryService::with_config(ServiceConfig {
        shard: ShardConfig { threshold: 1, shards: k, ..Default::default() },
        ..Default::default()
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = 3.0f64;
    let (pool_sizes, shard_counts, altr_sizes, flat_sizes, repeats): (
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        usize,
    ) = if smoke {
        (vec![400], vec![2, 4], vec![400], vec![400], 1)
    } else {
        (vec![10_000, 100_000, 1_000_000], vec![4, 16, 64], vec![10_000], vec![10_000], 3)
    };

    let mut report = Report::new(
        "sharded_throughput",
        "post-mutation warm solve: one juror update, then the next task",
        &["pool", "layout", "model", "post-mutation", "steady warm"],
    );
    let mut rows: Vec<Value> = Vec::new();
    let push = |report: &mut Report,
                rows: &mut Vec<Value>,
                n: usize,
                layout: String,
                shards: Option<usize>,
                model: &str,
                post: f64,
                warm: f64| {
        report.row(&[&n, &layout, &model, &fmt_secs(post), &fmt_secs(warm)]);
        rows.push(Value::object([
            ("pool_size", n.to_value()),
            ("shards", shards.map_or(Value::Null, |k| k.to_value())),
            ("model", model.to_value()),
            ("post_mutation_secs", post.to_value()),
            ("steady_warm_secs", warm.to_value()),
        ]));
    };

    // PayM across the full size range: the workload sharding exists for.
    for &n in &pool_sizes {
        let jurors = pool(n);
        for &k in &shard_counts {
            let mut service = sharded_service(k);
            let id = service.create_pool(jurors.clone());
            let (post, warm) =
                measure(&mut service, id, n, CrowdModel::PayAsYouGo { budget }, repeats);
            push(&mut report, &mut rows, n, format!("sharded/{k}"), Some(k), "paym", post, warm);
        }
        if flat_sizes.contains(&n) {
            let mut service = JuryService::new();
            let id = service.create_pool(jurors.clone());
            let (post, warm) =
                measure(&mut service, id, n, CrowdModel::PayAsYouGo { budget }, repeats.min(2));
            push(&mut report, &mut rows, n, "flat".into(), None, "paym", post, warm);
        }
    }

    // AltrM where the exact O(N²) scan is still feasible: sharding saves
    // the sort + profile, the scan itself is the (identical) solver.
    for &n in &altr_sizes {
        let jurors = pool(n);
        for &k in &shard_counts {
            let mut service = sharded_service(k);
            let id = service.create_pool(jurors.clone());
            let (post, warm) = measure(&mut service, id, n, CrowdModel::Altruism, repeats.min(2));
            push(&mut report, &mut rows, n, format!("sharded/{k}"), Some(k), "altr", post, warm);
        }
        if flat_sizes.contains(&n) {
            let mut service = JuryService::new();
            let id = service.create_pool(jurors.clone());
            let (post, warm) = measure(&mut service, id, n, CrowdModel::Altruism, repeats.min(2));
            push(&mut report, &mut rows, n, "flat".into(), None, "altr", post, warm);
        }
    }

    report.emit();

    if smoke {
        println!("[smoke] sharded_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput) with the
    // sharded section rather than clobbering the baseline document.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "warm pool, one juror update, next solve (repair + solve measured together)".to_value(),
        ),
        ("budget", budget.to_value()),
        ("pool_sizes", Value::Array(pool_sizes.iter().map(|n| n.to_value()).collect())),
        ("shard_counts", Value::Array(shard_counts.iter().map(|k| k.to_value()).collect())),
        (
            "flat_baseline_note",
            "flat pools measured at 10^4 only: one post-mutation rebuild is O(N^2)".to_value(),
        ),
        ("results", Value::Array(rows)),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "sharded");
        fields.push(("sharded".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (sharded section)");
}
