//! `frontend_throughput` — open-loop tail-latency harness for the
//! coalescing HTTP front-end.
//!
//! The workload models the regime the front-end exists for: a pool
//! under continuous juror churn (a background thread perturbs and
//! restores one juror), so the first solve after each flip pays the
//! in-place repair + bound-pruned re-solve while every further request
//! in the same window replays the warm artifact for an `Arc` bump.
//! Arrivals are Poisson (seeded xoshiro, exponential gaps) and
//! **open-loop**: each request's latency is measured from its
//! *scheduled* arrival time, so when the server falls behind the
//! backlog shows up as tail latency instead of silently throttling the
//! generator.
//!
//! Two modes run the identical machinery at several offered loads:
//!
//! * **coalesced** — `max_batch = 64`: concurrent arrivals for the same
//!   `(tenant, pool)` merge into one `solve_batch_shared` window, so a
//!   window pays one re-solve for all its tasks;
//! * **naive** — `max_batch = 1`: every request is its own window and
//!   pays the full post-churn re-solve — the per-request cost the
//!   front-end amortises away.
//!
//! Two side measurements close the loop on the latency contract: the
//! idle **batch-1** path (sequential `submit` on an idle front-end vs
//! the bare `solve_batch_shared` library call — the inline fast path
//! must keep them within 2x) and an over-the-wire **HTTP spot check**
//! (one keep-alive connection round-tripping real requests).
//!
//! Appends a `"frontend"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a seconds-long version and writes nothing — CI uses it to keep
//! this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin frontend_throughput [-- --smoke]
//! ```

use jury_bench::report::Report;
use jury_bench::timing::time_it;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_frontend::client::Client;
use jury_frontend::{Frontend, FrontendConfig, HttpServer, SubmitError};
use jury_service::{DecisionTask, JuryService, PoolId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{json, Serialize, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The front-end's latency knob; the p99 acceptance bound.
const MAX_DELAY: Duration = Duration::from_millis(25);
/// Round-robin tenants — coalescing only merges within one tenant.
const TENANTS: usize = 4;
/// PayM budgets cycled through the 1-in-4 pay-as-you-go tasks.
const BUDGETS: [f64; 3] = [1.5, 2.5, 4.0];

/// Deterministic pool: rates spread over (0.02, 0.95), convex prices —
/// the same synthetic workload as the other service emitters.
fn pool(n: usize) -> Vec<Juror> {
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0; // golden-ratio spread
            (0.02 + 0.93 * u, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

/// Perturbs and restores juror 0 every `every` until `stop`, returning
/// the flip count. Each flip dirties the pool's warm artifacts, so the
/// next solve pays the repair + re-solve the mode comparison is about.
fn start_churn(
    frontend: Arc<Frontend>,
    pool: PoolId,
    original: Juror,
    every: Duration,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    let perturbed = Juror::new(
        original.id,
        ErrorRate::new((original.epsilon() + 0.011).min(0.98)).unwrap(),
        original.cost,
    );
    std::thread::spawn(move || {
        let mut flips = 0u64;
        while !stop.load(Ordering::Relaxed) {
            for juror in [perturbed, original] {
                frontend.with_service(|s| s.update_juror(pool, 0, juror).unwrap());
                flips += 1;
                std::thread::sleep(every);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
        flips
    })
}

struct LoadPoint {
    offered: f64,
    goodput: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    completed: usize,
    rejected: u64,
    mean_occupancy: f64,
    inline_solves: u64,
    mean_queue_wait_us: f64,
    mean_solve_us: f64,
}

/// Latency percentile (milliseconds) over sorted nanosecond samples.
fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1e6
}

/// Drives `requests` Poisson arrivals at `offered` req/s through
/// `workers` submitter threads and returns the latency profile.
fn run_load(
    frontend: &Frontend,
    pool: PoolId,
    offered: f64,
    requests: usize,
    workers: usize,
    seed: u64,
) -> LoadPoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = 0.0f64;
    let arrivals: Vec<Duration> = (0..requests)
        .map(|_| {
            let u: f64 = rng.gen();
            clock += -(1.0 - u).ln() / offered;
            Duration::from_secs_f64(clock)
        })
        .collect();
    let tasks: Vec<DecisionTask> = (0..requests)
        .map(|i| {
            if i % 4 == 3 {
                DecisionTask::pay_as_you_go(pool, BUDGETS[i % BUDGETS.len()])
            } else {
                DecisionTask::altruism(pool)
            }
        })
        .collect();
    let tenants: Vec<String> = (0..TENANTS).map(|t| format!("tenant-{t}")).collect();

    let before = frontend.stats();
    let next = AtomicUsize::new(0);
    let rejected = AtomicU64::new(0);
    let base = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, rejected) = (&next, &rejected);
                let (arrivals, tasks, tenants) = (&arrivals, &tasks, &tenants);
                scope.spawn(move || {
                    let mut mine: Vec<u64> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= requests {
                            return mine;
                        }
                        let scheduled = base + arrivals[i];
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        match frontend.submit(&tenants[i % TENANTS], tasks[i]) {
                            Ok(_) => mine.push(scheduled.elapsed().as_nanos() as u64),
                            Err(SubmitError::Overloaded { .. }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected submit failure: {e}"),
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("submitter thread"));
        }
    });
    let elapsed = base.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let after = frontend.stats();
    let windows = after.coalesced_windows - before.coalesced_windows;
    let coalesced = after.coalesced_tasks - before.coalesced_tasks;
    let queue_wait = after.queue_wait_nanos - before.queue_wait_nanos;
    let solve = after.solve_nanos - before.solve_nanos;
    LoadPoint {
        offered,
        goodput: latencies.len() as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        p999_ms: percentile(&latencies, 0.999),
        completed: latencies.len(),
        rejected: rejected.load(Ordering::Relaxed),
        mean_occupancy: coalesced as f64 / windows.max(1) as f64,
        inline_solves: after.inline_solves - before.inline_solves,
        mean_queue_wait_us: queue_wait as f64 / 1e3 / coalesced.max(1) as f64,
        mean_solve_us: solve as f64 / 1e3 / coalesced.max(1) as f64,
    }
}

/// Idle batch-1 contract: mean sequential `submit` latency on an idle
/// front-end vs the bare `solve_batch_shared(&[task])` library call,
/// both warm. Returns `(submit_secs, direct_secs)` per call.
fn batch1_comparison(pool_size: usize, iters: usize) -> (f64, f64) {
    let jurors = pool(pool_size);

    let mut direct = JuryService::new();
    let dp = direct.create_pool(jurors.clone());
    let dtask = DecisionTask::altruism(dp);
    direct.solve(&dtask).expect("warm solve");
    let (_, direct_secs) = time_it(|| {
        for _ in 0..iters {
            assert!(direct.solve_batch_shared(std::slice::from_ref(&dtask))[0].is_ok());
        }
    });

    let mut service = JuryService::new();
    let fp = service.create_pool(jurors);
    let ftask = DecisionTask::altruism(fp);
    let frontend = Frontend::start(service, FrontendConfig::default());
    frontend.submit("solo", ftask).expect("warm submit");
    let (_, submit_secs) = time_it(|| {
        for _ in 0..iters {
            assert!(frontend.submit("solo", ftask).is_ok());
        }
    });
    let stats = frontend.stats();
    assert_eq!(
        stats.inline_solves, stats.requests,
        "every idle batch-1 submit must take the inline fast path"
    );
    frontend.shutdown();
    (submit_secs / iters as f64, direct_secs / iters as f64)
}

/// Over-the-wire spot check: one keep-alive connection round-tripping
/// real HTTP requests. Returns mean seconds per request.
fn http_spot_check(pool_size: usize, iters: usize) -> f64 {
    let jurors = pool(pool_size);
    let mut service = JuryService::new();
    let p = service.create_pool(jurors);
    let frontend = Frontend::start(service, FrontendConfig::default());
    let server = HttpServer::start(frontend, "127.0.0.1:0", 2).expect("bind spot-check server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let task = DecisionTask::altruism(p);
    client.solve("spot", &task).expect("transport").expect("warm solve");
    let (_, secs) = time_it(|| {
        for _ in 0..iters {
            assert!(client.solve("spot", &task).expect("transport").is_ok());
        }
    });
    let stats = client.stats().expect("transport").expect("stats");
    assert!(stats.service.tasks_solved > iters);
    drop(client);
    server.shutdown();
    secs / iters as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (pool_size, loads, workers, churn_every, request_cap, side_iters): (
        usize,
        Vec<f64>,
        usize,
        Duration,
        usize,
        usize,
    ) = if smoke {
        (300, vec![2_000.0], 16, Duration::from_micros(500), 300, 200)
    } else {
        (1_000, vec![400.0, 2_000.0, 16_000.0], 64, Duration::from_micros(100), 4_000, 5_000)
    };

    let mut report = Report::new(
        "frontend_throughput",
        "open-loop Poisson load under juror churn: coalesced (max_batch=64) vs naive \
         (max_batch=1) through the same front-end",
        &["mode", "offered/s", "goodput/s", "p50", "p99", "p99.9", "occupancy", "inline", "rej"],
    );
    let mut rows: Vec<Value> = Vec::new();
    let mut by_mode: Vec<(&str, Vec<LoadPoint>)> = Vec::new();

    for (mode, max_batch) in [("coalesced", 64usize), ("naive", 1)] {
        let jurors = pool(pool_size);
        let mut service = JuryService::new();
        let p = service.create_pool(jurors.clone());
        service.solve(&DecisionTask::altruism(p)).expect("warm-up solve");
        let frontend = Frontend::start(
            service,
            FrontendConfig {
                max_batch,
                max_delay: MAX_DELAY,
                queue_capacity: 4096,
                ..FrontendConfig::default()
            },
        );
        let stop = Arc::new(AtomicBool::new(false));
        let churn =
            start_churn(Arc::clone(&frontend), p, jurors[0], churn_every, Arc::clone(&stop));

        let mut points = Vec::new();
        for (li, &offered) in loads.iter().enumerate() {
            let requests = ((offered / 2.0) as usize).clamp(200, request_cap);
            let point = run_load(&frontend, p, offered, requests, workers, 7 + li as u64);
            report.row(&[
                &mode,
                &format!("{offered:.0}"),
                &format!("{:.0}", point.goodput),
                &format!("{:.2}ms", point.p50_ms),
                &format!("{:.2}ms", point.p99_ms),
                &format!("{:.2}ms", point.p999_ms),
                &format!("{:.1}", point.mean_occupancy),
                &point.inline_solves,
                &point.rejected,
            ]);
            rows.push(Value::object([
                ("mode", mode.to_value()),
                ("offered_per_sec", point.offered.to_value()),
                ("goodput_per_sec", point.goodput.to_value()),
                ("p50_ms", point.p50_ms.to_value()),
                ("p99_ms", point.p99_ms.to_value()),
                ("p999_ms", point.p999_ms.to_value()),
                ("completed", point.completed.to_value()),
                ("rejected", point.rejected.to_value()),
                ("mean_window_occupancy", point.mean_occupancy.to_value()),
                ("inline_solves", point.inline_solves.to_value()),
                ("mean_queue_wait_us", point.mean_queue_wait_us.to_value()),
                ("mean_solve_us", point.mean_solve_us.to_value()),
            ]));
            points.push(point);
        }
        stop.store(true, Ordering::Relaxed);
        let flips = churn.join().expect("churn thread");
        assert!(flips > 0, "churn must actually run");
        frontend.shutdown().expect("front-end returns the service");
        by_mode.push((mode, points));
    }
    report.emit();

    let (submit_secs, direct_secs) = batch1_comparison(pool_size, side_iters);
    let batch1_ratio = submit_secs / direct_secs;
    println!(
        "[batch-1] idle submit {:.2}us vs direct solve_batch_shared {:.2}us ({batch1_ratio:.2}x)",
        submit_secs * 1e6,
        direct_secs * 1e6,
    );
    let http_secs = http_spot_check(pool_size, side_iters.min(500));
    println!("[http] keep-alive round-trip {:.1}us/request", http_secs * 1e6);

    let coalesced = &by_mode[0].1;
    let naive = &by_mode[1].1;
    let saturating_speedup =
        coalesced.last().unwrap().goodput / naive.last().unwrap().goodput.max(1e-9);
    println!(
        "[saturation] coalesced {:.0}/s vs naive {:.0}/s at {:.0} offered ({saturating_speedup:.1}x)",
        coalesced.last().unwrap().goodput,
        naive.last().unwrap().goodput,
        loads.last().unwrap(),
    );

    for (mode, points) in &by_mode {
        for point in points {
            assert!(point.completed > 0, "{mode}: no request completed");
        }
    }
    if !smoke {
        assert!(
            saturating_speedup >= 5.0,
            "coalescing must buy >=5x goodput at saturating load, got {saturating_speedup:.1}x"
        );
        assert!(
            coalesced[0].p99_ms < MAX_DELAY.as_secs_f64() * 1e3,
            "coalesced p99 at the lightest load must stay under max_delay, got {:.2}ms",
            coalesced[0].p99_ms
        );
        assert!(
            batch1_ratio <= 2.0,
            "idle batch-1 submit must stay within 2x of the library call, got {batch1_ratio:.2}x"
        );
        assert!(
            coalesced.last().unwrap().mean_occupancy > 2.0,
            "saturating load must actually coalesce"
        );
    }

    if smoke {
        println!("[smoke] frontend_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput, extended
    // by the other emitters) with the front-end section.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "open-loop Poisson arrivals (3/4 AltrM + 1/4 PayM cycling budgets) against one pool \
             under continuous juror churn; latency measured from scheduled arrival; coalesced \
             (max_batch=64) vs naive (max_batch=1) through the identical front-end machinery"
                .to_value(),
        ),
        ("pool_size", pool_size.to_value()),
        ("tenants", TENANTS.to_value()),
        ("workers", workers.to_value()),
        ("max_batch", 64usize.to_value()),
        ("max_delay_ms", (MAX_DELAY.as_millis() as u64).to_value()),
        ("churn_interval_us", (churn_every.as_micros() as u64).to_value()),
        ("offered_loads_per_sec", Value::Array(loads.iter().map(|l| l.to_value()).collect())),
        ("results", Value::Array(rows)),
        (
            "batch1",
            Value::object([
                ("idle_submit_us", (submit_secs * 1e6).to_value()),
                ("direct_solve_us", (direct_secs * 1e6).to_value()),
                ("ratio", batch1_ratio.to_value()),
            ]),
        ),
        ("http_round_trip_us", (http_secs * 1e6).to_value()),
        ("saturating_goodput_speedup", saturating_speedup.to_value()),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "frontend");
        fields.push(("frontend".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (frontend section)");
}
