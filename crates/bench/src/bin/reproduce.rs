//! Regenerates every table and figure of the paper's evaluation in
//! sequence, writing CSV artefacts under `target/experiments/`.
//!
//! Pass `--quick` (or set `JURY_BENCH_QUICK=1`) for a downscaled smoke
//! run that finishes in seconds.

use jury_bench::experiments as exp;

/// An experiment stage: display name plus its `run(quick)` entry point.
type Stage = (&'static str, fn(bool) -> Vec<jury_bench::Report>);

fn main() {
    let quick = exp::quick_mode();
    println!(
        "Reproducing all evaluation artefacts ({} mode)\n",
        if quick { "quick" } else { "full paper-scale" }
    );
    let stages: [Stage; 10] = [
        ("Table 2", exp::table2::run),
        ("Figure 3(a)", exp::fig3a::run),
        ("Figure 3(b)", exp::fig3b::run),
        ("Figure 3(c)", exp::fig3c::run),
        ("Figure 3(d)", exp::fig3d::run),
        ("Figure 3(e)", exp::fig3e::run),
        ("Figure 3(f)", exp::fig3f::run),
        ("Figure 3(g)", exp::fig3g::run),
        ("Figure 3(h)", exp::fig3h::run),
        ("Figure 3(i)", exp::fig3i::run),
    ];
    for (name, run) in stages {
        let (reports, secs) = jury_bench::time_it(|| run(quick));
        println!("--- {name} ({secs:.1}s) ---");
        for report in reports {
            report.emit();
        }
    }
}
