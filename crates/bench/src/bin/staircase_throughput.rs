//! `staircase_throughput` — the PayM budget-staircase serving numbers.
//!
//! Two measurements per pool size and layout, both on the serving
//! layer's hottest traffic class (warm PayM tasks with a per-task
//! budget):
//!
//! * **steady warm** — the same budget again: a staircase binary-search
//!   hit (one selection clone, no greedy rescan);
//! * **post-mutation** — one juror update (a re-estimated error rate)
//!   followed by the next task: the update repairs every sorted order
//!   and pmf ladder *in place* (no shard re-sort, no K-way re-merge, no
//!   re-convolution), the cleared staircase re-records its step with a
//!   single greedy scan.
//!
//! Flat pools are measured through the same path — the PayM lane never
//! builds the `O(N²)` AltrM artefacts, so even a 10⁶-juror flat pool
//! answers post-mutation PayM in milliseconds where it previously paid a
//! full cache rebuild.
//!
//! Appends a `"staircase"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a seconds-long version on tiny pools and writes nothing — CI
//! uses it to keep this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin staircase_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_secs, Report};
use jury_bench::timing::time_best_of;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_service::{DecisionTask, JuryService, PoolId, ServiceConfig, ShardConfig};
use serde::{json, Serialize, Value};

/// Deterministic pool: rates spread over (0.02, 0.95), convex prices —
/// the same synthetic workload as the other service emitters.
fn pool(n: usize) -> Vec<Juror> {
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0; // golden-ratio spread
            (0.02 + 0.93 * u, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

/// One measurement pair: steady warm (staircase hit) vs one juror update
/// plus the next solve. Priming goes through `solve` (orders-only
/// warming), never `warm_pool`, so flat pools skip the `O(N²)` AltrM
/// artefacts.
fn measure(
    service: &mut JuryService,
    id: PoolId,
    n: usize,
    budget: f64,
    repeats: usize,
) -> (f64, f64) {
    let task = DecisionTask::pay_as_you_go(id, budget);
    assert!(service.solve(&task).is_ok(), "priming solve must succeed");
    let (_, warm_hit) = time_best_of(repeats, || {
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    let hits_before = service.stats().staircase_hits;
    assert!(service.solve(&task).is_ok());
    assert!(service.stats().staircase_hits > hits_before, "steady path must hit the staircase");
    let mut round = 0usize;
    let (_, post_mutation) = time_best_of(repeats, || {
        round += 1;
        let idx = (round * 7919) % n;
        let e = 0.05 + ((round * 13) % 90) as f64 / 100.0;
        let juror = Juror::new(idx as u32, ErrorRate::new(e).unwrap(), 0.1);
        service.update_juror(id, idx, juror).expect("index in range");
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    (warm_hit, post_mutation)
}

fn sharded_service(k: usize) -> JuryService {
    JuryService::with_config(ServiceConfig {
        shard: ShardConfig { threshold: 1, shards: k, ..Default::default() },
        ..Default::default()
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = 3.0f64;
    let (pool_sizes, shard_counts, repeats): (Vec<usize>, Vec<usize>, usize) =
        if smoke { (vec![400], vec![4], 1) } else { (vec![1_000, 10_000, 1_000_000], vec![16], 5) };

    let mut report = Report::new(
        "staircase_throughput",
        "warm PayM via the budget staircase: steady hit vs one juror update + next solve",
        &["pool", "layout", "steady warm (hit)", "post-mutation"],
    );
    let mut rows: Vec<Value> = Vec::new();
    let push = |report: &mut Report,
                rows: &mut Vec<Value>,
                n: usize,
                layout: String,
                shards: Option<usize>,
                warm_hit: f64,
                post: f64| {
        report.row(&[&n, &layout, &fmt_secs(warm_hit), &fmt_secs(post)]);
        rows.push(Value::object([
            ("pool_size", n.to_value()),
            ("shards", shards.map_or(Value::Null, |k| k.to_value())),
            ("model", "paym".to_value()),
            ("steady_warm_hit_secs", warm_hit.to_value()),
            ("post_mutation_secs", post.to_value()),
        ]));
    };

    for &n in &pool_sizes {
        let jurors = pool(n);
        for &k in &shard_counts {
            let mut service = sharded_service(k);
            let id = service.create_pool(jurors.clone());
            let (warm_hit, post) = measure(&mut service, id, n, budget, repeats);
            push(&mut report, &mut rows, n, format!("sharded/{k}"), Some(k), warm_hit, post);
        }
        let mut service = JuryService::new();
        let id = service.create_pool(jurors.clone());
        let (warm_hit, post) = measure(&mut service, id, n, budget, repeats);
        push(&mut report, &mut rows, n, "flat".into(), None, warm_hit, post);
    }

    report.emit();

    if smoke {
        println!("[smoke] staircase_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput, extended
    // by sharded_throughput) with the staircase section.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "warm PayM: staircase hit (steady) and one juror update + next solve (post-mutation, \
             in-place order/ladder repair + one staircase-recording scan)"
                .to_value(),
        ),
        ("budget", budget.to_value()),
        ("pool_sizes", Value::Array(pool_sizes.iter().map(|n| n.to_value()).collect())),
        ("shard_counts", Value::Array(shard_counts.iter().map(|k| k.to_value()).collect())),
        ("results", Value::Array(rows)),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "staircase");
        fields.push(("staircase".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (staircase section)");
}
