//! Regenerates the paper's fig3f. Pass --quick for a fast smoke run.

fn main() {
    let quick = jury_bench::experiments::quick_mode();
    for report in jury_bench::experiments::fig3f::run(quick) {
        report.emit();
    }
}
