//! `bench_schema_check` — CI guard for `BENCH_service.json`'s shape.
//!
//! Every service emitter owns one section of `BENCH_service.json`
//! (`service_throughput` rewrites the whole file; the others re-insert
//! their section). A refactor that silently drops a previously-present
//! section would erase a perf trajectory without anyone noticing, so CI
//! runs this check after the smoke emitters: it fails (non-zero exit)
//! unless every required section is present and non-trivial.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin bench_schema_check
//! ```

use serde::{json, Value};
use std::process::ExitCode;

/// Every section an emitter has ever published, with the emitter that
/// owns it. Grows monotonically: removing an entry here is a reviewed
/// decision, not an accident.
const REQUIRED_SECTIONS: [(&str, &str); 9] = [
    ("results", "service_throughput"),
    ("sharded", "sharded_throughput"),
    ("staircase", "staircase_throughput"),
    ("altrm", "altrm_throughput"),
    ("multi_tenant", "multi_tenant_throughput"),
    ("frontend", "frontend_throughput"),
    ("rebalance", "rebalance_throughput"),
    ("restart", "restart_throughput"),
    ("failover", "failover_throughput"),
];

fn main() -> ExitCode {
    let path = "BENCH_service.json";
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[schema] cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(Value::Object(fields)) = json::parse(&text).ok() else {
        eprintln!("[schema] {path} is not a JSON object");
        return ExitCode::FAILURE;
    };
    let mut missing = Vec::new();
    for (section, emitter) in REQUIRED_SECTIONS {
        let present = fields.iter().any(|(key, value)| {
            key == section
                && match value {
                    // Sections are objects with a non-empty "results"
                    // array, except the top-level results array itself.
                    Value::Array(rows) => !rows.is_empty(),
                    Value::Object(inner) => inner.iter().any(|(k, v)| {
                        k == "results" && matches!(v, Value::Array(rows) if !rows.is_empty())
                    }),
                    _ => false,
                }
        });
        if !present {
            missing.push((section, emitter));
        }
    }
    // Field-level guard: every "restart" row must carry the
    // incremental-checkpoint figures, not just the restore ones — a
    // regression to the full-rewrite emitter would otherwise keep the
    // section present while silently dropping the trajectory.
    let restart_rows_ok = fields.iter().any(|(key, value)| {
        key == "restart"
            && match value {
                Value::Object(inner) => inner.iter().any(|(k, v)| {
                    k == "results"
                        && matches!(v, Value::Array(rows) if !rows.is_empty()
                            && rows.iter().all(row_has_checkpoint_fields))
                }),
                _ => false,
            }
    });

    if missing.is_empty() && restart_rows_ok {
        println!("[schema] {path}: all {} sections present", REQUIRED_SECTIONS.len());
        return ExitCode::SUCCESS;
    }
    for (section, emitter) in &missing {
        eprintln!("[schema] {path}: section \"{section}\" missing or empty (re-run {emitter})");
    }
    if !restart_rows_ok {
        eprintln!(
            "[schema] {path}: \"restart\" rows lack the incremental-checkpoint fields \
             {CHECKPOINT_FIELDS:?} (re-run restart_throughput)"
        );
    }
    ExitCode::FAILURE
}

/// The incremental-checkpoint figures every restart row must report.
const CHECKPOINT_FIELDS: [&str; 4] = [
    "checkpoint_written",
    "checkpoint_full_secs",
    "checkpoint_incremental_secs",
    "checkpoint_speedup",
];

fn row_has_checkpoint_fields(row: &Value) -> bool {
    match row {
        Value::Object(fields) => {
            CHECKPOINT_FIELDS.iter().all(|want| fields.iter().any(|(key, _)| key == want))
        }
        _ => false,
    }
}
