//! `failover_throughput` — the warm-follower economics: time-to-adopt
//! a freshly committed generation vs a cold restart, time-to-promote
//! after a writer death, and follower lag under steady ~1% churn.
//!
//! The fleet model mirrors `restart_throughput`: 100 content-distinct
//! pools carrying the total juror count between them. A writer commits
//! generation 1; a warm follower restores it, then the writer churns
//! ~1% of the fleet and commits again. The follower's
//! [`JuryService::adopt_snapshot`] hot-swaps the new generation in
//! place — parsing the manifest and verified-restoring only the
//! churned entries — and must come in at least 10× cheaper than a
//! cold restart (fresh process re-registering and re-restoring the
//! whole fleet) at the 10⁶-juror scale. The adopted answer on the
//! churned pool is asserted bit-identical to the writer's before
//! anything is reported.
//!
//! Two more figures complete the failover story: *time-to-promote* —
//! a follower's first successful probe over a stale writer lease
//! (break, fence, no-op commit) — and *follower lag* — wall time from
//! a writer commit returning to the follower's watcher noticing and
//! adopting it, sampled over several churn rounds.
//!
//! Appends a `"failover"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a sub-second version on a tiny fleet and writes nothing — CI
//! uses it to keep this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin failover_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_secs, Report};
use jury_bench::timing::time_it;
use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_service::{DecisionTask, JuryService, ServiceConfig, SnapshotWatcher};
use serde::{json, Serialize, Value};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Content-distinct expert-plus-mob pool (the `restart_throughput`
/// shape): `salt` rotates the golden-ratio phase so every fleet member
/// interns its own store entry.
fn distinct_pool(n: usize, salt: usize) -> Vec<Juror> {
    let experts = n.div_ceil(50);
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949 + salt as f64 * 0.3819660112501051) % 1.0;
            let eps = if i < experts { 0.02 + 0.43 * u } else { 0.55 + 0.40 * u };
            (eps, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

fn service_over(dir: &Path) -> JuryService {
    JuryService::with_config(ServiceConfig {
        snapshot_dir: Some(dir.to_path_buf()),
        ..Default::default()
    })
}

/// Registers and warms the whole fleet (salts `0..fleet`), restoring
/// from the directory where content matches.
fn register_fleet(
    service: &mut JuryService,
    fleet: usize,
    per: usize,
) -> Vec<jury_service::PoolId> {
    (0..fleet)
        .map(|salt| {
            let id = service.create_pool(distinct_pool(per, salt));
            service.warm_pool(id).expect("fleet pool warms");
            id
        })
        .collect()
}

/// Forges the writer lease stale so a follower probe finds a dead
/// writer: same wire format the lease module writes, heartbeat two
/// minutes in the past (far beyond the default 30s ttl).
fn forge_stale_lease(dir: &Path) {
    let heartbeat =
        SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_millis() as u64 - 120_000;
    std::fs::write(
        dir.join("writer.lease"),
        format!(
            r#"{{"format":"jury-lease","holder":"dead-writer","epoch":"{:016x}","heartbeat_ms":"{heartbeat:016x}"}}"#,
            7u64
        ),
    )
    .expect("forge stale lease");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, fleet, lag_rounds): (Vec<usize>, usize, usize) =
        if smoke { (vec![400], 10, 2) } else { (vec![10_000, 1_000_000], 100, 5) };

    let base: PathBuf = std::env::temp_dir().join(format!(
        "jury-failover-bench-{}{}",
        std::process::id(),
        if smoke { "-smoke" } else { "" }
    ));

    let mut report = Report::new(
        "failover_throughput",
        "warm-follower economics: generation adoption vs cold restart, promotion, lag",
        &["pool", "adopt", "cold-restart", "speedup", "promote", "lag-mean", "lag-max"],
    );
    let mut rows: Vec<Value> = Vec::new();

    for &n in &sizes {
        let per = (n / fleet).max(4);
        let churned = fleet.div_ceil(100);
        let dir = base.join(format!("gen-{n}"));
        let _ = std::fs::remove_dir_all(&dir);

        // Writer: warm fleet, commit generation 1.
        let mut writer = service_over(&dir);
        let writer_ids = register_fleet(&mut writer, fleet, per);
        let gen1 = writer.snapshot(&dir).expect("writer commits generation 1").generation;

        // Follower: restores generation 1 warm.
        let mut follower = service_over(&dir);
        register_fleet(&mut follower, fleet, per);
        assert!(
            follower.stats().snapshot_restores >= fleet,
            "the follower must restore the fleet, not rebuild it"
        );

        // Writer churns ~1% and commits generation 2. The follower
        // registers the replacement content cold, so adoption has real
        // restore work to do — exactly the churned slice.
        writer.remove_pool(writer_ids[0]).expect("pool retires");
        let replacement = writer.create_pool(distinct_pool(per, fleet));
        writer.warm_pool(replacement).expect("replacement warms");
        let commit = writer.snapshot(&dir).expect("writer commits generation 2");
        assert_eq!(commit.generation, gen1 + 1);
        assert_eq!(commit.written, churned, "only the churned entries are rewritten");
        let follower_replacement = follower.create_pool(distinct_pool(per, fleet));

        let (adopted, adopt_secs) = time_it(|| follower.adopt_snapshot());
        let adopted = adopted.expect("the follower adopts the newer generation");
        assert_eq!(adopted.generation, commit.generation);
        assert_eq!(adopted.restored, churned, "adoption restores exactly the churned slice");
        assert_eq!(adopted.rejected, 0, "nothing fails verification");

        // The adopted answer is the writer's answer, bit for bit.
        let task = DecisionTask::altruism(replacement);
        let from_writer = writer.solve(&task).expect("writer solves the churned pool");
        let from_follower = follower
            .solve(&DecisionTask::altruism(follower_replacement))
            .expect("follower solves the adopted pool");
        assert_eq!(from_follower.members, from_writer.members, "adoption must not change answers");
        assert_eq!(from_follower.jer.to_bits(), from_writer.jer.to_bits());

        // The alternative to adoption: a cold restart over the same
        // directory — fresh process, full re-registration, full
        // verified restore of every entry.
        let (cold_restores, cold_secs) = time_it(|| {
            let mut restarted = service_over(&dir);
            // The current fleet: salt 0 retired, the replacement
            // (salt == fleet) took its place.
            for salt in 1..=fleet {
                let id = restarted.create_pool(distinct_pool(per, salt));
                restarted.warm_pool(id).expect("restart pool warms");
            }
            restarted.stats().snapshot_restores
        });
        assert!(cold_restores >= fleet, "the cold restart restores the whole fleet");
        let speedup = cold_secs / adopt_secs;
        if n >= 1_000_000 {
            assert!(
                speedup >= 10.0,
                "generation adoption must be >=10x cheaper than a cold restart at 10^6 \
                 jurors (adopt {adopt_secs:.4}s, cold {cold_secs:.4}s)"
            );
        }

        // Follower lag under steady ~1% churn: wall time from a writer
        // commit returning to the watcher-driven follower having
        // adopted it.
        let mut watcher = SnapshotWatcher::new(&dir, Duration::from_millis(1));
        watcher.observe(commit.generation);
        let mut lags_ms: Vec<f64> = Vec::new();
        for round in 0..lag_rounds {
            let salt = fleet + 1 + round;
            let fresh = writer.create_pool(distinct_pool(per, salt));
            writer.warm_pool(fresh).expect("churn pool warms");
            let committed = writer.snapshot(&dir).expect("churn round commits");
            let started = Instant::now();
            loop {
                if watcher.poll().is_some() {
                    let report = follower.adopt_snapshot().expect("follower adopts churn round");
                    assert_eq!(report.generation, committed.generation);
                    watcher.observe(report.generation);
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            lags_ms.push(started.elapsed().as_secs_f64() * 1e3);
        }
        let lag_mean_ms = lags_ms.iter().sum::<f64>() / lags_ms.len() as f64;
        let lag_max_ms = lags_ms.iter().cloned().fold(0.0, f64::max);

        // Time-to-promote: the writer dies (its lease forged stale),
        // and the follower's first probe breaks the lease, fences the
        // corpse, and commits — from then on it is the writer.
        forge_stale_lease(&dir);
        let (promoted, promote_secs) = time_it(|| follower.snapshot(&dir));
        promoted.expect("the follower promotes over the stale lease");

        report.row(&[
            &n,
            &fmt_secs(adopt_secs),
            &fmt_secs(cold_secs),
            &format!("{speedup:.1}x"),
            &fmt_secs(promote_secs),
            &format!("{lag_mean_ms:.2}ms"),
            &format!("{lag_max_ms:.2}ms"),
        ]);
        rows.push(Value::object([
            ("pool_size", n.to_value()),
            ("fleet", fleet.to_value()),
            ("churned", churned.to_value()),
            ("adopt_secs", adopt_secs.to_value()),
            ("adopt_restored", adopted.restored.to_value()),
            ("cold_restart_secs", cold_secs.to_value()),
            ("adopt_speedup", speedup.to_value()),
            ("promote_secs", promote_secs.to_value()),
            ("churn_rounds", lag_rounds.to_value()),
            ("lag_mean_ms", lag_mean_ms.to_value()),
            ("lag_max_ms", lag_max_ms.to_value()),
        ]));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);

    report.emit();

    if smoke {
        println!("[smoke] failover_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput) with
    // the failover section rather than clobbering the baseline document.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "warm-follower economics over a 100-pool fleet with ~1% churn: generation \
             adoption (manifest parse + verified restore of the churned slice) vs cold \
             restart (full re-registration and restore), first-probe promotion over a \
             stale writer lease, and watcher-driven adoption lag per churn round"
                .to_value(),
        ),
        ("pool_sizes", Value::Array(sizes.iter().map(|n| n.to_value()).collect())),
        ("results", Value::Array(rows)),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "failover");
        fields.push(("failover".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (failover section)");
}
