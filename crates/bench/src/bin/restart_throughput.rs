//! `restart_throughput` — restart-to-first-answer: cold rebuild vs
//! verified snapshot restore.
//!
//! A process restart loses the warm-artifact store. The cold path pays
//! the full warm build on the first task — `O(N log N)` sorts plus the
//! AltrM solve — per pool; the snapshot path re-attaches the pool to a
//! persisted [`ArtifactSet`] by content, paying only the verified read
//! (whole-file and per-section checksums, permutation and ε-binding
//! checks, pmf re-hashes, and the `match_pool` content comparison).
//! The first task is altruism because that is the expensive rebuild the
//! snapshot actually skips: the persisted set carries the AltrM answer,
//! so the restored side answers from verified state while the cold side
//! re-derives it. Both sides are measured end to end: construct the
//! service, register the pool, solve the first task. Both answers are
//! asserted bit-identical before anything is reported.
//!
//! A second measurement prices the *incremental checkpoint*: a fleet of
//! content-distinct pools is warmed and fully checkpointed once, then
//! ~1% of the fleet churns (a pool retires, a fresh-content replacement
//! warms up) and the directory is re-checkpointed. The second commit
//! must write exactly the churned entries (counter-asserted) and, at
//! the 10⁶-juror scale, come in at least 10× cheaper than the full
//! rewrite.
//!
//! Appends a `"restart"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a sub-second version on a tiny pool and writes nothing — CI
//! uses it to keep this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin restart_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_secs, Report};
use jury_bench::timing::{time_best_of, time_it};
use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_service::{DecisionTask, JuryService, ServiceConfig};
use serde::{json, Serialize, Value};
use std::path::{Path, PathBuf};

/// Deterministic expert-plus-mob pool (the `altrm_throughput` shape):
/// 2% experts with ε in [0.02, 0.45), 98% mob in [0.55, 0.95). The
/// optimal jury is roughly the expert block, so the cold AltrM scan is
/// deep enough to be the realistic rebuild cost (seconds at 10⁶)
/// without degenerating into the unprunable near-full `O(N²)` sweep a
/// uniform ε spread causes (the sorted prefix mean must cross ½ for
/// the bound sweep to prune — see `AltrAlg::solve_pruned`).
fn pool(n: usize) -> Vec<Juror> {
    distinct_pool(n, 0)
}

/// A content-distinct variant of [`pool`]: `salt` rotates the
/// golden-ratio phase, so every member of the checkpoint fleet interns
/// its own store entry (equal juror multisets would share one).
fn distinct_pool(n: usize, salt: usize) -> Vec<Juror> {
    let experts = n.div_ceil(50);
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            // golden-ratio spread, phase-rotated per pool
            let u = (i as f64 * 0.6180339887498949 + salt as f64 * 0.3819660112501051) % 1.0;
            let eps = if i < experts { 0.02 + 0.43 * u } else { 0.55 + 0.40 * u };
            (eps, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

/// The comparable bits of the first answer after a restart.
type Answer = (Vec<usize>, u64, u64);

/// One simulated restart: a fresh service (optionally pointed at a
/// snapshot directory), the pool registered from pre-staged jurors (the
/// clone is excluded so both sides time the same registration work),
/// then the first solve. Returns the best-of wall time and the answer.
fn restart_to_first_answer(
    jurors: &[Juror],
    repeats: usize,
    snapshot_dir: Option<&Path>,
) -> (f64, Answer, usize) {
    let mut stock: Vec<Vec<Juror>> = (0..repeats).map(|_| jurors.to_vec()).collect();
    let config =
        ServiceConfig { snapshot_dir: snapshot_dir.map(Path::to_path_buf), ..Default::default() };
    let ((answer, restores), secs) = time_best_of(repeats, || {
        let mut service = JuryService::with_config(config.clone());
        let id = service.create_pool(stock.pop().expect("one stock pool per repeat"));
        let selection = service.solve(&DecisionTask::altruism(id)).expect("altruism solves");
        let answer = (selection.members, selection.jer.to_bits(), selection.total_cost.to_bits());
        (answer, service.stats().snapshot_restores)
    });
    (secs, answer, restores)
}

/// Builds the snapshot the restore side restarts from: a warm service
/// over the same content, solved once, persisted. The altruism solve
/// is what populates the AltrM answer the snapshot carries.
fn seed_snapshot(dir: &Path, jurors: &[Juror]) {
    let mut service = JuryService::new();
    let id = service.create_pool(jurors.to_vec());
    service.solve(&DecisionTask::altruism(id)).expect("altruism solves");
    let report = service.snapshot(dir).expect("snapshot writes");
    assert!(report.entries >= 1, "seed snapshot persisted nothing");
}

/// Incremental-checkpoint economics: warms a fleet of `fleet`
/// content-distinct pools of `per` jurors each, prices the full first
/// checkpoint of `dir`, churns `churned` pools (one retires, a
/// fresh-content replacement warms up), and prices the re-checkpoint —
/// which must write exactly the churned entries and retain the rest by
/// reference. Returns `(full_secs, incremental_secs)`.
fn checkpoint_costs(dir: &Path, fleet: usize, per: usize, churned: usize) -> (f64, f64) {
    let _ = std::fs::remove_dir_all(dir);
    let mut service = JuryService::new();
    let ids: Vec<_> = (0..fleet)
        .map(|salt| {
            let id = service.create_pool(distinct_pool(per, salt));
            service.warm_pool(id).expect("fleet pool warms");
            id
        })
        .collect();
    let (full, full_secs) = time_it(|| service.snapshot(dir).expect("full checkpoint"));
    assert_eq!(full.written, fleet, "the first checkpoint writes the whole fleet");
    for (i, id) in ids.into_iter().take(churned).enumerate() {
        service.remove_pool(id).expect("pool retires");
        let fresh = service.create_pool(distinct_pool(per, fleet + i));
        service.warm_pool(fresh).expect("replacement warms");
    }
    let (incr, incr_secs) = time_it(|| service.snapshot(dir).expect("incremental checkpoint"));
    assert_eq!(incr.written, churned, "only the churned entries are rewritten");
    assert_eq!(incr.retained, fleet - churned, "unchanged entries are retained by reference");
    assert_eq!(incr.generation, full.generation + 1, "the re-checkpoint commits one generation");
    (full_secs, incr_secs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, repeats): (Vec<usize>, usize) =
        if smoke { (vec![400], 1) } else { (vec![10_000, 1_000_000], 3) };

    let dir: PathBuf = std::env::temp_dir().join(format!(
        "jury-restart-bench-{}{}",
        std::process::id(),
        if smoke { "-smoke" } else { "" }
    ));

    let mut report = Report::new(
        "restart_throughput",
        "restart-to-first-answer: cold warm-build vs verified snapshot restore",
        &["pool", "cold", "snapshot", "speedup", "restores", "ckpt-full", "ckpt-incr", "ckpt-gain"],
    );
    let mut rows: Vec<Value> = Vec::new();

    for &n in &sizes {
        let jurors = pool(n);
        let (cold_secs, cold_answer, cold_restores) =
            restart_to_first_answer(&jurors, repeats, None);
        assert_eq!(cold_restores, 0, "the cold side must not restore anything");

        let _ = std::fs::remove_dir_all(&dir);
        seed_snapshot(&dir, &jurors);
        let (snap_secs, snap_answer, snap_restores) =
            restart_to_first_answer(&jurors, repeats, Some(&dir));
        assert!(snap_restores >= 1, "the snapshot side must restore, not rebuild");
        assert_eq!(
            snap_answer, cold_answer,
            "restored first answer must be bit-identical to the cold build's"
        );

        // Checkpoint economics over a fleet carrying the same total
        // juror count, with ~1% of its pools churned between commits.
        let fleet = if smoke { 20 } else { 100 };
        let per = (n / fleet).max(4);
        let churned = fleet.div_ceil(100);
        let (full_secs, incr_secs) =
            checkpoint_costs(&dir.join(format!("fleet-{n}")), fleet, per, churned);
        let ckpt_speedup = full_secs / incr_secs;
        if n >= 1_000_000 {
            assert!(
                ckpt_speedup >= 10.0,
                "incremental checkpoint must be >=10x cheaper than a full rewrite at 10^6 \
                 jurors (full {full_secs:.4}s, incremental {incr_secs:.4}s)"
            );
        }

        let speedup = cold_secs / snap_secs;
        report.row(&[
            &n,
            &fmt_secs(cold_secs),
            &fmt_secs(snap_secs),
            &format!("{speedup:.1}x"),
            &snap_restores,
            &fmt_secs(full_secs),
            &fmt_secs(incr_secs),
            &format!("{ckpt_speedup:.1}x"),
        ]);
        rows.push(Value::object([
            ("pool_size", n.to_value()),
            ("cold_secs", cold_secs.to_value()),
            ("snapshot_secs", snap_secs.to_value()),
            ("speedup", speedup.to_value()),
            ("snapshot_restores", snap_restores.to_value()),
            ("checkpoint_pools", fleet.to_value()),
            ("checkpoint_written", churned.to_value()),
            ("checkpoint_full_secs", full_secs.to_value()),
            ("checkpoint_incremental_secs", incr_secs.to_value()),
            ("checkpoint_speedup", ckpt_speedup.to_value()),
        ]));
    }
    let _ = std::fs::remove_dir_all(&dir);

    report.emit();

    if smoke {
        println!("[smoke] restart_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput) with the
    // restart section rather than clobbering the baseline document.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "restart-to-first-answer (AltrM, one pool): cold warm-build vs verified \
             snapshot restore, best of repeats, registration clone pre-staged; plus \
             incremental-checkpoint economics over a 100-pool fleet with ~1% churn \
             between commits"
                .to_value(),
        ),
        ("pool_sizes", Value::Array(sizes.iter().map(|n| n.to_value()).collect())),
        ("results", Value::Array(rows)),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "restart");
        fields.push(("restart".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (restart section)");
}
