//! Regenerates the paper's table2. Pass --quick for a fast smoke run.

fn main() {
    let quick = jury_bench::experiments::quick_mode();
    for report in jury_bench::experiments::table2::run(quick) {
        report.emit();
    }
}
