//! `service_throughput` — the serving layer's perf baseline.
//!
//! Measures end-to-end task throughput of [`JuryService`] at pool sizes
//! 10², 10³ and 10⁴ and batch sizes 1, 32 and 1024, against the naive
//! baseline of one standalone `AltrAlg::solve` / `PayAlg::solve` call
//! per task (fresh sort + fresh buffers every time — what the examples
//! did before the service existed).
//!
//! Prints the table and writes `BENCH_service.json` into the current
//! directory so successive PRs can diff the trajectory (run
//! `sharded_throughput` afterwards — it appends its section to the same
//! file). `--smoke` runs a seconds-long version on tiny pools and writes
//! nothing — CI uses it to keep this binary from rotting. Run from the
//! repo root:
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin service_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_f, Report};
use jury_bench::timing::time_best_of;
use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_core::model::CrowdModel;
use jury_core::paym::{PayAlg, PayConfig};
use jury_service::{DecisionTask, JuryService};
use serde::{json, Serialize, Value};

const POOL_SIZES: [usize; 3] = [100, 1_000, 10_000];
const BATCH_SIZES: [usize; 3] = [1, 32, 1_024];

/// Deterministic pool: rates spread over (0.02, 0.95), convex prices.
fn pool(n: usize) -> Vec<Juror> {
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0; // golden-ratio spread
            (0.02 + 0.93 * u, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

/// Mixed task stream: two thirds AltrM, one third PayM with a cycling
/// budget — the service's intended workload shape.
fn models(batch: usize) -> Vec<CrowdModel> {
    (0..batch)
        .map(|i| {
            if i % 3 == 2 {
                CrowdModel::PayAsYouGo { budget: 0.5 + (i % 7) as f64 }
            } else {
                CrowdModel::Altruism
            }
        })
        .collect()
}

/// Tasks/sec solving the stream through warm `solve_batch` (owned
/// results — one member-list copy per replayed task) and through
/// `solve_batch_shared` (replays hand out one `Arc` per task). The gap
/// between the two is pure result-copy traffic: at pool 10⁴ the cached
/// AltrM answer holds ~10³ members, and cloning it per task is what
/// collapsed large-batch throughput before the shared path existed.
fn service_throughput(jurors: &[Juror], batch: usize) -> (f64, f64) {
    let mut service = JuryService::new();
    let id = service.create_pool(jurors.to_vec());
    service.warm_pool(id).expect("pool registered");
    let stream: Vec<DecisionTask> =
        models(batch).into_iter().map(|model| DecisionTask { pool: id, model }).collect();
    // One warm-up batch grows the worker scratches, then measure.
    assert!(service.solve_batch(&stream).iter().all(Result::is_ok));
    let repeats = if jurors.len() >= 10_000 { 2 } else { 5 };
    let (_, secs) = time_best_of(repeats, || {
        let results = service.solve_batch(&stream);
        std::hint::black_box(results.len())
    });
    let (_, shared_secs) = time_best_of(repeats, || {
        let results = service.solve_batch_shared(&stream);
        std::hint::black_box(results.len())
    });
    (batch as f64 / secs, batch as f64 / shared_secs)
}

/// Tasks/sec solving the same stream with one standalone solver call per
/// task (the pre-service architecture). Large pools are timed over a
/// truncated stream and scaled — the per-task cost is constant.
fn naive_throughput(jurors: &[Juror], batch: usize) -> f64 {
    let sample = if jurors.len() >= 10_000 { batch.min(4) } else { batch.min(64) };
    let altr = AltrConfig::default();
    let pay = PayConfig::default();
    let stream = models(sample);
    let (_, secs) = time_best_of(2, || {
        for model in &stream {
            let result = match *model {
                CrowdModel::Altruism => AltrAlg::solve(jurors, &altr),
                CrowdModel::PayAsYouGo { budget } => PayAlg::solve(jurors, budget, &pay),
            };
            std::hint::black_box(result.is_ok());
        }
    });
    sample as f64 / secs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let pool_sizes: Vec<usize> = if smoke { vec![64, 256] } else { POOL_SIZES.to_vec() };
    let batch_sizes: Vec<usize> = if smoke { vec![1, 16] } else { BATCH_SIZES.to_vec() };

    let mut report = Report::new(
        "service_throughput",
        "JuryService warm-batch throughput (owned and shared results) vs naive per-task solve",
        &["pool", "batch", "service tasks/s", "shared tasks/s", "naive tasks/s", "speedup"],
    );
    let mut rows: Vec<Value> = Vec::new();

    for &n in &pool_sizes {
        let jurors = pool(n);
        for &batch in &batch_sizes {
            let (service, shared) = service_throughput(&jurors, batch);
            let naive = naive_throughput(&jurors, batch);
            let speedup = service / naive;
            report.row(&[
                &n,
                &batch,
                &fmt_f(service, 1),
                &fmt_f(shared, 1),
                &fmt_f(naive, 1),
                &format!("{speedup:.1}x"),
            ]);
            rows.push(Value::object([
                ("pool_size", n.to_value()),
                ("batch_size", batch.to_value()),
                ("service_tasks_per_sec", service.to_value()),
                ("service_shared_tasks_per_sec", shared.to_value()),
                ("naive_tasks_per_sec", naive.to_value()),
                ("speedup", speedup.to_value()),
            ]));
        }
    }

    report.emit();

    if smoke {
        println!("[smoke] service_throughput ok ({} measurements)", rows.len());
        return;
    }

    let doc = Value::object([
        ("bench", "service_throughput".to_value()),
        ("workload", "2/3 AltrM + 1/3 PayM (cycling budgets), warm cache".to_value()),
        ("pool_sizes", Value::Array(pool_sizes.iter().map(|n| n.to_value()).collect())),
        ("batch_sizes", Value::Array(batch_sizes.iter().map(|n| n.to_value()).collect())),
        ("results", Value::Array(rows)),
    ]);
    let path = "BENCH_service.json";
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path}");
}
