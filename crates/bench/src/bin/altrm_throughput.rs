//! `altrm_throughput` — the rescan-free warm AltrM serving numbers.
//!
//! Three measurements per pool size and layout, on AltrM traffic:
//!
//! * **steady warm** — the same AltrM task again: a cached-answer
//!   replay (one selection clone, no scan at all);
//! * **post-mutation** — one juror update (a re-estimated error rate)
//!   followed by the next AltrM task: the update repairs every sorted
//!   order and pmf ladder *in place*, and the dropped answer is
//!   re-solved by `AltrAlg::solve_pruned` — an `O(N)` bound sweep plus
//!   exact JER only at the surviving sizes, instead of the `O(N²)`
//!   full prefix scan;
//! * **full-rescan baseline** — what the same re-solve cost before this
//!   path existed: `AltrAlg::solve_presorted` over the identical
//!   (already repaired) sorted order. Measured only up to 10⁴ jurors;
//!   beyond that one baseline rescan takes whole seconds, which is the
//!   point.
//!
//! The pool models the regime the paper's Twitter measurements show and
//! that makes jury selection interesting at all: a *fixed* cohort of
//! reliable experts (ε ∈ [0.02, 0.30)) inside an ever-growing unreliable
//! mob (ε ∈ [0.55, 0.95)). The optimal jury sits in the expert band, the
//! prefix mean crosses ½ right above it, and the Paley–Zygmund bound
//! erases the whole mob tail — the emitter records how many candidate
//! sizes were pruned. (A pool whose prefix mean never reaches ½ — e.g. a
//! uniform ε spread with mean < 0.5 — keeps every size a survivor and
//! the pruned scan degrades gracefully to the full one plus an `O(N)`
//! sweep.)
//!
//! Appends an `"altrm"` section to `BENCH_service.json` (run
//! `service_throughput` first — it rewrites the whole file). `--smoke`
//! runs a seconds-long version on a tiny pool and writes nothing — CI
//! uses it to keep this binary from rotting.
//!
//! ```console
//! $ cargo run --release -p jury-bench --bin altrm_throughput [-- --smoke]
//! ```

use jury_bench::report::{fmt_secs, Report};
use jury_bench::timing::time_best_of;
use jury_core::altr::AltrAlg;
use jury_core::juror::{pool_from_rates_and_costs, ErrorRate, Juror};
use jury_core::solver::{sorted_order_into, SolverScratch};
use jury_service::{DecisionTask, JuryService, PoolId, ServiceConfig, ShardConfig};
use serde::{json, Serialize, Value};

/// Number of reliable experts, independent of pool size.
const EXPERTS: usize = 100;

/// Largest pool the `O(N²)` full-rescan baseline is measured on.
const RESCAN_BASELINE_MAX: usize = 10_000;

/// Deterministic expert-plus-mob pool: `EXPERTS` reliable jurors spread
/// over [0.02, 0.30), the rest a mob spread over [0.55, 0.95); golden-
/// ratio spacing, convex prices.
fn pool(n: usize) -> Vec<Juror> {
    let experts = EXPERTS.min(n / 2);
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0;
            let e = if i < experts { 0.02 + 0.28 * u } else { 0.55 + 0.40 * u };
            (e, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

/// One juror update per round: a mob member's rate is re-estimated
/// within the mob band, so the pool regime is stable across rounds.
fn mutated_juror(round: usize, n: usize) -> (usize, Juror) {
    let idx = EXPERTS + (round * 7919) % (n - EXPERTS);
    let e = 0.55 + ((round * 13) % 40) as f64 / 100.0;
    (idx, Juror::new(idx as u32, ErrorRate::new(e).unwrap(), 0.1))
}

/// Measures steady warm replay and post-mutation re-solve through the
/// service; returns `(steady, post_mutation, pruned_per_solve)`.
fn measure(service: &mut JuryService, id: PoolId, n: usize, repeats: usize) -> (f64, f64, usize) {
    let task = DecisionTask::altruism(id);
    assert!(service.solve(&task).is_ok(), "priming solve must succeed");
    let (_, steady) = time_best_of(repeats, || {
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    let pruned_before = service.stats().bound_pruned;
    let solves_before = service.stats().tasks_solved;
    let mut round = 0usize;
    let (_, post_mutation) = time_best_of(repeats, || {
        round += 1;
        let (idx, juror) = mutated_juror(round, n);
        service.update_juror(id, idx, juror).expect("index in range");
        let r = service.solve(&task);
        std::hint::black_box(r.is_ok())
    });
    let full_repairs = service.stats().full_repairs;
    assert!(full_repairs <= 1, "post-mutation AltrM must never full-repair (saw {full_repairs})");
    let solves = service.stats().tasks_solved - solves_before;
    let pruned_per_solve = (service.stats().bound_pruned - pruned_before) / solves.max(1);
    (steady, post_mutation, pruned_per_solve)
}

/// The pre-pruning cost of the same re-solve: one full presorted scan
/// over the pool's sorted order.
fn full_rescan_baseline(jurors: &[Juror], repeats: usize) -> f64 {
    let mut order = Vec::new();
    sorted_order_into(jurors, &mut order);
    let mut scratch = SolverScratch::new();
    let alg = AltrAlg::default();
    let (_, secs) = time_best_of(repeats, || {
        let r = alg.solve_presorted(jurors, &order, &mut scratch);
        std::hint::black_box(r.is_ok())
    });
    secs
}

fn sharded_service(k: usize) -> JuryService {
    JuryService::with_config(ServiceConfig {
        shard: ShardConfig { threshold: 1, shards: k, ..Default::default() },
        ..Default::default()
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (pool_sizes, shard_counts, repeats): (Vec<usize>, Vec<usize>, usize) =
        if smoke { (vec![500], vec![4], 1) } else { (vec![1_000, 10_000, 100_000], vec![16], 5) };

    let mut report = Report::new(
        "altrm_throughput",
        "warm AltrM: cached replay (steady) vs one juror update + bound-pruned re-solve, \
         against the O(N^2) full-rescan baseline",
        &["pool", "layout", "steady warm", "post-mutation", "full rescan", "speedup", "pruned"],
    );
    let mut rows: Vec<Value> = Vec::new();

    for &n in &pool_sizes {
        let jurors = pool(n);
        let rescan = (n <= RESCAN_BASELINE_MAX).then(|| full_rescan_baseline(&jurors, repeats));
        let mut run = |service: &mut JuryService, layout: String, shards: Option<usize>| {
            let id = service.create_pool(jurors.clone());
            let (steady, post, pruned) = measure(service, id, n, repeats);
            assert!(pruned > 0, "the mob tail must prune on this pool");
            let speedup = rescan.map(|r| r / post);
            report.row(&[
                &n,
                &layout,
                &fmt_secs(steady),
                &fmt_secs(post),
                &rescan.map_or("-".into(), fmt_secs),
                &speedup.map_or("-".into(), |s| format!("{s:.0}x")),
                &pruned,
            ]);
            rows.push(Value::object([
                ("pool_size", n.to_value()),
                ("shards", shards.map_or(Value::Null, |k| k.to_value())),
                ("model", "altrm".to_value()),
                ("steady_warm_hit_secs", steady.to_value()),
                ("post_mutation_secs", post.to_value()),
                ("full_rescan_secs", rescan.map_or(Value::Null, |r| r.to_value())),
                ("speedup_vs_full_rescan", speedup.map_or(Value::Null, |s| s.to_value())),
                ("sizes_pruned_per_solve", pruned.to_value()),
            ]));
        };
        for &k in &shard_counts {
            run(&mut sharded_service(k), format!("sharded/{k}"), Some(k));
        }
        run(&mut JuryService::new(), "flat".into(), None);
    }

    report.emit();

    if smoke {
        println!("[smoke] altrm_throughput ok ({} measurements)", rows.len());
        return;
    }

    // Extend BENCH_service.json (written by service_throughput) with the
    // altrm section.
    let path = "BENCH_service.json";
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::object([("bench", "service_throughput".to_value())]));
    let section = Value::object([
        (
            "workload",
            "warm AltrM on an expert-plus-mob pool (100 experts eps in [0.02,0.30), mob in \
             [0.55,0.95)): cached replay (steady) and one juror update + next solve \
             (post-mutation: in-place order/ladder repair + bound-pruned rescan-free re-solve), \
             vs the O(N^2) full presorted rescan the warm path previously paid"
                .to_value(),
        ),
        ("experts", EXPERTS.to_value()),
        ("pool_sizes", Value::Array(pool_sizes.iter().map(|n| n.to_value()).collect())),
        ("shard_counts", Value::Array(shard_counts.iter().map(|k| k.to_value()).collect())),
        (
            "rescan_baseline_note",
            format!(
                "full_rescan_secs measured only up to {RESCAN_BASELINE_MAX} jurors; beyond that \
                 one O(N^2) rescan takes seconds"
            )
            .to_value(),
        ),
        ("results", Value::Array(rows)),
    ]);
    if let Value::Object(fields) = &mut doc {
        fields.retain(|(key, _)| key != "altrm");
        fields.push(("altrm".to_string(), section));
    }
    std::fs::write(path, json::to_string_pretty(&doc)).expect("write BENCH_service.json");
    println!("[json] {path} (altrm section)");
}
