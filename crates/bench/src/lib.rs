//! Experiment harness shared by the figure/table binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§5): it prints the same x/y series the paper plots
//! and writes a CSV copy under `target/experiments/` so EXPERIMENTS.md
//! can reference stable artefacts.
//!
//! * [`report`] — aligned text tables + CSV emission;
//! * [`twitter`] — the shared synthetic "Twitter" dataset for the §5.2
//!   experiments (Figures 3(g)–3(i)), built once per size through the
//!   full parse → rank → normalise pipeline;
//! * [`timing`] — wall-clock measurement helpers for the efficiency
//!   figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;
pub mod timing;
pub mod twitter;

pub use report::Report;
pub use timing::time_it;
