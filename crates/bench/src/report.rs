//! Result tables: aligned stdout rendering plus CSV artefacts.
//!
//! Each experiment binary builds one [`Report`] per figure, prints it,
//! and persists it under `target/experiments/<id>.csv`. The CSV columns
//! are exactly the printed columns, so the artefacts are diffable across
//! runs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A column-oriented result table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment identifier, e.g. `fig3a` — used as the CSV file stem.
    pub id: String,
    /// Human-readable title printed above the table.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report with column headers.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn row(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.push_row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ({}) ==", self.title, self.id);
        let header_line: Vec<String> =
            self.headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header_line.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// CSV serialisation (header + rows; cells containing commas or
    /// quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ =
                writeln!(out, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Default artefact directory: `target/experiments` relative to the
    /// workspace (honours `CARGO_TARGET_DIR` when set).
    pub fn default_dir() -> PathBuf {
        let target = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target"));
        target.join("experiments")
    }

    /// Writes the CSV artefact into `dir` (created if missing). Returns
    /// the file path.
    pub fn write_csv_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Prints the table to stdout and writes the CSV artefact to the
    /// default directory, reporting where it went.
    pub fn emit(&self) {
        print!("{}", self.render());
        match self.write_csv_to(&Self::default_dir()) {
            Ok(path) => println!("[csv] {}\n", path.display()),
            Err(e) => eprintln!("[csv] write failed: {e}\n"),
        }
    }
}

/// Formats a float with fixed precision for table cells.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats seconds in engineering-friendly units.
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("unit", "Unit Test Table", &["x", "y"]);
        r.push_row(&["1".into(), "2.5".into()]);
        r.push_row(&["10".into(), "0.25".into()]);
        r
    }

    #[test]
    fn render_contains_everything() {
        let text = sample().render();
        assert!(text.contains("Unit Test Table"));
        assert!(text.contains("x"));
        assert!(text.contains("0.25"));
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        // Header and rows share the right-aligned "y" column: "2.5" and
        // "0.25" both end at the same offset.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,y");
        assert_eq!(lines[2], "10,0.25");
    }

    #[test]
    fn csv_escapes_specials() {
        let mut r = Report::new("q", "Q", &["a"]);
        r.push_row(&["he,llo".into()]);
        r.push_row(&["say \"hi\"".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"he,llo\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut r = Report::new("w", "W", &["a", "b"]);
        r.push_row(&["only-one".into()]);
    }

    #[test]
    fn writes_csv_artifact() {
        let dir = std::env::temp_dir().join("jury-bench-report-test");
        let path = sample().write_csv_to(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,y"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.07036, 4), "0.0704");
        assert_eq!(fmt_f(1.0, 2), "1.00");
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(2.5), "2.500s");
    }

    #[test]
    fn len_and_empty() {
        let r = Report::new("e", "E", &["a"]);
        assert!(r.is_empty());
        assert_eq!(sample().len(), 2);
    }
}
