//! Property-based tests for parameter estimation.

use jury_estimate::em::{estimate_error_rates_em, EmConfig, VoteMatrix};
use jury_estimate::error_rate::{scores_to_error_rates, NormalizationParams};
use jury_estimate::requirement::ages_to_requirements;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn normalisation_is_antitone(scores in vec(0.0..1000.0f64, 2..40)) {
        let rates = scores_to_error_rates(&scores, &NormalizationParams::default());
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] < scores[j] {
                    prop_assert!(rates[i].get() >= rates[j].get() - 1e-15);
                }
            }
        }
    }

    #[test]
    fn normalisation_stays_in_open_interval(
        scores in vec(-1e6..1e6f64, 1..40),
        alpha in 0.5..20.0f64,
        beta in 1.5..20.0f64,
    ) {
        let rates = scores_to_error_rates(&scores, &NormalizationParams { alpha, beta });
        for r in rates {
            prop_assert!(r.get() > 0.0 && r.get() < 1.0);
        }
    }

    #[test]
    fn normalisation_is_shift_scale_invariant(
        scores in vec(0.0..100.0f64, 2..20),
        shift in -50.0..50.0f64,
        scale in 0.1..10.0f64,
    ) {
        let base = scores_to_error_rates(&scores, &NormalizationParams::default());
        let transformed: Vec<f64> = scores.iter().map(|s| s * scale + shift).collect();
        let mapped = scores_to_error_rates(&transformed, &NormalizationParams::default());
        for (a, b) in base.iter().zip(&mapped) {
            prop_assert!((a.get() - b.get()).abs() < 1e-9);
        }
    }

    #[test]
    fn requirements_are_normalised_and_monotone(ages in vec(0u32..20_000, 1..50)) {
        let reqs = ages_to_requirements(&ages);
        prop_assert_eq!(reqs.len(), ages.len());
        for r in &reqs {
            prop_assert!((0.0..=1.0).contains(r));
        }
        for i in 0..ages.len() {
            for j in 0..ages.len() {
                if ages[i] < ages[j] {
                    prop_assert!(reqs[i] <= reqs[j] + 1e-15);
                }
            }
        }
    }

    #[test]
    fn em_rates_are_valid_and_fit_converges(
        votes in vec(vec(any::<bool>(), 3..8), 5..40),
    ) {
        // Arbitrary dense vote matrices with a fixed juror count per run.
        let n_jurors = votes[0].len();
        let mut matrix = VoteMatrix::new(n_jurors);
        for row in &votes {
            let row: Vec<bool> =
                row.iter().copied().cycle().take(n_jurors).collect();
            matrix.push_dense_task(&row);
        }
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        prop_assert_eq!(fit.error_rates.len(), n_jurors);
        for e in &fit.error_rates {
            prop_assert!(e.get() > 0.0 && e.get() < 1.0);
        }
        for q in &fit.task_posteriors {
            prop_assert!((0.0..=1.0).contains(q));
        }
        prop_assert!(fit.prior_yes > 0.0 && fit.prior_yes < 1.0);
        prop_assert!(fit.log_likelihood <= 0.0);
    }

    #[test]
    fn em_map_objective_never_decreases_with_more_iterations(
        seed in 0u64..200,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let rates = [0.15, 0.3, 0.45];
        let mut matrix = VoteMatrix::new(rates.len());
        for _ in 0..60 {
            let truth = rng.gen_bool(0.5);
            let row: Vec<bool> = rates
                .iter()
                .map(|&e| if rng.gen_bool(e) { !truth } else { truth })
                .collect();
            matrix.push_dense_task(&row);
        }
        // MAP-EM monotonicity holds for likelihood + Beta log-priors
        // (the smoothing pseudo-counts), not for the raw likelihood.
        let config = EmConfig { tolerance: 0.0, ..Default::default() };
        let penalized = |fit: &jury_estimate::em::EmEstimate| -> f64 {
            let rate_pen: f64 = fit
                .error_rates
                .iter()
                .map(|e| config.smoothing * (e.get().ln() + (1.0 - e.get()).ln()))
                .sum();
            let pi_pen =
                config.smoothing * (fit.prior_yes.ln() + (1.0 - fit.prior_yes).ln());
            fit.log_likelihood + rate_pen + pi_pen
        };
        let mut prev = f64::NEG_INFINITY;
        for iters in [1usize, 3, 10, 50] {
            let fit = estimate_error_rates_em(
                &matrix,
                &EmConfig { max_iterations: iters, ..config },
            );
            let pen = penalized(&fit);
            prop_assert!(pen >= prev - 1e-9, "{} < {}", pen, prev);
            prev = pen;
        }
    }
}
