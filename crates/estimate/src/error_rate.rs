//! Ranking scores → individual error rates (§4.1.3).
//!
//! Because social-network scores are power-law distributed, the paper
//! normalises a user's quality score `s_i` into an error rate with an
//! exponential decay:
//!
//! ```text
//! ε_i = β^(−α·(s_i − min)/(max − min))        α = β = 10 in §5.2
//! ```
//!
//! The best-scored user gets `β^{-α}` (≈ 1e-10 with the defaults — nearly
//! perfect) and the worst gets `β^0 = 1`. Definition 4 requires rates
//! strictly inside `(0, 1)`, so results are clamped via
//! [`ErrorRate::clamped`].

use jury_core::juror::ErrorRate;

/// Parameters of the §4.1.3 normalisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizationParams {
    /// Exponent scale α (paper: 10).
    pub alpha: f64,
    /// Base β (paper: 10).
    pub beta: f64,
}

impl Default for NormalizationParams {
    fn default() -> Self {
        Self { alpha: 10.0, beta: 10.0 }
    }
}

impl NormalizationParams {
    /// Maps one min–max-normalised share `z ∈ [0, 1]` to an error rate.
    #[inline]
    pub fn rate_for_share(&self, z: f64) -> ErrorRate {
        ErrorRate::clamped(self.beta.powf(-self.alpha * z))
    }
}

/// Applies the normalisation to a score vector.
///
/// When every score is identical the min–max share is undefined (0/0);
/// we assign the neutral mid-range share `z = 0.5` to every user — no one
/// is *relatively* more authoritative, and the extreme alternatives
/// (everyone perfect / everyone hopeless) would poison selection.
///
/// # Panics
/// Panics if any score is not finite.
pub fn scores_to_error_rates(scores: &[f64], params: &NormalizationParams) -> Vec<ErrorRate> {
    assert!(scores.iter().all(|s| s.is_finite()), "ranking scores must be finite");
    if scores.is_empty() {
        return Vec::new();
    }
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    scores
        .iter()
        .map(|&s| {
            let z = if span <= 0.0 { 0.5 } else { (s - min) / span };
            params.rate_for_share(z)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_map_to_best_and_worst() {
        let params = NormalizationParams::default();
        let rates = scores_to_error_rates(&[0.0, 1.0], &params);
        // worst: β^0 = 1, clamped just below 1.
        assert!(rates[0].get() > 0.999_999);
        assert!(rates[0].get() < 1.0);
        // best: β^{-α} = 1e-10, clamped to the margin.
        assert!(rates[1].get() <= 1e-9);
        assert!(rates[1].get() > 0.0);
    }

    #[test]
    fn midpoint_share() {
        let params = NormalizationParams::default();
        let rates = scores_to_error_rates(&[0.0, 0.5, 1.0], &params);
        // z = 0.5 → 10^-5.
        assert!((rates[1].get() - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn higher_score_never_higher_rate() {
        let params = NormalizationParams::default();
        let scores = [0.1, 0.9, 0.3, 0.6, 0.2, 0.85];
        let rates = scores_to_error_rates(&scores, &params);
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] < scores[j] {
                    assert!(rates[i].get() >= rates[j].get());
                }
            }
        }
    }

    #[test]
    fn all_equal_scores_get_neutral_rate() {
        let params = NormalizationParams::default();
        let rates = scores_to_error_rates(&[0.7; 5], &params);
        for r in &rates {
            assert!((r.get() - 1e-5).abs() < 1e-12); // z = 0.5
        }
    }

    #[test]
    fn empty_input() {
        assert!(scores_to_error_rates(&[], &NormalizationParams::default()).is_empty());
    }

    #[test]
    fn custom_parameters() {
        // α = 1, β = e: ε = e^{-z}; midpoint = e^{-0.5}.
        let params = NormalizationParams { alpha: 1.0, beta: std::f64::consts::E };
        let rates = scores_to_error_rates(&[0.0, 0.5, 1.0], &params);
        assert!((rates[1].get() - (-0.5f64).exp()).abs() < 1e-12);
        assert!((rates[2].get() - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance() {
        // Min–max normalisation makes the map invariant to affine score
        // transformations.
        let params = NormalizationParams::default();
        let base = scores_to_error_rates(&[1.0, 2.0, 5.0], &params);
        let scaled = scores_to_error_rates(&[10.0, 20.0, 50.0], &params);
        let shifted = scores_to_error_rates(&[101.0, 102.0, 105.0], &params);
        for i in 0..3 {
            assert!((base[i].get() - scaled[i].get()).abs() < 1e-12);
            assert!((base[i].get() - shifted[i].get()).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_scores() {
        let _ = scores_to_error_rates(&[0.1, f64::NAN], &NormalizationParams::default());
    }

    #[test]
    fn single_score_is_all_equal_case() {
        let rates = scores_to_error_rates(&[42.0], &NormalizationParams::default());
        assert!((rates[0].get() - 1e-5).abs() < 1e-12);
    }
}
