//! Account age → payment requirement (§4.2).
//!
//! The paper's optional indicator: "the more experienced a user is, the
//! less he or she will be interested in a task", so the requirement is the
//! min–max normalised account age `r_i = (t_i − min)/(max − min) ∈ [0,1]`.
//! Any other estimator "can be smoothly plugged in" — this module is that
//! pluggable default.

use jury_microblog::account::{normalize_ages, AccountAge};

/// Normalises account ages (in days) into payment requirements.
///
/// Delegates to the micro-blog substrate's min–max normalisation; equal
/// ages all map to 0 (no relative-experience premium).
pub fn ages_to_requirements(ages_days: &[u32]) -> Vec<f64> {
    let ages: Vec<AccountAge> = ages_days.iter().map(|&d| AccountAge(d)).collect();
    normalize_ages(&ages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oldest_account_demands_most() {
        let r = ages_to_requirements(&[100, 2000, 1050]);
        assert_eq!(r[0], 0.0);
        assert_eq!(r[1], 1.0);
        assert!((r[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn requirements_are_in_unit_interval() {
        let r = ages_to_requirements(&[3, 1, 4, 1, 5, 9, 2, 6]);
        for v in r {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn equal_ages_are_free() {
        assert_eq!(ages_to_requirements(&[365; 3]), vec![0.0; 3]);
    }

    #[test]
    fn empty() {
        assert!(ages_to_requirements(&[]).is_empty());
    }
}
