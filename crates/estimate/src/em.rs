//! EM estimation of individual error rates from vote history.
//!
//! §4 of the paper estimates error rates from graph structure and notes
//! that "any other reasonable measures can be smoothly plugged in"; its
//! related work cites Raykar et al.'s *Learning from Crowds* and
//! Ipeirotis et al.'s quality management, both of which infer worker
//! error rates from *observed answers*. This module supplies that
//! plug-in: the one-coin Dawid–Skene model fitted with
//! expectation-maximisation.
//!
//! Model: each task `t` has a latent binary truth `z_t ~ Bernoulli(π)`;
//! juror `i` votes `1 − z_t` with probability `ε_i` (the same error rate
//! in both directions — the paper's Definition 4 is exactly this
//! one-coin assumption). EM alternates
//!
//! * **E-step** — posterior `q_t = Pr(z_t = 1 | votes, ε, π)` computed in
//!   log space for numerical robustness;
//! * **M-step** — `ε_i` = expected fraction of tasks juror `i`
//!   contradicted, `π` = mean posterior; both Laplace-smoothed so no
//!   rate ever hits 0 or 1 (Definition 4 needs the open interval).
//!
//! The one-coin likelihood is symmetric under `(ε, z) → (1−ε, 1−z)`:
//! the data alone cannot distinguish a reliable crowd from an
//! adversarial crowd voting on inverted truths. Initialising the
//! posteriors from majority votes pins the fit to the
//! *crowd-is-mostly-right* mode — for a genuinely adversarial crowd the
//! returned rates read as `1 − ε` and the posteriors as `1 − q`. This is
//! inherent to the model, not a defect of the fit; a handful of
//! gold-truth tasks ([`VoteMatrix::push_gold_task`]) pins the posteriors
//! and breaks the symmetry when calibration against adversarial crowds
//! matters.

use jury_core::juror::ErrorRate;

/// Sparse task × juror vote matrix (jurors may skip tasks).
#[derive(Debug, Clone, Default)]
pub struct VoteMatrix {
    n_jurors: usize,
    /// One row per task: `(juror index, vote)` pairs, juror-sorted.
    tasks: Vec<Vec<(usize, bool)>>,
    /// Known ground truth for *gold* tasks, aligned with `tasks`
    /// (`None` = latent). Gold tasks pin their posterior and break the
    /// one-coin label symmetry.
    gold: Vec<Option<bool>>,
}

impl VoteMatrix {
    /// An empty matrix over `n_jurors` jurors.
    pub fn new(n_jurors: usize) -> Self {
        Self { n_jurors, tasks: Vec::new(), gold: Vec::new() }
    }

    /// Number of jurors.
    pub fn n_jurors(&self) -> usize {
        self.n_jurors
    }

    /// Number of tasks recorded.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Records one task's votes as `(juror index, vote)` pairs.
    ///
    /// # Panics
    /// Panics on out-of-range juror indices or duplicate jurors within a
    /// task.
    pub fn push_task(&mut self, votes: &[(usize, bool)]) {
        let mut row: Vec<(usize, bool)> = votes.to_vec();
        row.sort_unstable_by_key(|&(j, _)| j);
        for pair in row.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate juror in task");
        }
        if let Some(&(j, _)) = row.last() {
            assert!(j < self.n_jurors, "juror index {j} out of range");
        }
        self.tasks.push(row);
        self.gold.push(None);
    }

    /// Records a *gold* task: votes plus the known ground truth. Gold
    /// tasks anchor the EM posteriors (`q_t` is clamped to the truth),
    /// breaking the label symmetry and calibrating against adversarial
    /// crowds.
    ///
    /// # Panics
    /// As [`VoteMatrix::push_task`].
    pub fn push_gold_task(&mut self, votes: &[(usize, bool)], truth: bool) {
        self.push_task(votes);
        *self.gold.last_mut().expect("just pushed") = Some(truth);
    }

    /// Number of gold tasks recorded.
    pub fn n_gold_tasks(&self) -> usize {
        self.gold.iter().filter(|g| g.is_some()).count()
    }

    /// Records a dense task (every juror voted), ballots in juror order.
    ///
    /// # Panics
    /// Panics if `ballots.len() != n_jurors`.
    pub fn push_dense_task(&mut self, ballots: &[bool]) {
        assert_eq!(ballots.len(), self.n_jurors, "dense task needs every juror");
        self.tasks.push(ballots.iter().copied().enumerate().collect());
        self.gold.push(None);
    }

    /// Votes cast by each juror (for coverage checks).
    pub fn votes_per_juror(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_jurors];
        for task in &self.tasks {
            for &(j, _) in task {
                counts[j] += 1;
            }
        }
        counts
    }
}

/// EM fitting options.
#[derive(Debug, Clone, Copy)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the mean absolute change of all `ε_i` falls below this.
    pub tolerance: f64,
    /// Laplace smoothing pseudo-counts added to the error/correct tallies
    /// (keeps every rate strictly inside `(0, 1)`).
    pub smoothing: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        // Small panels (2-3 jurors) have slow EM tails: the posterior
        // plateau shrinks the per-iteration ε change geometrically but
        // with ratio near 1, so a 1e-9 mean-change tolerance routinely
        // needs several hundred iterations. 1e-6 is converged for every
        // downstream consumer (rates are only quoted to ~3 decimals) and
        // the 1000-iteration cap leaves ~2x headroom over the worst
        // observed case.
        Self { max_iterations: 1000, tolerance: 1e-6, smoothing: 0.5 }
    }
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmEstimate {
    /// Estimated individual error rates, one per juror.
    pub error_rates: Vec<ErrorRate>,
    /// Posterior `Pr(z_t = 1)` per task.
    pub task_posteriors: Vec<f64>,
    /// Estimated prior `π = Pr(z = 1)`.
    pub prior_yes: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iterations`.
    pub converged: bool,
    /// Final observed-data log-likelihood (raw, without the smoothing
    /// penalty). Because the M-step maximises the *smoothed* (MAP)
    /// objective, the quantity guaranteed non-decreasing across
    /// iterations is `log_likelihood` **plus** the Beta(1+s, 1+s)
    /// log-prior of every rate and of `prior_yes` — see
    /// `penalized_log_likelihood` in the tests.
    pub log_likelihood: f64,
}

/// Fits the one-coin Dawid–Skene model to `votes`.
///
/// # Panics
/// Panics if the matrix has no tasks or a juror never voted (their rate
/// is unidentifiable — filter them out first, e.g. via
/// [`VoteMatrix::votes_per_juror`]).
pub fn estimate_error_rates_em(votes: &VoteMatrix, config: &EmConfig) -> EmEstimate {
    assert!(votes.n_tasks() > 0, "need at least one task");
    let coverage = votes.votes_per_juror();
    assert!(
        coverage.iter().all(|&c| c > 0),
        "every juror needs at least one vote; coverage {coverage:?}"
    );

    let n = votes.n_jurors;
    let t_count = votes.n_tasks();

    // Initial posteriors from per-task majority: selects the
    // crowd-is-mostly-right mode of the symmetric likelihood. Gold tasks
    // start (and stay) pinned at their known truth.
    let mut q: Vec<f64> = votes
        .tasks
        .iter()
        .zip(&votes.gold)
        .map(|(task, gold)| match gold {
            Some(truth) => {
                if *truth {
                    1.0
                } else {
                    0.0
                }
            }
            None => {
                let yes = task.iter().filter(|&&(_, v)| v).count() as f64;
                // Soft majority: pull towards 0/1 but never exactly there.
                (0.05f64).max((yes / task.len() as f64).min(0.95))
            }
        })
        .collect();

    let mut eps = vec![0.25f64; n];
    // Gold tasks carry mode information the majority-vote initialisation
    // lacks: seed ε from each juror's error frequency on gold tasks and
    // re-label the latent posteriors accordingly, otherwise a strongly
    // adversarial crowd leaves EM stuck in the mirrored local optimum.
    if votes.n_gold_tasks() > 0 {
        let mut err = vec![config.smoothing; n];
        let mut tot = vec![2.0 * config.smoothing; n];
        for (task, gold) in votes.tasks.iter().zip(&votes.gold) {
            let Some(truth) = gold else { continue };
            for &(j, vote) in task {
                if vote != *truth {
                    err[j] += 1.0;
                }
                tot[j] += 1.0;
            }
        }
        for (e, (a, b)) in eps.iter_mut().zip(err.iter().zip(&tot)) {
            *e = a / b;
        }
        for ((task, qt), gold) in votes.tasks.iter().zip(q.iter_mut()).zip(&votes.gold) {
            if gold.is_some() {
                continue; // already pinned
            }
            let mut log_yes = 0.5f64.ln();
            let mut log_no = 0.5f64.ln();
            for &(j, vote) in task {
                let e = eps[j];
                if vote {
                    log_yes += (1.0 - e).ln();
                    log_no += e.ln();
                } else {
                    log_yes += e.ln();
                    log_no += (1.0 - e).ln();
                }
            }
            let max = log_yes.max(log_no);
            *qt = (log_yes - max).exp() / ((log_yes - max).exp() + (log_no - max).exp());
        }
    }
    let mut prior = 0.5f64;
    let mut iterations = 0;
    let mut converged = false;
    let mut log_likelihood = f64::NEG_INFINITY;

    while iterations < config.max_iterations {
        iterations += 1;

        // M-step: ε_i from current posteriors.
        let mut err_mass = vec![config.smoothing; n];
        let mut tot_mass = vec![2.0 * config.smoothing; n];
        for (task, &qt) in votes.tasks.iter().zip(&q) {
            for &(j, vote) in task {
                // Juror j erred if vote != z: probability q·1(v=0) + (1−q)·1(v=1).
                err_mass[j] += if vote { 1.0 - qt } else { qt };
                tot_mass[j] += 1.0;
            }
        }
        let new_eps: Vec<f64> = err_mass.iter().zip(&tot_mass).map(|(e, t)| e / t).collect();
        prior =
            (q.iter().sum::<f64>() + config.smoothing) / (t_count as f64 + 2.0 * config.smoothing);

        // E-step in log space + observed-data log-likelihood. Gold tasks
        // contribute their fixed-label likelihood and keep q pinned.
        log_likelihood = 0.0;
        for ((task, qt), gold) in votes.tasks.iter().zip(q.iter_mut()).zip(&votes.gold) {
            let mut log_yes = prior.ln();
            let mut log_no = (1.0 - prior).ln();
            for &(j, vote) in task {
                let e = new_eps[j];
                if vote {
                    log_yes += (1.0 - e).ln();
                    log_no += e.ln();
                } else {
                    log_yes += e.ln();
                    log_no += (1.0 - e).ln();
                }
            }
            match gold {
                Some(true) => {
                    *qt = 1.0;
                    log_likelihood += log_yes;
                }
                Some(false) => {
                    *qt = 0.0;
                    log_likelihood += log_no;
                }
                None => {
                    let max = log_yes.max(log_no);
                    let denom = (log_yes - max).exp() + (log_no - max).exp();
                    *qt = (log_yes - max).exp() / denom;
                    log_likelihood += max + denom.ln();
                }
            }
        }

        let delta: f64 =
            new_eps.iter().zip(&eps).map(|(a, b)| (a - b).abs()).sum::<f64>() / n as f64;
        eps = new_eps;
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    EmEstimate {
        error_rates: eps.iter().map(|&e| ErrorRate::clamped(e)).collect(),
        task_posteriors: q,
        prior_yes: prior,
        iterations,
        converged,
        log_likelihood,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generates a vote history from planted rates and returns
    /// (matrix, truths).
    fn planted(
        rates: &[f64],
        tasks: usize,
        participation: f64,
        seed: u64,
    ) -> (VoteMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut matrix = VoteMatrix::new(rates.len());
        let mut truths = Vec::with_capacity(tasks);
        for _ in 0..tasks {
            let truth = rng.gen_bool(0.5);
            truths.push(truth);
            let mut row = Vec::new();
            for (j, &e) in rates.iter().enumerate() {
                if rng.gen_bool(participation) {
                    let errs = rng.gen_bool(e);
                    row.push((j, if errs { !truth } else { truth }));
                }
            }
            if row.is_empty() {
                row.push((0, truth));
            }
            matrix.push_task(&row);
        }
        (matrix, truths)
    }

    #[test]
    fn recovers_planted_rates_dense() {
        let rates = [0.05, 0.15, 0.25, 0.35, 0.45];
        let (matrix, _) = planted(&rates, 3000, 1.0, 1);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        for (est, &truth) in fit.error_rates.iter().zip(&rates) {
            assert!(
                (est.get() - truth).abs() < 0.04,
                "estimated {} for planted {truth}",
                est.get()
            );
        }
    }

    #[test]
    fn recovers_planted_rates_sparse() {
        let rates = [0.1, 0.2, 0.3, 0.15, 0.4, 0.25];
        let (matrix, _) = planted(&rates, 6000, 0.5, 2);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        for (est, &truth) in fit.error_rates.iter().zip(&rates) {
            assert!(
                (est.get() - truth).abs() < 0.05,
                "estimated {} for planted {truth}",
                est.get()
            );
        }
    }

    #[test]
    fn posteriors_recover_truths() {
        let rates = [0.1, 0.15, 0.2, 0.1, 0.25];
        let (matrix, truths) = planted(&rates, 500, 1.0, 3);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        let correct =
            fit.task_posteriors.iter().zip(&truths).filter(|(&q, &z)| (q > 0.5) == z).count();
        // The Bayes-optimal labeling error for these rates is a few
        // percent; 95% recovery leaves headroom for that plus noise.
        assert!(
            correct as f64 / truths.len() as f64 > 0.95,
            "only {correct}/{} truths recovered",
            truths.len()
        );
    }

    #[test]
    fn em_beats_majority_vote_labels() {
        // One strong juror among noisy ones: EM should weight them up and
        // label tasks better than the raw majority.
        let rates = [0.02, 0.42, 0.42, 0.42, 0.42];
        let (matrix, truths) = planted(&rates, 2000, 1.0, 4);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        let em_correct =
            fit.task_posteriors.iter().zip(&truths).filter(|(&q, &z)| (q > 0.5) == z).count();
        let mv_correct = matrix
            .tasks
            .iter()
            .zip(&truths)
            .filter(|(task, &z)| {
                let yes = task.iter().filter(|&&(_, v)| v).count();
                (yes * 2 > task.len()) == z
            })
            .count();
        assert!(em_correct > mv_correct, "EM {em_correct} should beat MV {mv_correct}");
        // And the strong juror's rate is identified as much lower.
        assert!(fit.error_rates[0].get() < 0.1);
        assert!(fit.error_rates[1].get() > 0.3);
    }

    /// The MAP objective the smoothed M-step actually maximises: raw
    /// likelihood plus Beta log-priors on every rate and on π.
    fn penalized_log_likelihood(fit: &EmEstimate, smoothing: f64) -> f64 {
        let prior_pen: f64 =
            fit.error_rates.iter().map(|e| smoothing * (e.get().ln() + (1.0 - e.get()).ln())).sum();
        let pi_pen = smoothing * (fit.prior_yes.ln() + (1.0 - fit.prior_yes).ln());
        fit.log_likelihood + prior_pen + pi_pen
    }

    #[test]
    fn penalized_likelihood_is_monotone_over_refits() {
        // MAP-EM guarantees the *smoothed* objective never decreases;
        // the raw likelihood can dip slightly when the prior pulls rates
        // off their unsmoothed optimum.
        let rates = [0.2, 0.3, 0.25, 0.15];
        let (matrix, _) = planted(&rates, 400, 1.0, 5);
        let config = EmConfig { tolerance: 0.0, ..Default::default() };
        let mut prev = f64::NEG_INFINITY;
        for iters in [1usize, 2, 5, 20, 100] {
            let fit =
                estimate_error_rates_em(&matrix, &EmConfig { max_iterations: iters, ..config });
            let pen = penalized_log_likelihood(&fit, config.smoothing);
            assert!(
                pen >= prev - 1e-9,
                "objective regressed at {iters} iterations: {pen} < {prev}"
            );
            prev = pen;
        }
    }

    #[test]
    fn convergence_is_reported() {
        let rates = [0.2, 0.3];
        let (matrix, _) = planted(&rates, 200, 1.0, 6);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        assert!(fit.converged);
        assert!(fit.iterations < EmConfig::default().max_iterations);
        let unconverged = estimate_error_rates_em(
            &matrix,
            &EmConfig { max_iterations: 1, tolerance: 0.0, ..Default::default() },
        );
        assert!(!unconverged.converged);
        assert_eq!(unconverged.iterations, 1);
    }

    #[test]
    fn rates_stay_in_open_interval() {
        // A juror who is always right: smoothing must keep ε > 0.
        let mut matrix = VoteMatrix::new(2);
        for i in 0..50 {
            let truth = i % 2 == 0;
            matrix.push_dense_task(&[truth, truth]);
        }
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        for e in &fit.error_rates {
            assert!(e.get() > 0.0 && e.get() < 1.0);
        }
    }

    #[test]
    fn adversarial_crowd_lands_in_mirrored_mode() {
        // Majority-wrong crowd: the one-coin likelihood is symmetric, and
        // majority-vote initialisation pins EM to the crowd-mostly-right
        // mode — so a planted ε = 0.9 crowd comes back as ε ≈ 0.1 with
        // posteriors that *disagree* with the hidden truths. That is the
        // documented, inherent behaviour.
        let rates = [0.9, 0.9, 0.9];
        let (matrix, truths) = planted(&rates, 1000, 1.0, 7);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        for e in &fit.error_rates {
            assert!((e.get() - 0.1).abs() < 0.05, "mirrored rate {}", e.get());
        }
        let agree =
            fit.task_posteriors.iter().zip(&truths).filter(|(&q, &z)| (q > 0.5) == z).count();
        assert!(
            (agree as f64) < 0.1 * truths.len() as f64,
            "posteriors should mirror the truths, agreed on {agree}"
        );
    }

    #[test]
    fn vote_matrix_validation() {
        let mut m = VoteMatrix::new(3);
        m.push_task(&[(0, true), (2, false)]);
        assert_eq!(m.n_tasks(), 1);
        assert_eq!(m.votes_per_juror(), vec![1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vote_matrix_checks_indices() {
        let mut m = VoteMatrix::new(2);
        m.push_task(&[(5, true)]);
    }

    #[test]
    #[should_panic(expected = "duplicate juror")]
    fn vote_matrix_checks_duplicates() {
        let mut m = VoteMatrix::new(2);
        m.push_task(&[(1, true), (1, false)]);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn em_rejects_empty_history() {
        let m = VoteMatrix::new(2);
        let _ = estimate_error_rates_em(&m, &EmConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one vote")]
    fn em_rejects_silent_jurors() {
        let mut m = VoteMatrix::new(3);
        m.push_task(&[(0, true), (1, false)]); // juror 2 never votes
        let _ = estimate_error_rates_em(&m, &EmConfig::default());
    }

    #[test]
    fn gold_tasks_break_adversarial_symmetry() {
        // Same adversarial crowd as above, but 5% of tasks carry known
        // truths: the anchored fit lands in the *correct* mode, reporting
        // the genuinely high error rates.
        let rates = [0.9, 0.9, 0.9];
        let mut rng = StdRng::seed_from_u64(8);
        let mut matrix = VoteMatrix::new(rates.len());
        let mut truths = Vec::new();
        for t in 0..1000 {
            let truth = rng.gen_bool(0.5);
            truths.push(truth);
            let row: Vec<(usize, bool)> = rates
                .iter()
                .enumerate()
                .map(|(j, &e)| (j, if rng.gen_bool(e) { !truth } else { truth }))
                .collect();
            if t % 20 == 0 {
                matrix.push_gold_task(&row, truth);
            } else {
                matrix.push_task(&row);
            }
        }
        assert_eq!(matrix.n_gold_tasks(), 50);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        for e in &fit.error_rates {
            assert!(e.get() > 0.8, "anchored rate {} should be high", e.get());
        }
        // Posteriors now agree with the hidden truths.
        let agree =
            fit.task_posteriors.iter().zip(&truths).filter(|(&q, &z)| (q > 0.5) == z).count();
        assert!(
            agree as f64 > 0.9 * truths.len() as f64,
            "anchored posteriors agreed on only {agree}"
        );
    }

    #[test]
    fn gold_tasks_posteriors_stay_pinned() {
        let mut matrix = VoteMatrix::new(2);
        matrix.push_gold_task(&[(0, false), (1, false)], true); // both wrong
        matrix.push_task(&[(0, true), (1, true)]);
        let fit = estimate_error_rates_em(&matrix, &EmConfig::default());
        assert_eq!(fit.task_posteriors[0], 1.0);
        // Both jurors contradicted a known truth once: rates above the
        // smoothed prior.
        for e in &fit.error_rates {
            assert!(e.get() > 0.3);
        }
    }
}
