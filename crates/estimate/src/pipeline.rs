//! End-to-end parameter estimation: tweets → candidate juror pool.
//!
//! Mirrors the paper's system overview (Figure 2, upper half): raw tweets
//! are parsed into the retweet graph, users are ranked (HITS or
//! PageRank), the top-k users by score are kept as candidates (the paper
//! keeps the 5,000 best of 689,050, and the top 20 for the
//! precision/recall study), scores become error rates and account ages
//! become payment requirements.

use crate::error_rate::{scores_to_error_rates, NormalizationParams};
use crate::requirement::ages_to_requirements;
use jury_core::juror::Juror;
use jury_graph::{hits, pagerank, HitsConfig, PageRankConfig};
use jury_microblog::graph_builder::build_retweet_graph;
use jury_microblog::tweet::Tweet;

/// Which user-ranking algorithm scores the retweet graph.
#[derive(Debug, Clone, Copy)]
pub enum RankingAlgorithm {
    /// HITS authority scores (paper Algorithm 6) — the "HT" datasets.
    Hits(HitsConfig),
    /// PageRank scores (paper Algorithm 7) — the "PR" datasets.
    PageRank(PageRankConfig),
}

impl Default for RankingAlgorithm {
    fn default() -> Self {
        Self::Hits(HitsConfig::default())
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Ranking algorithm (default HITS).
    pub ranking: RankingAlgorithm,
    /// Score → error-rate normalisation (default α = β = 10).
    pub normalization: NormalizationParams,
    /// Keep only the `k` best-scored users as candidates (`None` = all).
    pub top_k: Option<usize>,
}

/// The estimated candidate pool, parallel-indexed: `jurors[i]` belongs to
/// `usernames[i]` and carried raw score `scores[i]`.
#[derive(Debug, Clone)]
pub struct EstimatedCandidates {
    /// Candidate jurors: id = index into this pool, ε from normalised
    /// score, cost from normalised account age.
    pub jurors: Vec<Juror>,
    /// Usernames aligned with `jurors`.
    pub usernames: Vec<String>,
    /// Raw ranking scores aligned with `jurors` (descending).
    pub scores: Vec<f64>,
}

impl EstimatedCandidates {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.jurors.len()
    }

    /// `true` when no candidates were produced (empty tweet set).
    pub fn is_empty(&self) -> bool {
        self.jurors.is_empty()
    }

    /// Index of a username, if it survived top-k selection.
    pub fn index_of(&self, username: &str) -> Option<usize> {
        self.usernames.iter().position(|u| u == username)
    }
}

/// Runs the full §4 estimation pipeline.
///
/// `age_of_user` supplies each username's account age in days (§4.2);
/// users with unknown age are treated as brand-new (age 0 ⇒ cheapest
/// after normalisation — a cautious default for unknown accounts).
pub fn estimate_candidates(
    tweets: &[Tweet],
    age_of_user: impl Fn(&str) -> Option<u32>,
    config: &PipelineConfig,
) -> EstimatedCandidates {
    let rg = build_retweet_graph(tweets);
    let n = rg.graph.node_count();
    if n == 0 {
        return EstimatedCandidates { jurors: vec![], usernames: vec![], scores: vec![] };
    }

    let scores: Vec<f64> = match &config.ranking {
        RankingAlgorithm::Hits(cfg) => hits(&rg.graph, cfg).authority,
        RankingAlgorithm::PageRank(cfg) => pagerank(&rg.graph, cfg).scores,
    };

    // Rank users by score descending (ties by node id for determinism)
    // and keep the top k.
    let mut by_score: Vec<u32> = (0..n as u32).collect();
    by_score.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]).then(a.cmp(&b)));
    if let Some(k) = config.top_k {
        by_score.truncate(k);
    }

    let usernames: Vec<String> = by_score.iter().map(|&id| rg.username(id).to_owned()).collect();
    let kept_scores: Vec<f64> = by_score.iter().map(|&id| scores[id as usize]).collect();

    // Error rates from scores — normalised *within the kept candidates*,
    // as the paper does after its top-k cut.
    let rates = scores_to_error_rates(&kept_scores, &config.normalization);

    // Requirements from account ages.
    let ages: Vec<u32> = usernames.iter().map(|u| age_of_user(u).unwrap_or(0)).collect();
    let requirements = ages_to_requirements(&ages);

    let jurors: Vec<Juror> = rates
        .iter()
        .zip(&requirements)
        .enumerate()
        .map(|(i, (&rate, &req))| Juror::new(i as u32, rate, req))
        .collect();

    EstimatedCandidates { jurors, usernames, scores: kept_scores }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fan_tweets() -> Vec<Tweet> {
        // star: fans f1..f4 all retweet "hub"; hub retweets "minor" once.
        let mut tweets: Vec<Tweet> =
            (1..=4).map(|i| Tweet::new(format!("f{i}"), "RT @hub: insight")).collect();
        tweets.push(Tweet::new("hub", "RT @minor: source"));
        tweets
    }

    #[test]
    fn empty_tweets_give_empty_pool() {
        let c = estimate_candidates(&[], |_| None, &PipelineConfig::default());
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hub_gets_lowest_error_rate_hits() {
        let c = estimate_candidates(&fan_tweets(), |_| Some(100), &PipelineConfig::default());
        assert_eq!(c.usernames[0], "hub"); // highest authority first
        let hub = &c.jurors[0];
        for other in &c.jurors[1..] {
            assert!(hub.epsilon() <= other.epsilon());
        }
    }

    #[test]
    fn pagerank_ranks_cited_users_above_fans() {
        // PageRank differs from HITS here: "hub" passes its whole mass to
        // "minor" (its only out-link), so the chain end can outrank the
        // hub. What must hold is that both cited users beat the uncited
        // fans — the paper's §5.2.1 observation that the two rankings
        // broadly agree on who the top users are, not on exact order.
        let config = PipelineConfig {
            ranking: RankingAlgorithm::PageRank(Default::default()),
            ..Default::default()
        };
        let c = estimate_candidates(&fan_tweets(), |_| Some(100), &config);
        let top_two: Vec<&str> = c.usernames[..2].iter().map(String::as_str).collect();
        assert!(top_two.contains(&"hub"));
        assert!(top_two.contains(&"minor"));
    }

    #[test]
    fn top_k_truncates() {
        let config = PipelineConfig { top_k: Some(2), ..Default::default() };
        let c = estimate_candidates(&fan_tweets(), |_| Some(1), &config);
        assert_eq!(c.len(), 2);
        assert_eq!(c.usernames.len(), 2);
        assert_eq!(c.scores.len(), 2);
    }

    #[test]
    fn ages_become_costs() {
        // hub is ancient, fans brand new: hub costs 1.0, fans 0.0.
        let c = estimate_candidates(
            &fan_tweets(),
            |u| Some(if u == "hub" { 3650 } else { 10 }),
            &PipelineConfig::default(),
        );
        let hub_idx = c.index_of("hub").unwrap();
        assert!((c.jurors[hub_idx].cost - 1.0).abs() < 1e-12);
        let fan_idx = c.index_of("f1").unwrap();
        assert!(c.jurors[fan_idx].cost < 1e-12);
    }

    #[test]
    fn unknown_ages_default_to_new_accounts() {
        let c = estimate_candidates(
            &fan_tweets(),
            |u| if u == "hub" { Some(1000) } else { None },
            &PipelineConfig::default(),
        );
        let fan_idx = c.index_of("f2").unwrap();
        assert_eq!(c.jurors[fan_idx].cost, 0.0);
    }

    #[test]
    fn juror_ids_are_pool_positions() {
        let c = estimate_candidates(&fan_tweets(), |_| Some(5), &PipelineConfig::default());
        for (i, j) in c.jurors.iter().enumerate() {
            assert_eq!(j.id as usize, i);
        }
    }

    #[test]
    fn scores_are_descending() {
        let c = estimate_candidates(&fan_tweets(), |_| Some(5), &PipelineConfig::default());
        for w in c.scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn index_of_missing_user() {
        let c = estimate_candidates(&fan_tweets(), |_| None, &PipelineConfig::default());
        assert!(c.index_of("nobody").is_none());
    }
}
