//! Parameter estimation (§4 of the paper).
//!
//! Turns raw micro-blog data into a pool of candidate [`Juror`]s:
//!
//! 1. build the retweet graph (Algorithm 5, in `jury-microblog`);
//! 2. rank users with HITS authority scores (Algorithm 6) or PageRank
//!    (Algorithm 7), both in `jury-graph`;
//! 3. normalise ranking scores into individual error rates with the
//!    exponential map of §4.1.3 ([`error_rate`]);
//! 4. estimate payment requirements from account ages per §4.2
//!    ([`requirement`]);
//!    (alternatively, estimate error rates from *observed vote history*
//!    with one-coin Dawid–Skene EM ([`em`]) — the pluggable estimator
//!    §4 anticipates, following the learning-from-crowds line of work
//!    the paper cites);
//! 5. assemble everything through the end-to-end [`pipeline`].
//!
//! [`Juror`]: jury_core::Juror

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod em;
pub mod error_rate;
pub mod pipeline;
pub mod requirement;

pub use em::{estimate_error_rates_em, EmConfig, EmEstimate, VoteMatrix};
pub use error_rate::{scores_to_error_rates, NormalizationParams};
pub use pipeline::{estimate_candidates, EstimatedCandidates, PipelineConfig, RankingAlgorithm};
pub use requirement::ages_to_requirements;
