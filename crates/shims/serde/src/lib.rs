//! Vendored stand-in for `serde` (+ the JSON half of `serde_json`).
//!
//! The build environment is offline, so the workspace vendors a minimal
//! serialization framework: a JSON [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits implemented by hand (no derive macros — proc
//! macros would need their own vendored stack), and a complete JSON
//! writer/parser in [`json`].
//!
//! The trait names and module layout mirror serde so call sites read
//! `impl serde::Serialize for …` / `serde::json::to_string(&x)`; swapping
//! to crates.io serde+serde_json later is a manifest change plus
//! replacing the hand impls with `#[derive(...)]`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// The JSON data model every serializable type maps through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Convenience for a missing object field.
    pub fn missing_field(name: &str) -> Self {
        Self(format!("missing field `{name}`"))
    }

    /// Convenience for a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self(format!("expected {what}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can map themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value.as_f64().map(|n| n as $t).ok_or_else(|| Error::expected(stringify!($t), value))
            }
        }
    )*};
}

serialize_float!(f64, f32);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            /// Rejects fractional, out-of-range and non-numeric input
            /// instead of truncating/saturating — wire data is untrusted.
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_f64().ok_or_else(|| Error::expected(stringify!($t), value))?;
                if n.fract() != 0.0 || n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::expected(
                        concat!("an in-range integer for ", stringify!($t)),
                        value,
                    ));
                }
                Ok(n as $t)
            }
        }
    )*};
}

serialize_int!(usize, u64, u32, u16, u8, i64, i32);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// JSON text encoding/decoding of the [`Value`] model.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes to compact JSON.
    pub fn to_string<T: Serialize>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value(), None, 0);
        out
    }

    /// Serializes to human-readable indented JSON.
    pub fn to_string_pretty<T: Serialize>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value(), Some(2), 0);
        out.push('\n');
        out
    }

    /// Parses JSON text into a `T`.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::from_value(&parse(text)?)
    }

    /// Parses JSON text into the [`Value`] model.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                write_seq(out, items.iter(), indent, depth, ('[', ']'), |out, item, d| {
                    write_value(out, item, indent, d);
                });
            }
            Value::Object(fields) => {
                write_seq(out, fields.iter(), indent, depth, ('{', '}'), |out, (k, val), d| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, d);
                });
            }
        }
    }

    fn write_seq<I: ExactSizeIterator>(
        out: &mut String,
        items: I,
        indent: Option<usize>,
        depth: usize,
        (open, close): (char, char),
        mut write_item: impl FnMut(&mut String, I::Item, usize),
    ) {
        if items.len() == 0 {
            out.push(open);
            out.push(close);
            return;
        }
        out.push(open);
        let len = items.len();
        for (i, item) in items.enumerate() {
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * (depth + 1)));
            }
            write_item(out, item, depth + 1);
            if i + 1 < len {
                out.push(',');
            }
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
        out.push(close);
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, token: &str) -> Result<(), Error> {
            if self.bytes[self.pos..].starts_with(token.as_bytes()) {
                self.pos += token.len();
                Ok(())
            } else {
                Err(Error::custom(format!("expected `{token}` at byte {}", self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.eat("null").map(|()| Value::Null),
                Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
                Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
                Some(b'"') => self.string().map(Value::String),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-' | b'0'..=b'9') => self.number(),
                other => Err(Error::custom(format!("unexpected {other:?} at byte {}", self.pos))),
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.pos += 1; // '['
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.pos += 1; // '{'
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(":")?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            if self.peek() != Some(b'"') {
                return Err(Error::custom(format!("expected string at byte {}", self.pos)));
            }
            self.pos += 1;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::custom("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error::custom("bad \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                                // Surrogate pairs are not needed by the
                                // workspace's ASCII payloads.
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::custom("bad \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                            other => return Err(Error::custom(format!("bad escape {other:?}"))),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| Error::custom("invalid UTF-8"))?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::custom("invalid UTF-8 in number"))?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = Value::object([
            ("name", Value::String("jury".into())),
            ("sizes", Value::Array(vec![Value::Number(1.0), Value::Number(3.0)])),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            ("nested", Value::object([("jer", Value::Number(0.07036))])),
        ]);
        let text = json::to_string(&v);
        assert_eq!(json::parse(&text).unwrap(), v);
        let pretty = json::to_string_pretty(&v);
        assert_eq!(json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, -1.5, 0.07036, 1e-300, 123456789.0, f64::MAX] {
            let text = json::to_string(&n);
            let back: f64 = json::from_str(&text).unwrap();
            assert_eq!(back, n, "{text}");
        }
    }

    #[test]
    fn strings_escape() {
        let s = "say \"hi\"\nnew\tline \\".to_string();
        let text = json::to_string(&s);
        let back: String = json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<f64> = vec![1.0, 2.5, 3.0];
        let back: Vec<f64> = json::from_str(&json::to_string(&v)).unwrap();
        assert_eq!(back, v);
        let some: Option<bool> = Some(true);
        assert_eq!(json::to_string(&some), "true");
        let none: Option<bool> = None;
        assert_eq!(json::to_string(&none), "null");
        let opt: Option<bool> = json::from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("12 34").is_err());
        assert!(json::parse("\"unterminated").is_err());
        assert!(json::from_str::<bool>("1.5").is_err());
    }

    #[test]
    fn integers_reject_fractions_and_out_of_range() {
        assert!(json::from_str::<usize>("1.7").is_err());
        assert!(json::from_str::<usize>("-3").is_err());
        assert!(json::from_str::<u8>("256").is_err());
        assert!(json::from_str::<i32>("2147483648").is_err());
        assert_eq!(json::from_str::<usize>("42").unwrap(), 42);
        assert_eq!(json::from_str::<i32>("-7").unwrap(), -7);
        // Floats stay lossless/lossy as floats.
        assert_eq!(json::from_str::<f64>("1.7").unwrap(), 1.7);
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = json::parse(r#"{"a": 3, "b": [1, 2], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_array).map(<[Value]>::len), Some(2));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
