//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment is offline, so the workspace vendors the exact
//! criterion surface its benches use: `criterion_group!`/
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`] and
//! [`Bencher::iter`].
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over enough iterations to fill a fixed measurement window; the
//! median-of-batches time per iteration is reported on stdout as
//! `<group>/<function>/<parameter> ... <time>`. No plots, no statistics
//! machinery — numbers are comparable run-to-run on the same machine,
//! which is what the workspace's perf tracking needs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark (after warm-up).
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(300);
/// Warm-up window before measurement.
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Entry point handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report("", name, None);
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the shim sizes its sample
    /// window independently.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.function, id.parameter.as_deref());
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { function: String::new(), parameter: Some(parameter.to_string()) }
    }
}

/// Times closures handed to it by the benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median seconds per iteration, once measured.
    per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`, recording the median per-iteration time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm up and estimate a batch size that lasts ~1ms.
        let warm_start = Instant::now();
        let mut iters_during_warmup = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW {
            std::hint::black_box(f());
            iters_during_warmup += 1;
        }
        let per_iter_estimate =
            warm_start.elapsed().as_secs_f64() / iters_during_warmup.max(1) as f64;
        let batch = ((1e-3 / per_iter_estimate.max(1e-9)) as u64).clamp(1, 1 << 20);

        // Measure batches until the window is filled; report the median.
        let mut samples = Vec::new();
        let window_start = Instant::now();
        while window_start.elapsed() < MEASUREMENT_WINDOW || samples.len() < 5 {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(batch_start.elapsed().as_secs_f64() / batch as f64);
            if samples.len() >= 10_000 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        self.per_iter = Some(samples[samples.len() / 2]);
    }

    fn report(&self, group: &str, function: &str, parameter: Option<&str>) {
        let mut label = String::new();
        for part in [group, function].into_iter().chain(parameter).filter(|s| !s.is_empty()) {
            if !label.is_empty() {
                label.push('/');
            }
            label.push_str(part);
        }
        match self.per_iter {
            Some(secs) => println!("{label:<50} {}", format_time(secs)),
            None => println!("{label:<50} (no measurement)"),
        }
    }
}

/// Formats seconds in criterion-style units.
fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms/iter", secs * 1e3)
    } else {
        format!("{secs:8.3} s/iter")
    }
}

/// Declares a benchmark group function list (mirror of criterion's
/// macro, ignoring configuration).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose_labels() {
        let id = BenchmarkId::new("fft", 1024);
        assert_eq!(id.function, "fft");
        assert_eq!(id.parameter.as_deref(), Some("1024"));
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(format_time(5e-9).contains("ns"));
        assert!(format_time(5e-6).contains("µs"));
        assert!(format_time(5e-3).contains("ms"));
        assert!(format_time(2.0).contains("s/iter"));
    }
}
