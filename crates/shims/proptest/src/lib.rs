//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment is offline, so the workspace vendors the exact
//! property-testing surface its test suites use: the [`proptest!`] macro,
//! range/tuple/vec/string strategies, [`Strategy::prop_map`],
//! `any::<bool>()`, `any::<prop::sample::Index>()` and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: each `#[test]` runs `PROPTEST_CASES` (default 64) random
//! cases from a generator seeded deterministically per test name, so
//! failures are reproducible. `prop_assert!` failures panic immediately
//! with the formatted message (no shrinking — cases are kept small by the
//! strategies themselves); `prop_assume!` rejections re-draw the case.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Re-exports for `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    // The macros are #[macro_export]ed at the crate root; a glob of the
    // prelude also brings them in scope via the textual scope rules.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng, VecStrategy};

    /// Strategy producing `Vec`s of values from `element`, with lengths
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    /// An index into a collection whose length is only known at use time
    /// (mirror of `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// The deterministic generator handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not complete (only rejection survives to the
/// runner; assertion failures panic directly).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — draw a fresh one.
    Reject,
}

/// Per-block configuration (mirror of `proptest::test_runner::ProptestConfig`,
/// reduced to the case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must see.
    pub cases: usize,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: usize) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: cases() }
    }
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Builds the per-test deterministic generator.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of random values of an output type (mirror of
/// `proptest::strategy::Strategy`, reduced to generation — no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Lengths for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

/// Strategy returned by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `&str` strategies interpret the string as a (restricted) regex:
/// a single character class with an optional `{m,n}` repetition, e.g.
/// `"[A-Za-z0-9_]{1,15}"` — enough for every pattern in the workspace.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
        if alphabet.is_empty() {
            return String::new();
        }
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
    }
}

/// Parses `[class]{m,n}` (or a plain literal, returned as a fixed
/// "alphabet" of one candidate repeated exactly once).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        // `.`: any char except newline — printable ASCII plus a few
        // multi-byte scalars so UTF-8 handling gets exercised.
        let mut alphabet: Vec<char> = (0x20u8..=0x7e).map(char::from).collect();
        alphabet.extend(['é', 'ß', '中', '🦀']);
        return finish_class_repeat(alphabet, rest);
    } else if pattern.starts_with('[') {
        let close = pattern.find(']')?;
        (&pattern[1..close], &pattern[close + 1..])
    } else {
        return None;
    };
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    finish_class_repeat(alphabet, rest)
}

/// Applies the `{m,n}` / `{n}` / implicit-`{1}` repetition suffix.
fn finish_class_repeat(alphabet: Vec<char>, rest: &str) -> Option<(Vec<char>, usize, usize)> {
    let (lo, hi) = if rest.is_empty() {
        (1, 1)
    } else {
        let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
        match inner.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = inner.trim().parse().ok()?;
                (n, n)
            }
        }
    };
    Some((alphabet, lo, hi))
}

/// Types with a canonical strategy (mirror of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T: Arbitrary` — `any::<bool>()`,
/// `any::<prop::sample::Index>()`, etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for fair booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy for [`sample::Index`].
#[derive(Debug, Clone, Copy)]
pub struct AnyIndex;

impl Strategy for AnyIndex {
    type Value = sample::Index;
    fn generate(&self, rng: &mut TestRng) -> sample::Index {
        sample::Index(rng.gen::<u64>())
    }
}

impl Arbitrary for sample::Index {
    type Strategy = AnyIndex;
    fn arbitrary() -> AnyIndex {
        AnyIndex
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// item becomes a `#[test]` that runs [`cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            @cases ($config.cases)
            $(#[test] fn $name($($arg in $strat),+) $body)*
        }
    };
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            @cases ($crate::cases())
            $(#[test] fn $name($($arg in $strat),+) $body)*
        }
    };
    (@cases ($cases:expr)
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cases: usize = $cases;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases * 50 + 1000,
                        "prop_assume! rejected too many cases ({} attempts for {} accepted)",
                        attempts,
                        accepted
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, panicking with the formatted
/// message (and expression text) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("property failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("property failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("property failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r);
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property failed: {} != {}: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l
            );
        }
    }};
}

/// Rejects the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn class_repeat_parser() {
        let (alphabet, lo, hi) = super::parse_class_repeat("[a-c]{2,5}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (2, 5));
        let (alphabet, lo, hi) = super::parse_class_repeat("[A-Za-z0-9_]{1,15}").unwrap();
        assert_eq!(alphabet.len(), 26 + 26 + 10 + 1);
        assert_eq!((lo, hi), (1, 15));
        let (alphabet, ..) = super::parse_class_repeat("[a-z ]{0,20}").unwrap();
        assert!(alphabet.contains(&' '));
    }

    #[test]
    fn string_strategy_respects_class_and_length() {
        let mut rng = super::test_rng("string_strategy");
        for _ in 0..200 {
            let s = "[A-Za-z0-9_]{1,15}".generate(&mut rng);
            assert!((1..=15).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = super::test_rng("vec_strategy");
        let strat = super::collection::vec(0.25..0.75f64, 3..=7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..=7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.25..0.75).contains(x)));
        }
    }

    proptest! {
        #[test]
        fn macro_end_to_end(x in 0.0..1.0f64, n in 1usize..10, b in any::<bool>()) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(b, b);
        }

        #[test]
        fn assume_rejects_and_redraws(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn index_resolves_in_bounds(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..5, 0u32..5), s in "[ab]{1,3}".prop_map(|s| s.len())) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert!((1..=3).contains(&s));
        }
    }
}
