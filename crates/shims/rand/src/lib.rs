//! Vendored stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so the workspace vendors the
//! exact `rand` API subset it uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality
//! and deterministic per seed, which is all the workspace's simulations
//! and tests rely on (they assert statistical properties and per-seed
//! reproducibility, never exact streams of the upstream crate).
//!
//! Swapping back to crates.io `rand` is a one-line manifest change; no
//! source changes are required.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s — the object-safe core every generator
/// implements (mirror of `rand::RngCore`, reduced to what is used).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (mirror of
/// sampling `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can produce a uniform sample (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` (widening-multiply method; the
/// bias for any span the workspace uses is far below statistical noise).
#[inline]
fn bounded(rng_bits: u64, span: u64) -> u64 {
    ((rng_bits as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Convenience extension methods over any [`RngCore`] (mirror of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T` (e.g. `f64` in `[0,1)`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut *self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0,1], got {p}");
        f64::sample(&mut *self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(&mut *self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds (mirror of `rand::SeedableRng`,
/// reduced to the `seed_from_u64` entry point the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng = StdRng::seed_from_u64(12);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
