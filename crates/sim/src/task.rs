//! Batches of decision-making tasks.
//!
//! Models the paper's motivating workload: a stream of binary questions
//! ("Is Turkey in Europe?", "Is this message a rumor?") posed to a fixed
//! jury via `@`-mentions. Each task has a latent ground truth; the jury
//! votes; aggregation is plain or weighted majority voting. The report
//! compares both aggregators against the analytic JER.

use crate::voting_sim::simulate_voting;
use jury_core::jury::Jury;
use jury_core::voting::{majority_vote, weighted_majority_vote};
use rand::Rng;

/// Configuration of a task batch.
#[derive(Debug, Clone, Copy)]
pub struct TaskConfig {
    /// Number of decision tasks to run.
    pub tasks: usize,
    /// Probability that a task's latent answer is "yes" (rumor tasks in
    /// the wild are imbalanced; the model is symmetric but the harness
    /// lets experiments vary it).
    pub prior_yes: f64,
}

impl Default for TaskConfig {
    fn default() -> Self {
        Self { tasks: 1000, prior_yes: 0.5 }
    }
}

/// Outcome counts of a task batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskBatchReport {
    /// Tasks answered correctly by plain majority voting.
    pub majority_correct: usize,
    /// Tasks answered correctly by log-odds weighted majority voting.
    pub weighted_correct: usize,
    /// Total tasks run.
    pub tasks: usize,
}

impl TaskBatchReport {
    /// Empirical error rate of plain majority voting.
    pub fn majority_error_rate(&self) -> f64 {
        1.0 - self.majority_correct as f64 / self.tasks as f64
    }

    /// Empirical error rate of weighted majority voting.
    pub fn weighted_error_rate(&self) -> f64 {
        1.0 - self.weighted_correct as f64 / self.tasks as f64
    }
}

/// Runs a batch of simulated decision tasks against `jury`.
///
/// # Panics
/// Panics if `config.tasks` is zero or `prior_yes` is not a probability.
pub fn run_tasks<R: Rng + ?Sized>(
    jury: &Jury,
    config: &TaskConfig,
    rng: &mut R,
) -> TaskBatchReport {
    assert!(config.tasks > 0, "need at least one task");
    assert!((0.0..=1.0).contains(&config.prior_yes), "prior_yes must be a probability");
    let mut majority_correct = 0;
    let mut weighted_correct = 0;
    for _ in 0..config.tasks {
        let truth = rng.gen_bool(config.prior_yes);
        let voting = simulate_voting(jury, truth, rng);
        if majority_vote(&voting).as_bool() == truth {
            majority_correct += 1;
        }
        let weighted = weighted_majority_vote(jury, &voting).expect("voting came from this jury");
        if weighted.as_bool() == truth {
            weighted_correct += 1;
        }
    }
    TaskBatchReport { majority_correct, weighted_correct, tasks: config.tasks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::jer::JerEngine;
    use jury_core::juror::pool_from_rates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jury_of(rates: &[f64]) -> Jury {
        Jury::new(pool_from_rates(rates).unwrap()).unwrap()
    }

    #[test]
    fn report_accounting_is_consistent() {
        let jury = jury_of(&[0.2, 0.3, 0.25]);
        let mut rng = StdRng::seed_from_u64(20);
        let report = run_tasks(&jury, &TaskConfig::default(), &mut rng);
        assert_eq!(report.tasks, 1000);
        assert!(report.majority_correct <= report.tasks);
        assert!(report.weighted_correct <= report.tasks);
        let e = report.majority_error_rate();
        assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn majority_error_tracks_analytic_jer() {
        let jury = jury_of(&[0.2, 0.3, 0.3]);
        let mut rng = StdRng::seed_from_u64(21);
        let report = run_tasks(&jury, &TaskConfig { tasks: 60_000, prior_yes: 0.5 }, &mut rng);
        let analytic = jury.jer(JerEngine::Auto); // 0.174
        assert!(
            (report.majority_error_rate() - analytic).abs() < 0.01,
            "empirical {} vs analytic {analytic}",
            report.majority_error_rate()
        );
    }

    #[test]
    fn weighted_never_much_worse_and_often_better() {
        // Heterogeneous rates: weighted MV should beat plain MV.
        let jury = jury_of(&[0.05, 0.45, 0.45, 0.45, 0.45]);
        let mut rng = StdRng::seed_from_u64(22);
        let report = run_tasks(&jury, &TaskConfig { tasks: 40_000, prior_yes: 0.5 }, &mut rng);
        assert!(
            report.weighted_error_rate() < report.majority_error_rate(),
            "weighted {} vs majority {}",
            report.weighted_error_rate(),
            report.majority_error_rate()
        );
    }

    #[test]
    fn weighted_equals_majority_for_homogeneous_juries() {
        let jury = jury_of(&[0.3; 5]);
        let mut rng = StdRng::seed_from_u64(23);
        let report = run_tasks(&jury, &TaskConfig { tasks: 5_000, prior_yes: 0.5 }, &mut rng);
        assert_eq!(report.majority_correct, report.weighted_correct);
    }

    #[test]
    fn skewed_prior_is_handled() {
        let jury = jury_of(&[0.1, 0.1, 0.1]);
        let mut rng = StdRng::seed_from_u64(24);
        let report = run_tasks(&jury, &TaskConfig { tasks: 10_000, prior_yes: 0.9 }, &mut rng);
        // Error statistics are truth-symmetric: still ≈ analytic JER.
        let analytic = jury.jer(JerEngine::Auto);
        assert!((report.majority_error_rate() - analytic).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_rejected() {
        let jury = jury_of(&[0.3]);
        let mut rng = StdRng::seed_from_u64(25);
        let _ = run_tasks(&jury, &TaskConfig { tasks: 0, prior_yes: 0.5 }, &mut rng);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_prior_rejected() {
        let jury = jury_of(&[0.3]);
        let mut rng = StdRng::seed_from_u64(26);
        let _ = run_tasks(&jury, &TaskConfig { tasks: 10, prior_yes: 1.5 }, &mut rng);
    }
}
