//! Drawing votings from the paper's error model.
//!
//! Given a jury and a latent ground truth, each juror independently votes
//! *against* the truth with probability `ε_i` (Definition 4). The result
//! is a [`Voting`] ready for aggregation.

use jury_core::jury::Jury;
use jury_core::voting::Voting;
use rand::Rng;

/// Simulates one voting of `jury` on a task whose latent answer is
/// `truth`.
pub fn simulate_voting<R: Rng + ?Sized>(jury: &Jury, truth: bool, rng: &mut R) -> Voting {
    let ballots: Vec<bool> = jury
        .members()
        .iter()
        .map(|j| {
            let errs = rng.gen_bool(j.epsilon());
            if errs {
                !truth
            } else {
                truth
            }
        })
        .collect();
    Voting::new(ballots).expect("jury size is odd and non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::juror::{pool_from_rates, ErrorRate, Juror};
    use jury_core::voting::majority_vote;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jury_of(rates: &[f64]) -> Jury {
        Jury::new(pool_from_rates(rates).unwrap()).unwrap()
    }

    #[test]
    fn ballot_count_matches_jury_size() {
        let jury = jury_of(&[0.2, 0.3, 0.4]);
        let mut rng = StdRng::seed_from_u64(1);
        let v = simulate_voting(&jury, true, &mut rng);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn nearly_perfect_jurors_echo_truth() {
        let jury = Jury::new(vec![
            Juror::free(0, ErrorRate::new(1e-12).unwrap()),
            Juror::free(1, ErrorRate::new(1e-12).unwrap()),
            Juror::free(2, ErrorRate::new(1e-12).unwrap()),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for truth in [true, false] {
            for _ in 0..50 {
                let v = simulate_voting(&jury, truth, &mut rng);
                assert!(v.ballots().iter().all(|&b| b == truth));
            }
        }
    }

    #[test]
    fn nearly_adversarial_jurors_invert_truth() {
        let jury = Jury::new(vec![Juror::free(0, ErrorRate::new(1.0 - 1e-12).unwrap())]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let v = simulate_voting(&jury, true, &mut rng);
        assert!(!v.ballots()[0]);
    }

    #[test]
    fn error_frequency_approaches_epsilon() {
        let jury = jury_of(&[0.3]);
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 20_000;
        let mut wrong = 0;
        for _ in 0..trials {
            let v = simulate_voting(&jury, true, &mut rng);
            if !v.ballots()[0] {
                wrong += 1;
            }
        }
        let freq = wrong as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn symmetric_in_truth_value() {
        // Error events depend on ε only, not on which answer is true:
        // majority correctness statistics match across truth values.
        let jury = jury_of(&[0.25, 0.25, 0.25]);
        let trials = 10_000;
        let mut wrong = [0usize; 2];
        for (t, truth) in [true, false].into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..trials {
                let v = simulate_voting(&jury, truth, &mut rng);
                if majority_vote(&v).as_bool() != truth {
                    wrong[t] += 1;
                }
            }
        }
        // Same seed, mirrored process: identical counts.
        assert_eq!(wrong[0], wrong[1]);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let jury = jury_of(&[0.4, 0.1, 0.6, 0.2, 0.35]);
        let a = simulate_voting(&jury, true, &mut StdRng::seed_from_u64(9));
        let b = simulate_voting(&jury, true, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
