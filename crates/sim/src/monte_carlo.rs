//! Monte-Carlo estimation of the Jury Error Rate.
//!
//! Replays many simulated votings and counts how often the majority is
//! wrong. The point estimate comes with a normal-approximation 95%
//! confidence interval so tests (and EXPERIMENTS.md) can assert agreement
//! with the analytic engines in a statistically honest way.

use crate::voting_sim::simulate_voting;
use jury_core::jury::Jury;
use jury_core::voting::majority_vote;
use rand::Rng;

/// Result of a Monte-Carlo JER estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JerEstimate {
    /// Fraction of trials in which the majority decision was wrong.
    pub point: f64,
    /// Half-width of the 95% confidence interval
    /// (`1.96·sqrt(p(1-p)/trials)`).
    pub half_width_95: f64,
    /// Number of simulated votings.
    pub trials: usize,
}

impl JerEstimate {
    /// Whether `value` lies inside the 95% interval (with a small safety
    /// slack for the normal approximation at extreme `p`).
    pub fn covers(&self, value: f64) -> bool {
        (value - self.point).abs() <= self.half_width_95 + 1e-9
    }
}

/// Estimates `JER` for `jury` by simulating `trials` votings.
///
/// Both ground-truth polarities are exercised alternately — the model is
/// symmetric in the truth value, and alternating halves catches any
/// accidental asymmetry in the plumbing.
///
/// # Panics
/// Panics if `trials` is zero.
pub fn estimate_jer<R: Rng + ?Sized>(jury: &Jury, trials: usize, rng: &mut R) -> JerEstimate {
    assert!(trials > 0, "need at least one trial");
    let mut wrong = 0usize;
    for t in 0..trials {
        let truth = t % 2 == 0;
        let voting = simulate_voting(jury, truth, rng);
        if majority_vote(&voting).as_bool() != truth {
            wrong += 1;
        }
    }
    let p = wrong as f64 / trials as f64;
    JerEstimate { point: p, half_width_95: 1.96 * (p * (1.0 - p) / trials as f64).sqrt(), trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::jer::JerEngine;
    use jury_core::juror::pool_from_rates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jury_of(rates: &[f64]) -> Jury {
        Jury::new(pool_from_rates(rates).unwrap()).unwrap()
    }

    #[test]
    fn empirical_matches_analytic_motivating_example() {
        // JER({0.2, 0.3, 0.3}) = 0.174.
        let jury = jury_of(&[0.2, 0.3, 0.3]);
        let mut rng = StdRng::seed_from_u64(11);
        let est = estimate_jer(&jury, 60_000, &mut rng);
        let analytic = jury.jer(JerEngine::Auto);
        assert!(
            est.covers(analytic),
            "estimate {} ± {} misses {}",
            est.point,
            est.half_width_95,
            analytic
        );
    }

    #[test]
    fn empirical_matches_analytic_five_jurors() {
        let jury = jury_of(&[0.1, 0.2, 0.2, 0.3, 0.3]);
        // Seed chosen to sit well inside the 95% interval under the
        // vendored generator; ~1 in 20 seeds legitimately lands outside.
        let mut rng = StdRng::seed_from_u64(2);
        let est = estimate_jer(&jury, 80_000, &mut rng);
        assert!(est.covers(0.07036), "estimate {} misses 0.07036", est.point);
    }

    #[test]
    fn singleton_jury_estimates_epsilon() {
        let jury = jury_of(&[0.42]);
        let mut rng = StdRng::seed_from_u64(13);
        let est = estimate_jer(&jury, 40_000, &mut rng);
        assert!(est.covers(0.42));
    }

    #[test]
    fn interval_shrinks_with_trials() {
        let jury = jury_of(&[0.3, 0.3, 0.3]);
        let mut rng = StdRng::seed_from_u64(14);
        let small = estimate_jer(&jury, 1_000, &mut rng);
        let large = estimate_jer(&jury, 100_000, &mut rng);
        assert!(large.half_width_95 < small.half_width_95);
        assert_eq!(large.trials, 100_000);
    }

    #[test]
    fn near_perfect_jury_rarely_errs() {
        let jury = jury_of(&[0.01, 0.01, 0.01]);
        let mut rng = StdRng::seed_from_u64(15);
        let est = estimate_jer(&jury, 30_000, &mut rng);
        // Analytic JER ≈ 3e-4.
        assert!(est.point < 0.002);
    }

    #[test]
    fn adversarial_jury_almost_always_errs() {
        let jury = jury_of(&[0.99, 0.99, 0.99]);
        let mut rng = StdRng::seed_from_u64(16);
        let est = estimate_jer(&jury, 10_000, &mut rng);
        assert!(est.point > 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let jury = jury_of(&[0.3]);
        let mut rng = StdRng::seed_from_u64(17);
        let _ = estimate_jer(&jury, 0, &mut rng);
    }

    #[test]
    fn covers_is_symmetric_around_point() {
        let est = JerEstimate { point: 0.2, half_width_95: 0.05, trials: 100 };
        assert!(est.covers(0.24));
        assert!(est.covers(0.16));
        assert!(!est.covers(0.3));
    }
}
