//! Voting simulation and Monte-Carlo validation.
//!
//! The paper's model assumes each juror errs independently with their
//! individual error rate. This crate *simulates* that process: it draws
//! votings, aggregates them by (weighted) majority voting, and estimates
//! empirical jury error rates with confidence intervals — the end-to-end
//! check that the analytic JER engines and the selection algorithms talk
//! about the same quantity.
//!
//! * [`voting_sim`] — draw a single voting for a jury given ground truth;
//! * [`monte_carlo`] — repeat many times, estimate `Pr(majority wrong)`;
//! * [`task`] — batches of decision-making tasks (the micro-blog
//!   questions of §1) answered by a fixed jury.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod monte_carlo;
pub mod task;
pub mod voting_sim;

pub use monte_carlo::{estimate_jer, JerEstimate};
pub use task::{run_tasks, TaskBatchReport, TaskConfig};
pub use voting_sim::simulate_voting;
