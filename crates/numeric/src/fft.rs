//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The Convolution-Based Algorithm (CBA, Algorithm 2 of the paper) merges
//! the carelessness distributions of two half-juries by polynomial
//! multiplication "via FFT". This module provides exactly that primitive:
//! an in-place, power-of-two, decimation-in-time transform with
//! precomputed twiddle factors.
//!
//! Two entry points are offered:
//!
//! * [`fft_forward`] / [`fft_inverse`] — convenience one-shot transforms;
//! * [`Fft`] — a plan object that caches the bit-reversal permutation and
//!   twiddle table so repeated transforms of the same size (the common case
//!   inside CBA's recursion and the benchmark loops) pay the trigonometry
//!   only once.

use crate::complex::Complex64;

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and the twiddle
/// factors for every butterfly stage; [`Fft::forward`] and [`Fft::inverse`]
/// then run without any trigonometric calls.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Bit-reversed index for every position (identity for n <= 1).
    rev: Vec<u32>,
    /// Twiddles for the forward transform, stage-major: for stage length
    /// `len = 2,4,...,n` the slice `[len/2 - 1 .. len - 1)` holds
    /// `e^{-2πi·j/len}` for `j = 0..len/2`.
    twiddles: Vec<Complex64>,
}

impl Fft {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if n == 1 {
            rev[0] = 0;
        }
        // Total twiddle count: 1 + 2 + 4 + ... + n/2 = n - 1.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let step = -2.0 * std::f64::consts::PI / len as f64;
            for j in 0..len / 2 {
                twiddles.push(Complex64::cis(step * j as f64));
            }
            len <<= 1;
        }
        Self { n, rev, twiddles }
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the plan length is zero (never true in practice;
    /// provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `X[k] = Σ_j x[j]·e^{-2πi·jk/n}`.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT including the `1/n` normalisation, so that
    /// `inverse(forward(x)) == x` up to rounding.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, true);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }

    fn transform(&self, data: &mut [Complex64], invert: bool) {
        assert_eq!(data.len(), self.n, "buffer length must equal plan length");
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies with precomputed twiddles.
        let mut len = 2;
        let mut tw_base = 0;
        while len <= n {
            let half = len / 2;
            let mut start = 0;
            while start < n {
                for j in 0..half {
                    let w = if invert {
                        self.twiddles[tw_base + j].conj()
                    } else {
                        self.twiddles[tw_base + j]
                    };
                    let u = data[start + j];
                    let v = data[start + j + half] * w;
                    data[start + j] = u + v;
                    data[start + j + half] = u - v;
                }
                start += len;
            }
            tw_base += half;
            len <<= 1;
        }
    }
}

/// One-shot forward FFT. Prefer [`Fft`] when transforming many buffers of
/// the same size.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_forward(data: &mut [Complex64]) {
    Fft::new(data.len()).forward(data);
}

/// One-shot inverse FFT (normalised). Prefer [`Fft`] for repeated use.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_inverse(data: &mut [Complex64]) {
    Fft::new(data.len()).inverse(data);
}

/// Smallest power of two `>= n` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A cache of [`Fft`] plans keyed by transform length.
///
/// Plan construction costs `O(n)` trigonometric calls; repeated
/// transforms of recurring sizes (convolution merges inside CBA, batched
/// service solves) should build each plan once and reuse it. The cache
/// holds one plan per distinct power-of-two size, sorted for binary
/// lookup.
#[derive(Debug, Clone, Default)]
pub struct FftPlanCache {
    plans: Vec<Fft>,
}

impl FftPlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the plan for size `n`, building and caching it on first
    /// use.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn plan(&mut self, n: usize) -> &Fft {
        match self.plans.binary_search_by_key(&n, Fft::len) {
            Ok(i) => &self.plans[i],
            Err(i) => {
                self.plans.insert(i, Fft::new(n));
                &self.plans[i]
            }
        }
    }

    /// Number of distinct plan sizes cached.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` when no plans have been built yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    /// Quadratic-time reference DFT used to validate the fast transform.
    fn dft_reference(input: &[Complex64]) -> Vec<Complex64> {
        let n = input.len();
        let mut out = vec![Complex64::ZERO; n];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc += x * Complex64::cis(angle);
            }
            *o = acc;
        }
        out
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                approx_eq(x.re, y.re, tol) && approx_eq(x.im, y.im, tol),
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn size_one_is_identity() {
        let mut data = [Complex64::new(3.5, -1.0)];
        fft_forward(&mut data);
        assert_eq!(data[0], Complex64::new(3.5, -1.0));
        fft_inverse(&mut data);
        assert_eq!(data[0], Complex64::new(3.5, -1.0));
    }

    #[test]
    fn size_two_butterfly() {
        let mut data = [Complex64::from_real(1.0), Complex64::from_real(2.0)];
        fft_forward(&mut data);
        assert!(approx_eq(data[0].re, 3.0, 1e-12));
        assert!(approx_eq(data[1].re, -1.0, 1e-12));
    }

    #[test]
    fn matches_reference_dft_across_sizes() {
        for bits in 0..=8 {
            let n = 1usize << bits;
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let expected = dft_reference(&input);
            let mut data = input.clone();
            fft_forward(&mut data);
            assert_close(&data, &expected, 1e-8 * n as f64);
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i * i % 97) as f64 / 97.0, (i % 13) as f64 / 13.0))
            .collect();
        let mut data = input.clone();
        let plan = Fft::new(n);
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 64;
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        fft_forward(&mut data);
        for z in &data {
            assert!(approx_eq(z.re, 1.0, 1e-12));
            assert!(approx_eq(z.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 32;
        let mut data = vec![Complex64::ONE; n];
        fft_forward(&mut data);
        assert!(approx_eq(data[0].re, n as f64, 1e-10));
        for z in &data[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let n = 128;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new((i as f64).sin(), 0.0)).collect();
        let b: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(0.0, (i as f64 * 0.5).cos())).collect();
        let plan = Fft::new(n);

        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut sum);

        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let separate: Vec<Complex64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&sum, &separate, 1e-9);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 512;
        let input: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(((i * 31) % 17) as f64, 0.0)).collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        fft_forward(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!(approx_eq(time_energy, freq_energy, 1e-6 * time_energy.max(1.0)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn rejects_mismatched_buffer() {
        let plan = Fft::new(8);
        let mut data = vec![Complex64::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }
}
