//! Minimal double-precision complex arithmetic.
//!
//! The FFT in [`crate::fft`] only needs addition, subtraction,
//! multiplication, conjugation and scaling, so instead of pulling in a
//! numerics dependency we define a small POD type. The type is `Copy` and
//! 16 bytes, so vectors of it behave like flat `f64` buffers.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit-modulus complex number at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Self { re: cos, im: sin }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self { re: self.re * k, im: self.im * k }
    }

    /// Fused multiply-add: `self * b + c`, saving one rounding per component
    /// where the target supports FMA.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self {
            re: self.re.mul_add(b.re, (-self.im).mul_add(b.im, c.re)),
            im: self.re.mul_add(b.im, self.im.mul_add(b.re, c.im)),
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn construction_and_constants() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.re, 3.0);
        assert_eq!(z.im, -4.0);
        assert_eq!(Complex64::ZERO + z, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(Complex64::I * Complex64::I, Complex64::from_real(-1.0));
    }

    #[test]
    fn modulus() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex64::new(1.5, -2.5);
        let n = z * z.conj();
        assert!(approx_eq(n.re, z.norm_sqr(), 1e-12));
        assert!(approx_eq(n.im, 0.0, 1e-12));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!(approx_eq(z.abs(), 1.0, 1e-12), "theta={theta}");
        }
    }

    #[test]
    fn cis_angle_addition() {
        let a = Complex64::cis(0.7);
        let b = Complex64::cis(1.1);
        let ab = a * b;
        let direct = Complex64::cis(1.8);
        assert!(approx_eq(ab.re, direct.re, 1e-12));
        assert!(approx_eq(ab.im, direct.im, 1e-12));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 4.0);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
        let mut d = a;
        d *= b;
        assert_eq!(d, a * b);
    }

    #[test]
    fn mul_matches_schoolbook() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        let p = a * b;
        assert!(approx_eq(p.re, 11.0, 1e-12));
        assert!(approx_eq(p.im, 2.0, 1e-12));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(0.3, 0.7);
        let b = Complex64::new(-1.2, 0.5);
        let c = Complex64::new(2.0, -0.25);
        let fused = a.mul_add(b, c);
        let plain = a * b + c;
        assert!(approx_eq(fused.re, plain.re, 1e-12));
        assert!(approx_eq(fused.im, plain.im, 1e-12));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(2.0, -6.0);
        assert_eq!(z * 0.5, Complex64::new(1.0, -3.0));
        assert_eq!(z / 2.0, Complex64::new(1.0, -3.0));
        assert_eq!(Complex64::from(4.0), Complex64::new(4.0, 0.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
    }
}
