//! Normal-family approximations to the Poisson-Binomial tail.
//!
//! The paper computes JER exactly (DP or CBA). The statistics literature
//! also uses closed-form approximations for `Pr(C ≥ t)` that cost `O(n)`
//! regardless of the threshold — useful as *screening* estimates and as
//! an accuracy/speed ablation against the exact engines:
//!
//! * [`normal_tail`] — central limit theorem with continuity correction:
//!   `Pr(C ≥ t) ≈ 1 − Φ((t − 0.5 − μ)/σ)`;
//! * [`refined_normal_tail`] — the Cornish–Fisher-style *refined normal
//!   approximation* (Volkova 1996), which adds a skewness correction and
//!   is markedly better for small `n` or asymmetric rates.
//!
//! Neither is a bound: errors go both ways, so they must not replace the
//! Lemma-2 bound in pruning. The `approximation_accuracy` test and the
//! `jer_engines` bench quantify the trade-off.

use crate::poibin::PoiBin;

/// Standard normal CDF via the complementary error function.
///
/// `erfc` uses the Abramowitz–Stegun 7.1.26 rational approximation with
/// absolute error below 1.5e-7 — ample for screening estimates whose
/// model error dominates.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal density.
#[inline]
pub fn standard_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Complementary error function (A&S 7.1.26, |error| < 1.5e-7).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let poly = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        poly
    } else {
        2.0 - poly
    }
}

/// Moments of the carelessness count for a rate vector.
fn moments(eps: &[f64]) -> (f64, f64, f64) {
    let mu: f64 = eps.iter().sum();
    let var: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
    // Third central moment: Σ ε(1-ε)(1-2ε).
    let m3: f64 = eps.iter().map(|e| e * (1.0 - e) * (1.0 - 2.0 * e)).sum();
    (mu, var, m3)
}

/// CLT tail approximation with continuity correction.
///
/// Degenerate rate vectors (σ = 0) fall back to the deterministic count.
pub fn normal_tail(eps: &[f64], threshold: usize) -> f64 {
    if threshold == 0 {
        return 1.0;
    }
    if threshold > eps.len() {
        return 0.0;
    }
    let (mu, var, _) = moments(eps);
    if var <= 0.0 {
        // All rates are 0 or 1: C = μ almost surely.
        return if (threshold as f64) <= mu { 1.0 } else { 0.0 };
    }
    let x = (threshold as f64 - 0.5 - mu) / var.sqrt();
    (1.0 - standard_normal_cdf(x)).clamp(0.0, 1.0)
}

/// Refined normal approximation (normal + skewness correction):
///
/// ```text
/// Pr(C ≥ t) ≈ 1 − G((t − 0.5 − μ)/σ),
/// G(x) = Φ(x) + γ·(1 − x²)·φ(x)/6,   γ = m₃/σ³
/// ```
pub fn refined_normal_tail(eps: &[f64], threshold: usize) -> f64 {
    if threshold == 0 {
        return 1.0;
    }
    if threshold > eps.len() {
        return 0.0;
    }
    let (mu, var, m3) = moments(eps);
    if var <= 0.0 {
        return if (threshold as f64) <= mu { 1.0 } else { 0.0 };
    }
    let sigma = var.sqrt();
    let gamma = m3 / (sigma * var);
    let x = (threshold as f64 - 0.5 - mu) / sigma;
    let g = standard_normal_cdf(x) + gamma * (1.0 - x * x) * standard_normal_pdf(x) / 6.0;
    (1.0 - g).clamp(0.0, 1.0)
}

/// Maximum absolute tail-approximation error over all thresholds —
/// convenience for accuracy studies.
pub fn max_abs_error(eps: &[f64], approx: impl Fn(&[f64], usize) -> f64) -> f64 {
    let exact = PoiBin::from_error_rates(eps);
    (0..=eps.len() + 1).map(|t| (approx(eps, t) - exact.tail(t)).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.0) - 0.8413447).abs() < 1e-6);
        assert!((standard_normal_cdf(-1.0) - 0.1586553).abs() < 1e-6);
        assert!((standard_normal_cdf(1.959964) - 0.975).abs() < 1e-6);
        assert!(standard_normal_cdf(8.0) > 1.0 - 1e-14);
        assert!(standard_normal_cdf(-8.0) < 1e-14);
    }

    #[test]
    fn pdf_is_symmetric_and_normalised_at_zero() {
        assert!((standard_normal_pdf(0.0) - 0.3989423).abs() < 1e-6);
        assert!((standard_normal_pdf(1.3) - standard_normal_pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn tails_respect_trivial_thresholds() {
        let eps = [0.2, 0.4, 0.6];
        for f in [normal_tail, refined_normal_tail] {
            assert_eq!(f(&eps, 0), 1.0);
            assert_eq!(f(&eps, 4), 0.0);
        }
    }

    #[test]
    fn approximations_are_close_on_moderate_juries() {
        let eps: Vec<f64> = (0..31).map(|i| 0.1 + 0.02 * (i % 20) as f64).collect();
        let na = max_abs_error(&eps, normal_tail);
        let rna = max_abs_error(&eps, refined_normal_tail);
        assert!(na < 0.02, "normal error {na}");
        assert!(rna < 0.005, "refined error {rna}");
    }

    #[test]
    fn refinement_helps_on_skewed_rates() {
        // Strongly skewed: small rates make C right-skewed where the
        // plain CLT is weakest.
        let eps = vec![0.08; 25];
        let na = max_abs_error(&eps, normal_tail);
        let rna = max_abs_error(&eps, refined_normal_tail);
        assert!(rna < na, "refined {rna} should beat normal {na}");
    }

    #[test]
    fn accuracy_improves_with_n() {
        let err_at = |n: usize| {
            let eps = vec![0.3; n];
            max_abs_error(&eps, normal_tail)
        };
        assert!(err_at(200) < err_at(20));
    }

    #[test]
    fn degenerate_rates_fall_back_to_point_mass() {
        let eps = [1.0, 1.0, 0.0];
        for f in [normal_tail, refined_normal_tail] {
            assert_eq!(f(&eps, 2), 1.0); // C = 2 surely
            assert_eq!(f(&eps, 3), 0.0);
        }
    }

    #[test]
    fn outputs_are_probabilities() {
        let eps: Vec<f64> = (0..40).map(|i| ((i * 13) % 97) as f64 / 100.0 + 0.01).collect();
        for t in 0..=eps.len() {
            for f in [normal_tail, refined_normal_tail] {
                let v = f(&eps, t);
                assert!((0.0..=1.0).contains(&v), "t={t}: {v}");
            }
        }
    }
}
