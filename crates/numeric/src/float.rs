//! Floating-point comparison and clamping helpers.
//!
//! Shared by tests and by the probability plumbing (pmf entries must stay
//! inside `[0, 1]` despite round-off).

/// Absolute-difference comparison: `|a - b| <= tol`, treating two NaNs or
/// two identical infinities as equal.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true; // covers infinities of the same sign and exact hits
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= tol
}

/// Relative comparison: `|a - b| <= rel_tol * max(|a|, |b|)`, falling back
/// to an absolute tolerance near zero.
#[inline]
pub fn approx_eq_rel(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    if scale < 1e-300 {
        return (a - b).abs() <= rel_tol;
    }
    (a - b).abs() <= rel_tol * scale
}

/// Clamps a value into the closed unit interval `[0, 1]`.
#[inline]
pub fn clamp_unit(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

/// Clamps a value into the *open* unit interval `(0, 1)` by pulling it away
/// from the endpoints by `margin`. Used when normalised ranking scores map
/// onto individual error rates, which Definition 4 requires to be strictly
/// inside `(0, 1)`.
///
/// # Panics
/// Panics if `margin` is not in `(0, 0.5)`.
#[inline]
pub fn clamp_open_unit(p: f64, margin: f64) -> f64 {
    assert!(margin > 0.0 && margin < 0.5, "margin must be in (0, 0.5), got {margin}");
    p.clamp(margin, 1.0 - margin)
}

/// `true` if `p` is a valid probability (finite and within `[0, 1]`).
#[inline]
pub fn is_probability(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

/// `true` if `p` is strictly inside `(0, 1)` — a valid individual error
/// rate per Definition 4 of the paper.
#[inline]
pub fn is_open_probability(p: f64) -> bool {
    p.is_finite() && p > 0.0 && p < 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq(f64::NAN, f64::NAN, 1e-9));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e9));
    }

    #[test]
    fn approx_eq_rel_scales() {
        assert!(approx_eq_rel(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq_rel(1.0, 2.0, 1e-9));
        assert!(approx_eq_rel(0.0, 0.0, 1e-15));
        assert!(approx_eq_rel(1e-320, -1e-320, 1e-9)); // near-zero fallback
    }

    #[test]
    fn clamp_unit_bounds() {
        assert_eq!(clamp_unit(-0.5), 0.0);
        assert_eq!(clamp_unit(0.5), 0.5);
        assert_eq!(clamp_unit(1.5), 1.0);
    }

    #[test]
    fn clamp_open_unit_pulls_endpoints_in() {
        assert_eq!(clamp_open_unit(0.0, 1e-6), 1e-6);
        assert_eq!(clamp_open_unit(1.0, 1e-6), 1.0 - 1e-6);
        assert_eq!(clamp_open_unit(0.3, 1e-6), 0.3);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn clamp_open_unit_rejects_bad_margin() {
        let _ = clamp_open_unit(0.5, 0.7);
    }

    #[test]
    fn probability_predicates() {
        assert!(is_probability(0.0));
        assert!(is_probability(1.0));
        assert!(!is_probability(-0.1));
        assert!(!is_probability(f64::NAN));
        assert!(is_open_probability(0.5));
        assert!(!is_open_probability(0.0));
        assert!(!is_open_probability(1.0));
    }
}
