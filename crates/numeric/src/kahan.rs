//! Compensated (Kahan–Babuška) summation.
//!
//! Jury Error Rate is a sum over up to `2^n` minority terms (naive engine)
//! or a tail sum over a pmf of length `n+1`. Plain left-to-right `f64`
//! addition loses up to `n` ulps; Neumaier's variant of Kahan summation
//! keeps the error independent of the number of terms, which matters when
//! the experiments compare engines to 1e-12.

/// Running compensated sum (Neumaier variant).
///
/// ```
/// use jury_numeric::KahanSum;
/// let mut s = KahanSum::new();
/// for _ in 0..10 { s.add(0.1); }
/// assert!((s.value() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// A sum starting at zero.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// A sum starting at `initial`.
    #[inline]
    pub fn with_initial(initial: f64) -> Self {
        Self { sum: initial, compensation: 0.0 }
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Sums a slice with compensation. Convenience wrapper over [`KahanSum`].
#[inline]
pub fn kahan_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
        assert_eq!(kahan_sum(&[]), 0.0);
    }

    #[test]
    fn exact_on_representable_values() {
        assert_eq!(kahan_sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn tenth_times_ten_is_one() {
        let s = kahan_sum(&[0.1; 10]);
        assert!((s - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn survives_catastrophic_cancellation() {
        // Naive summation of [1e16, 1.0, -1e16] gives 0.0; compensated gives 1.0.
        let s = kahan_sum(&[1e16, 1.0, -1e16]);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn neumaier_handles_large_late_terms() {
        // Classic case where plain Kahan fails but Neumaier succeeds:
        // the large value arrives *after* the small ones.
        let s = kahan_sum(&[1.0, 1e100, 1.0, -1e100]);
        assert_eq!(s, 2.0);
    }

    #[test]
    fn beats_naive_on_long_small_terms() {
        let n = 1_000_000;
        let term = 1e-6;
        let naive: f64 = (0..n).map(|_| term).sum();
        let comp = (0..n).map(|_| term).collect::<KahanSum>().value();
        let exact = 1.0;
        assert!((comp - exact).abs() <= (naive - exact).abs());
        assert!((comp - exact).abs() < 1e-12);
    }

    #[test]
    fn with_initial_offsets() {
        let mut s = KahanSum::with_initial(5.0);
        s.add(2.5);
        assert_eq!(s.value(), 7.5);
    }

    #[test]
    fn extend_and_collect() {
        let mut s = KahanSum::new();
        s.extend([1.0, 2.0]);
        assert_eq!(s.value(), 3.0);
        let c: KahanSum = [0.5, 0.25, 0.25].into_iter().collect();
        assert_eq!(c.value(), 1.0);
    }
}
