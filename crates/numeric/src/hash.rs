//! Shared non-cryptographic mixing primitives.
//!
//! Content-addressed machinery across the workspace — the pool
//! fingerprints in `jury-core` and pmf summaries like
//! [`PoiBin::content_hash`](crate::poibin::PoiBin::content_hash) —
//! hashes structured 64-bit inputs (IEEE-754 bits, lengths) into
//! uniform accumulator-friendly words. They all share one finaliser so
//! the primitive can never silently diverge between consumers.

/// The SplitMix64 finaliser: a strong, stable (no `RandomState`,
/// identical across runs and platforms) 64-bit mix — the standard
/// choice for turning structured input into uniform bits.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_stable_and_injective_on_small_inputs() {
        // Reference value pins the constants against accidental edits.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        let outs: Vec<u64> = (0u64..1000).map(splitmix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len(), "no collisions on consecutive inputs");
    }
}
