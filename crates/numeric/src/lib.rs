//! Numeric substrate for the jury-selection workspace.
//!
//! This crate implements, from scratch, the numerical machinery the paper
//! "Whom to Ask? Jury Selection for Decision Making Tasks on Micro-blog
//! Services" (VLDB 2012) relies on:
//!
//! * [`complex`] — minimal `f64` complex arithmetic used by the FFT.
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT and inverse FFT.
//! * [`conv`] — polynomial/probability-vector convolution, both direct
//!   `O(n·m)` and FFT-based `O(n log n)`, with an adaptive dispatcher.
//! * [`poibin`] — the Poisson-Binomial distribution of the *carelessness*
//!   count `C` (number of jurors voting incorrectly), with naive,
//!   dynamic-programming and divide-&-conquer (CBA) constructors.
//! * [`bounds`] — tail lower/upper bounds: the Paley–Zygmund bound of the
//!   paper's Lemma 2 plus Cantelli and Chernoff bounds used for ablations.
//! * [`approx`] — `O(n)` normal and refined-normal tail approximations
//!   (screening estimates; an accuracy/speed ablation vs the exact
//!   engines).
//! * [`kahan`] — compensated summation keeping long probability sums exact
//!   to within a few ulps.
//! * [`float`] — approximate-comparison helpers shared by tests.
//!
//! Everything is deterministic and allocation-conscious: the hot paths
//! (`PoiBin` construction, convolution) reuse buffers where practical and
//! avoid heap traffic in inner loops.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approx;
pub mod bounds;
pub mod complex;
pub mod conv;
pub mod fft;
pub mod float;
pub mod hash;
pub mod kahan;
pub mod poibin;

pub use approx::{normal_tail, refined_normal_tail};
pub use bounds::{cantelli_upper_bound, chernoff_upper_bound, paley_zygmund_lower_bound};
pub use complex::Complex64;
pub use conv::{convolve, convolve_direct, convolve_fft, convolve_into, ConvScratch, ConvStrategy};
pub use fft::{fft_forward, fft_inverse, Fft, FftPlanCache};
pub use kahan::KahanSum;
pub use poibin::{tail_probability_dp_with, PoiBin, TailScratch};
