//! The Poisson-Binomial distribution of the carelessness count.
//!
//! For a jury `J_n` with independent individual error rates
//! `ε_1, …, ε_n`, the number of jurors voting incorrectly — the paper's
//! *Carelessness* `C` (Definition 5) — follows the Poisson-Binomial
//! distribution. Jury Error Rate (Definition 6) is its upper tail
//! `Pr(C ≥ (n+1)/2)`.
//!
//! [`PoiBin`] materialises the full pmf and exposes three constructors that
//! mirror the paper's §3.1:
//!
//! * [`PoiBin::from_error_rates_naive`] — Definition-6 enumeration over all
//!   `2^n` juror outcome patterns; exponential, only for validation;
//! * [`PoiBin::from_error_rates_dp`] — Lemma-1 style sequential updates
//!   (`O(n²)` time over the whole pmf, `O(n)` working space);
//! * [`PoiBin::from_error_rates_cba`] — Algorithm 2: divide & conquer
//!   merging by (FFT-accelerated) polynomial convolution, `O(n log² n)`
//!   in the recursion or `O(n log n)` per merge level with balanced splits.
//!
//! The tail-only recurrence of the paper's Algorithm 1, which never builds
//! the pmf and uses two rolling vectors, lives in [`tail_probability_dp`].
//!
//! # Factor deconvolution and its error analysis
//!
//! A Poisson-Binomial pmf is the coefficient vector of the product
//! polynomial `∏_i ((1-ε_i) + ε_i·x)`. [`PoiBin::remove_factor`] divides
//! one linear factor `(q + p·x)` back *out* of that product by synthetic
//! (long) division, and [`PoiBin::replace_factor`] chains a removal with a
//! [`PoiBin::push`] — the `O(n)` repair primitive that lets a serving
//! layer patch cached prefix distributions after a juror update instead of
//! re-convolving from scratch.
//!
//! Division runs in whichever direction is contracting:
//!
//! * `p < ½` — forward recurrence `r_k = (f_k − p·r_{k−1}) / q`, which
//!   propagates previous error scaled by `ρ = p/q < 1`;
//! * `p > ½` — backward recurrence `r_{k−1} = (f_k − q·r_k) / p`, which
//!   propagates error scaled by `ρ = q/p < 1`.
//!
//! Each step contributes `O(ε_mach)` local rounding error, and past error
//! decays geometrically by `ρ`, so the accumulated absolute error per
//! coefficient is bounded by roughly `ε_mach / (1 − ρ)`. At the
//! [`DECONV_GUARD_BAND`] boundary (`|p − ½| = 1/32`) that amplification
//! factor is `1/(1−ρ) ≈ 8.5`, keeping repaired pmfs within a few dozen
//! ulps of a fresh construction. Inside the band `ρ → 1`: the divisor's
//! root approaches the unit circle (`x = −1` for `p = ½` — the
//! ½-mass-degenerate factor), error stops decaying and the division is
//! abandoned *a priori* with [`DeconvError::IllConditioned`]. As a second
//! line of defence the result is validated after the fact — coefficients
//! must be probabilities within [`DECONV_TOL`], their compensated sum must
//! be `1 ± `[`DECONV_TOL`], and the division residual (which is exactly
//! zero when the factor truly divides the polynomial) must vanish within
//! the same tolerance — otherwise [`DeconvError::ErrorBudgetExceeded`]
//! tells the caller to rebuild. Removal is therefore *numerically* (never
//! bit-) equal to building the distribution without that factor; callers
//! that need exactness must rebuild.

use crate::conv::{convolve_into, convolve_with, ConvScratch, ConvStrategy};
use crate::float::is_probability;
use crate::kahan::KahanSum;
use std::fmt;

/// Half-width of the success-probability band around `½` inside which
/// [`PoiBin::remove_factor`] refuses to divide: the factor's root is too
/// close to the unit circle for the synthetic division to contract (see
/// the module-level error analysis).
pub const DECONV_GUARD_BAND: f64 = 1.0 / 32.0;

/// Post-division validation tolerance for [`PoiBin::remove_factor`]: the
/// compensated coefficient sum must be `1` within this bound, every
/// coefficient must lie in `[−tol, 1+tol]` and the division residual must
/// vanish within it — otherwise the accumulated error budget is exceeded
/// and the caller must rebuild.
pub const DECONV_TOL: f64 = 1e-9;

/// Why a [`PoiBin::remove_factor`] / [`PoiBin::replace_factor`] call
/// declined to deconvolve. Callers fall back to rebuilding the
/// distribution from its error rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeconvError {
    /// The factor's success probability sits within
    /// [`DECONV_GUARD_BAND`] of `½`, where the division does not
    /// contract. The distribution is left untouched.
    IllConditioned {
        /// The offending success probability.
        p: f64,
    },
    /// The divided-out coefficients failed validation (sum, range or
    /// residual beyond [`DECONV_TOL`]) — either accumulated rounding or a
    /// factor that was never part of the distribution. The distribution
    /// has been reset and must be rebuilt.
    ErrorBudgetExceeded {
        /// The largest validation defect observed.
        defect: f64,
    },
}

impl fmt::Display for DeconvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IllConditioned { p } => {
                write!(f, "factor p={p} is within {DECONV_GUARD_BAND} of 1/2; deconvolution would not contract")
            }
            Self::ErrorBudgetExceeded { defect } => {
                write!(f, "deconvolution validation defect {defect} exceeds tolerance {DECONV_TOL}")
            }
        }
    }
}

impl std::error::Error for DeconvError {}

/// Number of jurors below which CBA recursion bottoms out into the direct
/// sequential DP instead of splitting further. Splitting 1-element juries
/// all the way down (as the paper's pseudo-code does) is wasteful; a small
/// base case keeps the recursion shallow without changing the result.
pub const CBA_BASE_CASE: usize = 16;

/// A materialised Poisson-Binomial distribution.
///
/// Invariants maintained by every constructor:
/// * `pmf.len() == n + 1` where `n` is the number of success probabilities;
/// * every entry is a probability in `[0, 1]`;
/// * entries sum to 1 within a few hundred ulps.
#[derive(Debug, Clone, PartialEq)]
pub struct PoiBin {
    pmf: Vec<f64>,
}

impl Default for PoiBin {
    /// Same as [`PoiBin::empty`]: the point mass at zero trials.
    fn default() -> Self {
        Self::empty()
    }
}

impl PoiBin {
    /// Distribution of a sum of zero Bernoullis: the point mass at 0.
    pub fn empty() -> Self {
        Self { pmf: vec![1.0] }
    }

    /// Builds from success probabilities using the adaptive default:
    /// sequential DP for short inputs, CBA beyond [`CBA_BASE_CASE`]-sized
    /// juries where the divide & conquer tree starts to pay off.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]` or not finite.
    pub fn from_error_rates(eps: &[f64]) -> Self {
        if eps.len() <= 2 * CBA_BASE_CASE {
            Self::from_error_rates_dp(eps)
        } else {
            Self::from_error_rates_cba(eps)
        }
    }

    /// Exponential-time reference construction: enumerates all `2^n`
    /// outcome patterns and accumulates their probabilities per count.
    ///
    /// This is the "naive method" of §2.1.2 used in the paper's motivating
    /// example; it exists to validate the fast engines.
    ///
    /// # Panics
    /// Panics on invalid probabilities or if `eps.len() > 25` (the cost is
    /// `2^n` and anything larger is a bug in the caller).
    pub fn from_error_rates_naive(eps: &[f64]) -> Self {
        validate(eps);
        let n = eps.len();
        assert!(n <= 25, "naive enumeration is exponential; {n} jurors is too many");
        let mut acc = vec![KahanSum::new(); n + 1];
        for mask in 0u32..(1u32 << n) {
            let mut p = 1.0;
            for (i, &e) in eps.iter().enumerate() {
                p *= if mask >> i & 1 == 1 { e } else { 1.0 - e };
            }
            acc[mask.count_ones() as usize].add(p);
        }
        let pmf = acc.into_iter().map(|s| s.value().clamp(0.0, 1.0)).collect();
        Self { pmf }
    }

    /// Sequential dynamic-programming construction.
    ///
    /// Processes jurors one at a time, updating the pmf in place from high
    /// counts down so each juror costs `O(current length)`; `O(n²)` total,
    /// `O(n)` auxiliary space. This is the pmf-level equivalent of the
    /// paper's Lemma 1 recurrence.
    pub fn from_error_rates_dp(eps: &[f64]) -> Self {
        let mut out = Self { pmf: Vec::with_capacity(eps.len() + 1) };
        out.assign_error_rates_dp(eps);
        out
    }

    /// The buffer-reusing form of [`PoiBin::from_error_rates_dp`]:
    /// rebuilds `self` as the distribution of `eps`, keeping the existing
    /// pmf allocation. Results are bit-identical to the constructor; with
    /// a warmed buffer the call performs no heap allocation.
    pub fn assign_error_rates_dp(&mut self, eps: &[f64]) {
        validate(eps);
        let pmf = &mut self.pmf;
        pmf.clear();
        pmf.reserve(eps.len() + 1);
        pmf.push(1.0);
        for &e in eps {
            let q = 1.0 - e;
            pmf.push(pmf[pmf.len() - 1] * e);
            // Walk downwards so pmf[k-1] is still the pre-update value.
            for k in (1..pmf.len() - 1).rev() {
                pmf[k] = pmf[k] * q + pmf[k - 1] * e;
            }
            pmf[0] *= q;
        }
    }

    /// Resets to the zero-trial point mass (the state of
    /// [`PoiBin::empty`]), keeping the pmf allocation for reuse.
    pub fn reset(&mut self) {
        self.pmf.clear();
        self.pmf.push(1.0);
    }

    /// Makes `self` a copy of `other`, reusing the existing allocation
    /// (the buffer-friendly form of `clone_from` for solver scratch
    /// state).
    pub fn copy_from(&mut self, other: &Self) {
        self.pmf.clear();
        self.pmf.extend_from_slice(&other.pmf);
    }

    /// Convolution-Based Algorithm (paper Algorithm 2).
    ///
    /// Splits the juror list in halves, recursively builds each half's
    /// carelessness distribution and merges them by polynomial
    /// multiplication — via FFT once operands are large enough to win
    /// (see [`ConvStrategy::Adaptive`]).
    pub fn from_error_rates_cba(eps: &[f64]) -> Self {
        validate(eps);
        Self { pmf: cba_recurse(eps, ConvStrategy::Adaptive) }
    }

    /// CBA with a forced convolution strategy — used by the ablation bench
    /// that measures the direct-vs-FFT cutoff.
    pub fn from_error_rates_cba_with(eps: &[f64], strategy: ConvStrategy) -> Self {
        validate(eps);
        Self { pmf: cba_recurse(eps, strategy) }
    }

    /// Wraps an existing pmf.
    ///
    /// # Panics
    /// Panics if `pmf` is empty, has non-probability entries, or does not
    /// sum to 1 within `1e-6`.
    pub fn from_pmf(pmf: Vec<f64>) -> Self {
        assert!(!pmf.is_empty(), "pmf must have at least one entry");
        assert!(
            pmf.iter().all(|&p| is_probability(p)),
            "pmf entries must be probabilities in [0,1]"
        );
        let total: f64 = pmf.iter().copied().collect::<KahanSum>().value();
        assert!((total - 1.0).abs() < 1e-6, "pmf must sum to 1 (got {total})");
        Self { pmf }
    }

    /// Non-panicking [`PoiBin::from_pmf`] for untrusted inputs (wire
    /// decodes, snapshot restores): `None` whenever `from_pmf` would
    /// panic — empty pmf, non-probability entries, or a total off 1 by
    /// more than `1e-6`.
    pub fn try_from_pmf(pmf: Vec<f64>) -> Option<Self> {
        if pmf.is_empty() || !pmf.iter().all(|&p| is_probability(p)) {
            return None;
        }
        let total: f64 = pmf.iter().copied().collect::<KahanSum>().value();
        ((total - 1.0).abs() < 1e-6).then_some(Self { pmf })
    }

    /// Number of underlying Bernoulli trials (jury size).
    #[inline]
    pub fn n(&self) -> usize {
        self.pmf.len() - 1
    }

    /// The probability mass function: `pmf()[k] = Pr(C = k)`.
    #[inline]
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// A stable 64-bit summary of this distribution's exact bit content:
    /// a SplitMix64-style fold over the trial count and every pmf entry's
    /// IEEE-754 bits. Two distributions hash equal iff their pmf vectors
    /// are bit-identical, so warm-artifact stores and differential tests
    /// can compare cached prefix-pmf checkpoints (a flat ladder rung, a
    /// shard's resume point) without materialising both sides — e.g.
    /// asserting that a shared checkpoint is the same evaluation lineage
    /// as a privately built one, or that a deconvolution repair changed
    /// it. Purely content-addressed: no RandomState, stable across runs
    /// and platforms.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0x243f_6a88_85a3_08d3u64 ^ (self.pmf.len() as u64);
        for &p in &self.pmf {
            h = crate::hash::splitmix64(h ^ p.to_bits());
        }
        h
    }

    /// `Pr(C = k)`, zero outside the support.
    #[inline]
    pub fn prob_eq(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    /// Upper tail `Pr(C ≥ k)` summed with compensation from the smallest
    /// terms first (the tail entries) to limit cancellation.
    pub fn tail(&self, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n() {
            return 0.0;
        }
        let mut s = KahanSum::new();
        // Sum from the far tail towards k: smallest magnitudes first.
        for &p in self.pmf[k..].iter().rev() {
            s.add(p);
        }
        s.value().clamp(0.0, 1.0)
    }

    /// Lower tail `Pr(C ≤ k)`.
    pub fn cdf(&self, k: usize) -> f64 {
        if k >= self.n() {
            return 1.0;
        }
        let mut s = KahanSum::new();
        for &p in &self.pmf[..=k] {
            s.add(p);
        }
        s.value().clamp(0.0, 1.0)
    }

    /// Mean of the distribution computed from the pmf (equals `Σ ε_i`).
    pub fn mean(&self) -> f64 {
        let mut s = KahanSum::new();
        for (k, &p) in self.pmf.iter().enumerate() {
            s.add(k as f64 * p);
        }
        s.value()
    }

    /// Variance computed from the pmf (equals `Σ ε_i(1-ε_i)`).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let mut s = KahanSum::new();
        for (k, &p) in self.pmf.iter().enumerate() {
            let d = k as f64 - m;
            s.add(d * d * p);
        }
        s.value().max(0.0)
    }

    /// Extends the distribution by one more Bernoulli trial with success
    /// probability `e`, in place and in `O(n)`.
    ///
    /// This powers the *incremental* AltrALG variant: growing a sorted jury
    /// by two jurors costs `O(n)` instead of a fresh `O(n log n)` CBA run.
    ///
    /// # Panics
    /// Panics if `e` is not a probability.
    pub fn push(&mut self, e: f64) {
        assert!(is_probability(e), "error rate must be in [0,1], got {e}");
        let q = 1.0 - e;
        self.pmf.push(self.pmf[self.pmf.len() - 1] * e);
        for k in (1..self.pmf.len() - 1).rev() {
            self.pmf[k] = self.pmf[k] * q + self.pmf[k - 1] * e;
        }
        self.pmf[0] *= q;
    }

    /// Merges two independent counts: the distribution of `C₁ + C₂`.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            pmf: convolve_with(&self.pmf, &other.pmf, ConvStrategy::Adaptive)
                .into_iter()
                .map(|p| p.clamp(0.0, 1.0))
                .collect(),
        }
    }

    /// The workspace form of [`PoiBin::merge`]: writes the distribution of
    /// `C₁ + C₂` into `out`, reusing `out`'s pmf buffer and the
    /// convolution workspace (FFT plans and transform buffers). With
    /// warmed buffers the merge allocates nothing.
    pub fn merge_into(&self, other: &Self, scratch: &mut ConvScratch, out: &mut Self) {
        convolve_into(&self.pmf, &other.pmf, ConvStrategy::Adaptive, scratch, &mut out.pmf);
        for p in &mut out.pmf {
            *p = p.clamp(0.0, 1.0);
        }
    }

    /// Divides one Bernoulli factor with success probability `p` back out
    /// of the distribution, in place and in `O(n)` — the inverse of
    /// [`PoiBin::push`] up to rounding (never bit-identical; see the
    /// module-level error analysis).
    ///
    /// # Errors
    /// * [`DeconvError::IllConditioned`] when `p` lies within
    ///   [`DECONV_GUARD_BAND`] of `½` — `self` is left **untouched**;
    /// * [`DeconvError::ErrorBudgetExceeded`] when the divided
    ///   coefficients fail validation — `self` has been **reset** to the
    ///   zero-trial point mass and must be rebuilt by the caller.
    ///
    /// # Panics
    /// Panics if `p` is not a probability or the distribution has no
    /// factors left (`n() == 0`).
    pub fn remove_factor(&mut self, p: f64) -> Result<(), DeconvError> {
        assert!(is_probability(p), "factor must be a probability in [0,1], got {p}");
        let n = self.n();
        assert!(n > 0, "cannot remove a factor from a zero-trial distribution");
        if (p - 0.5).abs() < DECONV_GUARD_BAND {
            return Err(DeconvError::IllConditioned { p });
        }
        let q = 1.0 - p;
        let residual = if p < 0.5 {
            // Forward synthetic division: r_k = (f_k - p·r_{k-1}) / q,
            // reading each original coefficient before overwriting it.
            let mut carry = 0.0;
            for k in 0..n {
                carry = (self.pmf[k] - p * carry) / q;
                self.pmf[k] = carry;
            }
            let residual = self.pmf[n] - p * carry;
            self.pmf.pop();
            residual
        } else {
            // Backward synthetic division: r_{k-1} = (f_k - q·r_k) / p,
            // staged one slot up so originals are read before overwrite.
            let mut carry = 0.0;
            for k in (1..=n).rev() {
                carry = (self.pmf[k] - q * carry) / p;
                self.pmf[k] = carry;
            }
            let residual = self.pmf[0] - q * carry;
            self.pmf.remove(0);
            residual
        };
        // Second line of defence: the quotient must still look like a pmf
        // and the remainder must vanish.
        let mut defect = residual.abs();
        let mut total = KahanSum::new();
        for &r in &self.pmf {
            if r < 0.0 {
                defect = defect.max(-r);
            } else if r > 1.0 {
                defect = defect.max(r - 1.0);
            }
            total.add(r);
        }
        defect = defect.max((total.value() - 1.0).abs());
        if defect > DECONV_TOL {
            self.reset();
            return Err(DeconvError::ErrorBudgetExceeded { defect });
        }
        for r in &mut self.pmf {
            *r = r.clamp(0.0, 1.0);
        }
        Ok(())
    }

    /// Swaps one factor's success probability from `old` to `new` in
    /// `O(n)`: a [`PoiBin::remove_factor`] followed by a
    /// [`PoiBin::push`]. Bit-identical inputs are a no-op, so exact
    /// cached state survives spurious updates.
    ///
    /// # Errors
    /// Propagates [`PoiBin::remove_factor`]'s errors (with its state
    /// guarantees); the re-insertion itself cannot fail.
    ///
    /// # Panics
    /// Panics if either probability is invalid or `n() == 0`.
    pub fn replace_factor(&mut self, old: f64, new: f64) -> Result<(), DeconvError> {
        assert!(is_probability(new), "factor must be a probability in [0,1], got {new}");
        if old.to_bits() == new.to_bits() {
            return Ok(());
        }
        self.remove_factor(old)?;
        self.push(new);
        Ok(())
    }
}

fn validate(eps: &[f64]) {
    for (i, &e) in eps.iter().enumerate() {
        assert!(
            is_probability(e),
            "error rate at index {i} must be a probability in [0,1], got {e}"
        );
    }
}

fn cba_recurse(eps: &[f64], strategy: ConvStrategy) -> Vec<f64> {
    if eps.len() <= CBA_BASE_CASE {
        return PoiBin::from_error_rates_dp(eps).pmf;
    }
    let mid = eps.len() / 2;
    let left = cba_recurse(&eps[..mid], strategy);
    let right = cba_recurse(&eps[mid..], strategy);
    convolve_with(&left, &right, strategy).into_iter().map(|p| p.clamp(0.0, 1.0)).collect()
}

/// Reusable rolling vectors for [`tail_probability_dp_with`], so repeated
/// tail evaluations (a solver scan, a batched service) allocate nothing
/// after warm-up.
#[derive(Debug, Clone, Default)]
pub struct TailScratch {
    prev: Vec<f64>,
    curr: Vec<f64>,
}

impl TailScratch {
    /// An empty workspace (vectors grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The paper's Algorithm 1: tail probability `Pr(C ≥ threshold | J_n)` via
/// the Lemma-1 recurrence with two rolling `O(n)` vectors, never forming
/// the full pmf.
///
/// `Pr(C ≥ L | J_m) = ε_m·Pr(C ≥ L-1 | J_{m-1}) + (1-ε_m)·Pr(C ≥ L | J_{m-1})`
/// with `Pr(C ≥ 0 | ·) = 1` and `Pr(C ≥ L | J_m) = 0` for `L > m`.
///
/// # Panics
/// Panics on invalid probabilities.
pub fn tail_probability_dp(eps: &[f64], threshold: usize) -> f64 {
    tail_probability_dp_with(eps, threshold, &mut TailScratch::new())
}

/// The workspace form of [`tail_probability_dp`]: identical results, but
/// the two rolling vectors live in `scratch` and are reused across calls.
pub fn tail_probability_dp_with(eps: &[f64], threshold: usize, scratch: &mut TailScratch) -> f64 {
    validate(eps);
    let n = eps.len();
    if threshold == 0 {
        return 1.0;
    }
    if threshold > n {
        return 0.0;
    }
    // prev[m] = Pr(C >= l-1 | J_m), curr[m] = Pr(C >= l | J_m), m = 0..=n.
    let prev = &mut scratch.prev;
    let curr = &mut scratch.curr;
    prev.clear();
    prev.resize(n + 1, 1.0); // l = 0 row: all ones
    curr.clear();
    curr.resize(n + 1, 0.0);
    for _l in 1..=threshold {
        curr[0] = 0.0; // Pr(C >= l | J_0) = 0 for l >= 1
        for m in 1..=n {
            let e = eps[m - 1];
            curr[m] = e * prev[m - 1] + (1.0 - e) * curr[m - 1];
        }
        std::mem::swap(prev, curr);
    }
    prev[n].clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::{approx_eq, approx_eq_rel};

    const TABLE2_EPS: [f64; 7] = [0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4];

    fn majority_threshold(n: usize) -> usize {
        n / 2 + 1 // == (n+1)/2 for odd n
    }

    #[test]
    fn content_hash_tracks_bit_content() {
        let a = PoiBin::from_error_rates(&TABLE2_EPS);
        let b = PoiBin::from_error_rates(&TABLE2_EPS);
        assert_eq!(a.content_hash(), b.content_hash(), "same pushes, same bits, same hash");
        // The DP batch path performs the identical sequential pushes.
        assert_eq!(a.content_hash(), PoiBin::from_error_rates_dp(&TABLE2_EPS).content_hash());
        // An ulp-level perturbation of one factor is different content.
        let mut eps = TABLE2_EPS;
        eps[3] = f64::from_bits(eps[3].to_bits() + 1);
        assert_ne!(a.content_hash(), PoiBin::from_error_rates(&eps).content_hash());
        // Length alone distinguishes prefixes even when masses match.
        assert_ne!(PoiBin::empty().content_hash(), PoiBin::from_error_rates(&[0.0]).content_hash());
    }

    #[test]
    fn empty_distribution_is_point_mass() {
        let d = PoiBin::empty();
        assert_eq!(d.n(), 0);
        assert_eq!(d.pmf(), &[1.0]);
        assert_eq!(d.tail(0), 1.0);
        assert_eq!(d.tail(1), 0.0);
    }

    #[test]
    fn single_bernoulli() {
        let d = PoiBin::from_error_rates(&[0.3]);
        assert!(approx_eq(d.prob_eq(0), 0.7, 1e-15));
        assert!(approx_eq(d.prob_eq(1), 0.3, 1e-15));
        assert!(approx_eq(d.tail(1), 0.3, 1e-15));
    }

    #[test]
    fn motivating_example_cde() {
        // Paper §1: jury {C, D, E} with ε = 0.2, 0.3, 0.3 has JER 0.174.
        let d = PoiBin::from_error_rates(&[0.2, 0.3, 0.3]);
        assert!(approx_eq(d.tail(2), 0.174, 1e-12));
    }

    #[test]
    fn motivating_example_abc() {
        // Jury {A, B, C} with ε = 0.1, 0.2, 0.2 has JER 0.072.
        let d = PoiBin::from_error_rates(&[0.1, 0.2, 0.2]);
        assert!(approx_eq(d.tail(2), 0.072, 1e-12));
    }

    #[test]
    fn motivating_example_size_five_and_seven() {
        // Table 2: {A..E} -> 0.0703/0.0704 (exact 0.07036). For {A..G} the
        // paper's text says 0.085 (exact 0.085248); Table 2's "0.0805"
        // appears to be a typo for 0.0852.
        let d5 = PoiBin::from_error_rates(&TABLE2_EPS[..5]);
        assert!(approx_eq(d5.tail(3), 0.07036, 1e-12));
        let d7 = PoiBin::from_error_rates(&TABLE2_EPS);
        assert!(approx_eq(d7.tail(4), 0.085248, 1e-12));
    }

    #[test]
    fn motivating_example_abcfg() {
        // Table 2: {A,B,C,F,G} with ε = .1,.2,.2,.4,.4 -> 0.104 (rounded;
        // exact 0.10384).
        let d = PoiBin::from_error_rates(&[0.1, 0.2, 0.2, 0.4, 0.4]);
        assert!(approx_eq(d.tail(3), 0.10384, 1e-12));
    }

    #[test]
    fn all_constructors_agree_small() {
        let eps = [0.05, 0.3, 0.77, 0.5, 0.12, 0.9, 0.33, 0.61];
        let naive = PoiBin::from_error_rates_naive(&eps);
        let dp = PoiBin::from_error_rates_dp(&eps);
        let cba = PoiBin::from_error_rates_cba(&eps);
        for k in 0..=eps.len() {
            assert!(approx_eq(naive.prob_eq(k), dp.prob_eq(k), 1e-12), "dp k={k}");
            assert!(approx_eq(naive.prob_eq(k), cba.prob_eq(k), 1e-12), "cba k={k}");
        }
    }

    #[test]
    fn dp_and_cba_agree_large() {
        // 301 jurors — exercises the FFT merge path.
        let eps: Vec<f64> = (0..301).map(|i| 0.05 + 0.9 * (i as f64 / 300.0)).collect();
        let dp = PoiBin::from_error_rates_dp(&eps);
        let cba = PoiBin::from_error_rates_cba(&eps);
        for k in 0..=eps.len() {
            assert!(
                approx_eq(dp.prob_eq(k), cba.prob_eq(k), 1e-9),
                "k={k}: {} vs {}",
                dp.prob_eq(k),
                cba.prob_eq(k)
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let eps: Vec<f64> = (0..97).map(|i| ((i * 37) % 100) as f64 / 101.0).collect();
        let d = PoiBin::from_error_rates(&eps);
        let total: f64 = d.pmf().iter().copied().collect::<KahanSum>().value();
        assert!(approx_eq(total, 1.0, 1e-10));
        assert!(d.pmf().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn mean_and_variance_match_formulas() {
        let eps = [0.1, 0.25, 0.4, 0.7, 0.05];
        let d = PoiBin::from_error_rates(&eps);
        let mu: f64 = eps.iter().sum();
        let var: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
        assert!(approx_eq(d.mean(), mu, 1e-12));
        assert!(approx_eq(d.variance(), var, 1e-12));
    }

    #[test]
    fn tail_edge_cases() {
        let d = PoiBin::from_error_rates(&[0.5, 0.5]);
        assert_eq!(d.tail(0), 1.0);
        assert!(approx_eq(d.tail(1), 0.75, 1e-15));
        assert!(approx_eq(d.tail(2), 0.25, 1e-15));
        assert_eq!(d.tail(3), 0.0);
        assert_eq!(d.tail(100), 0.0);
    }

    #[test]
    fn cdf_complements_tail() {
        let eps = [0.2, 0.4, 0.6, 0.8, 0.1];
        let d = PoiBin::from_error_rates(&eps);
        for k in 0..eps.len() {
            assert!(approx_eq(d.cdf(k) + d.tail(k + 1), 1.0, 1e-12), "k={k}");
        }
        assert_eq!(d.cdf(eps.len()), 1.0);
    }

    #[test]
    fn degenerate_zero_and_one_rates() {
        // ε = 0 never errs; ε = 1 always errs. C is then deterministic.
        let d = PoiBin::from_error_rates(&[0.0, 1.0, 1.0]);
        assert!(approx_eq(d.prob_eq(2), 1.0, 1e-15));
        assert!(approx_eq(d.tail(2), 1.0, 1e-15));
        assert!(approx_eq(d.tail(3), 0.0, 1e-15));
    }

    #[test]
    fn push_matches_batch_construction() {
        let eps = [0.15, 0.35, 0.55, 0.75];
        let mut inc = PoiBin::empty();
        for &e in &eps {
            inc.push(e);
        }
        let batch = PoiBin::from_error_rates_dp(&eps);
        for k in 0..=eps.len() {
            assert!(approx_eq(inc.prob_eq(k), batch.prob_eq(k), 1e-14));
        }
    }

    #[test]
    fn merge_equals_joint_construction() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.4, 0.5];
        let merged = PoiBin::from_error_rates(&a).merge(&PoiBin::from_error_rates(&b));
        let joint = PoiBin::from_error_rates(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        for k in 0..=5 {
            assert!(approx_eq(merged.prob_eq(k), joint.prob_eq(k), 1e-12));
        }
    }

    #[test]
    fn tail_dp_matches_pmf_tail() {
        let eps = [0.12, 0.5, 0.33, 0.9, 0.01, 0.45, 0.62];
        let d = PoiBin::from_error_rates(&eps);
        for t in 0..=eps.len() + 1 {
            assert!(approx_eq(tail_probability_dp(&eps, t), d.tail(t), 1e-12), "threshold={t}");
        }
    }

    #[test]
    fn tail_dp_majority_on_table2() {
        let jer3 = tail_probability_dp(&[0.2, 0.3, 0.3], majority_threshold(3));
        assert!(approx_eq(jer3, 0.174, 1e-12));
        let jer5 = tail_probability_dp(&TABLE2_EPS[..5], majority_threshold(5));
        assert!(approx_eq(jer5, 0.07036, 1e-12));
    }

    #[test]
    fn from_pmf_validates() {
        let d = PoiBin::from_pmf(vec![0.25, 0.5, 0.25]);
        assert_eq!(d.n(), 2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn from_pmf_rejects_unnormalised() {
        let _ = PoiBin::from_pmf(vec![0.5, 0.2]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_error_rate() {
        let _ = PoiBin::from_error_rates(&[0.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn naive_rejects_large_input() {
        let eps = vec![0.5; 26];
        let _ = PoiBin::from_error_rates_naive(&eps);
    }

    #[test]
    fn assign_reuses_buffer_and_matches_constructor() {
        let eps_a = [0.15, 0.35, 0.55, 0.75, 0.2];
        let eps_b = [0.4, 0.1];
        let mut d = PoiBin::from_error_rates_dp(&eps_a);
        assert_eq!(d.pmf, PoiBin::from_error_rates_dp(&eps_a).pmf);
        // Reassigning a shorter input shrinks logically, keeps capacity.
        let cap = d.pmf.capacity();
        d.assign_error_rates_dp(&eps_b);
        assert_eq!(d.pmf, PoiBin::from_error_rates_dp(&eps_b).pmf);
        assert!(d.pmf.capacity() >= cap);
    }

    #[test]
    fn reset_restores_point_mass() {
        let mut d = PoiBin::from_error_rates(&[0.3, 0.4, 0.5]);
        d.reset();
        assert_eq!(d.n(), 0);
        assert_eq!(d.pmf(), &[1.0]);
        d.push(0.25);
        assert_eq!(d.pmf, PoiBin::from_error_rates_dp(&[0.25]).pmf);
    }

    #[test]
    fn copy_from_is_clone_without_allocation_churn() {
        let src = PoiBin::from_error_rates(&[0.2, 0.6, 0.35]);
        let mut dst = PoiBin::from_error_rates(&[0.9; 10]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn merge_into_matches_merge() {
        let a = PoiBin::from_error_rates(&[0.1, 0.2, 0.3]);
        let b = PoiBin::from_error_rates(&[0.4, 0.5]);
        let mut scratch = ConvScratch::new();
        let mut out = PoiBin::empty();
        a.merge_into(&b, &mut scratch, &mut out);
        assert_eq!(out, a.merge(&b));
        // Reuse the same scratch and output for a second merge.
        b.merge_into(&a, &mut scratch, &mut out);
        assert_eq!(out, b.merge(&a));
    }

    #[test]
    fn tail_scratch_form_is_bit_identical() {
        let eps: Vec<f64> = (0..120).map(|i| 0.02 + ((i * 13) % 90) as f64 / 100.0).collect();
        let mut scratch = TailScratch::new();
        for t in [0, 1, 17, 60, 61, 120, 121] {
            assert_eq!(
                tail_probability_dp_with(&eps, t, &mut scratch),
                tail_probability_dp(&eps, t),
                "threshold {t}"
            );
        }
    }

    #[test]
    fn remove_factor_inverts_push() {
        let base = [0.12, 0.31, 0.07, 0.44, 0.26];
        for &p in &[0.0, 1e-12, 0.2, 0.5 - 0.04, 0.5 + 0.04, 0.8, 1.0 - 1e-12, 1.0] {
            let without = PoiBin::from_error_rates_dp(&base);
            let mut with = without.clone();
            with.push(p);
            with.remove_factor(p).unwrap_or_else(|e| panic!("p={p}: {e}"));
            assert_eq!(with.n(), without.n(), "p={p}");
            for k in 0..=with.n() {
                assert!(
                    approx_eq(with.prob_eq(k), without.prob_eq(k), 1e-12),
                    "p={p} k={k}: {} vs {}",
                    with.prob_eq(k),
                    without.prob_eq(k)
                );
            }
        }
    }

    #[test]
    fn remove_factor_any_position_matches_rebuild() {
        let eps = [0.05, 0.33, 0.71, 0.18, 0.92, 0.26];
        for i in 0..eps.len() {
            let mut d = PoiBin::from_error_rates_dp(&eps);
            d.remove_factor(eps[i]).unwrap();
            let rest: Vec<f64> =
                eps.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &e)| e).collect();
            let want = PoiBin::from_error_rates_dp(&rest);
            for k in 0..=rest.len() {
                assert!(approx_eq(d.prob_eq(k), want.prob_eq(k), 1e-12), "i={i} k={k}");
            }
        }
    }

    #[test]
    fn replace_factor_matches_rebuild() {
        let mut d = PoiBin::from_error_rates_dp(&[0.1, 0.4, 0.7]);
        d.replace_factor(0.4, 0.25).unwrap();
        let want = PoiBin::from_error_rates_dp(&[0.1, 0.25, 0.7]);
        for k in 0..=3 {
            assert!(approx_eq(d.prob_eq(k), want.prob_eq(k), 1e-12), "k={k}");
        }
        // Bit-identical old/new is an exact no-op, even for a guarded p.
        let before = PoiBin::from_error_rates_dp(&[0.5, 0.2]);
        let mut same = before.clone();
        same.replace_factor(0.5, 0.5).unwrap();
        assert_eq!(same, before);
    }

    #[test]
    fn guard_band_rejects_half_mass_factors() {
        for &p in &[0.5, 0.5 - 1e-12, 0.5 + 1e-12, 0.5 - DECONV_GUARD_BAND / 2.0] {
            let before = PoiBin::from_error_rates_dp(&[p, 0.2, 0.9]);
            let mut d = before.clone();
            assert_eq!(d.remove_factor(p), Err(DeconvError::IllConditioned { p }));
            assert_eq!(d, before, "ill-conditioned rejection must leave the pmf untouched");
        }
        // Just outside the band the division goes through.
        let p = 0.5 + DECONV_GUARD_BAND;
        let mut d = PoiBin::from_error_rates_dp(&[p, 0.2, 0.9]);
        assert!(d.remove_factor(p).is_ok());
    }

    #[test]
    fn absent_factor_trips_the_error_budget() {
        let mut d = PoiBin::from_error_rates_dp(&[0.1, 0.2]);
        match d.remove_factor(0.9) {
            Err(DeconvError::ErrorBudgetExceeded { defect }) => assert!(defect > DECONV_TOL),
            other => panic!("expected error-budget failure, got {other:?}"),
        }
        // The contract says the pmf was reset for rebuilding.
        assert_eq!(d.pmf(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "zero-trial")]
    fn remove_factor_rejects_empty() {
        let _ = PoiBin::empty().remove_factor(0.3);
    }

    #[test]
    fn binomial_special_case() {
        // All ε equal: Poisson-Binomial degenerates to Binomial(n, p).
        let n = 12usize;
        let p = 0.3f64;
        let eps = vec![p; n];
        let d = PoiBin::from_error_rates(&eps);
        let mut choose = 1.0f64;
        for k in 0..=n {
            if k > 0 {
                choose = choose * (n - k + 1) as f64 / k as f64;
            }
            let expected = choose * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
            assert!(
                approx_eq_rel(d.prob_eq(k), expected, 1e-10),
                "k={k}: {} vs {expected}",
                d.prob_eq(k)
            );
        }
    }
}
