//! Tail bounds on the carelessness count.
//!
//! The paper's Lemma 2 derives a *lower* bound on JER from the
//! Paley–Zygmund inequality, cheap enough (`O(n)`) to prune exact JER
//! evaluations inside AltrALG. For ablation studies this module also
//! provides two classical *upper* bounds — Cantelli (one-sided Chebyshev)
//! and the Chernoff–Hoeffding bound for sums of independent Bernoullis —
//! which allow symmetric pruning ("this jury cannot be better than the
//! incumbent" / "cannot be worse").
//!
//! All three bounds depend on the rates only through the first two
//! moments `μ = Σ ε_i` and `σ² = Σ ε_i(1-ε_i)` (plus the count `n`).
//! Over an ε-sorted prefix scan those moments are *prefix sums*, so
//! [`PrefixMoments`] maintains them incrementally: one
//! [`PrefixMoments::push`] per juror and every bound evaluates in
//! `O(1)` per candidate prefix — the kernel behind
//! `AltrAlg::solve_pruned`'s rescan-free bound sweep. The slice entry
//! points and the prefix form share the same moment→bound formulas, so
//! the two evaluation styles agree bit-for-bit when fed the same
//! accumulated moments.

/// Result of a bound evaluation: either a usable bound value or a marker
/// that the inequality's precondition failed for these parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TailBound {
    /// The bound applies and has the given value.
    Value(f64),
    /// The precondition (e.g. `γ ∈ (0,1)` for Paley–Zygmund) does not hold.
    Inapplicable,
}

impl TailBound {
    /// The bound value, or `None` when inapplicable.
    #[inline]
    pub fn value(self) -> Option<f64> {
        match self {
            TailBound::Value(v) => Some(v),
            TailBound::Inapplicable => None,
        }
    }

    /// `true` when the inequality's precondition held.
    #[inline]
    pub fn is_applicable(self) -> bool {
        matches!(self, TailBound::Value(_))
    }
}

/// Incrementally-maintained first two moments of a carelessness count:
/// `μ = Σ ε_i` and `σ² = Σ ε_i(1-ε_i)` over the rates pushed so far.
///
/// One push per juror keeps every moment-based tail bound evaluable in
/// `O(1)` per prefix of an ε-sorted scan. The accumulators are the same
/// left-to-right sums the slice entry points compute, so
/// [`PrefixMoments::paley_zygmund_lower`] over the first `n` pushes
/// returns bit-identical values to [`paley_zygmund_lower_bound`] on the
/// corresponding slice (and likewise for the upper bounds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrefixMoments {
    n: usize,
    mu: f64,
    sigma2: f64,
}

impl PrefixMoments {
    /// The empty prefix (zero jurors).
    pub fn new() -> Self {
        Self::default()
    }

    /// Extends the prefix by one juror with error rate `e`.
    #[inline]
    pub fn push(&mut self, e: f64) {
        self.n += 1;
        self.mu += e;
        self.sigma2 += e * (1.0 - e);
    }

    /// Number of rates pushed so far.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Accumulated mean `Σ ε_i`.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Accumulated variance `Σ ε_i(1-ε_i)`.
    #[inline]
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// [`paley_zygmund_lower_bound`] over the pushed prefix, in `O(1)`.
    #[inline]
    pub fn paley_zygmund_lower(&self, threshold: usize) -> TailBound {
        paley_zygmund_from_moments(self.mu, self.sigma2, threshold)
    }

    /// [`cantelli_upper_bound`] over the pushed prefix, in `O(1)`.
    #[inline]
    pub fn cantelli_upper(&self, threshold: usize) -> TailBound {
        cantelli_from_moments(self.mu, self.sigma2, threshold)
    }

    /// [`chernoff_upper_bound`] over the pushed prefix, in `O(1)`.
    #[inline]
    pub fn chernoff_upper(&self, threshold: usize) -> TailBound {
        chernoff_from_moments(self.n, self.mu, threshold)
    }
}

/// Paley–Zygmund lower bound of the paper's Lemma 2.
///
/// For the carelessness count `C` with mean `μ = Σ ε_i` and variance
/// `σ² = Σ ε_i(1-ε_i)`, and threshold `t = (n+1)/2` written as `t = γμ`:
///
/// ```text
/// Pr(C ≥ γμ) ≥ (1-γ)²μ² / ((1-γ)²μ² + σ²)      for γ ∈ (0,1)
/// ```
///
/// The bound only applies when `γ = t/μ` lies strictly inside `(0,1)` —
/// i.e. when the majority threshold sits *below* the expected number of
/// wrong voters (an error-prone jury). AltrALG checks this exactly as the
/// paper's Algorithm 3 Line 5 does.
pub fn paley_zygmund_lower_bound(eps: &[f64], threshold: usize) -> TailBound {
    let mu: f64 = eps.iter().sum();
    let sigma2: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
    paley_zygmund_from_moments(mu, sigma2, threshold)
}

/// The moment form of [`paley_zygmund_lower_bound`]: the shared kernel
/// both the slice and the [`PrefixMoments`] entry points reduce to.
#[inline]
pub fn paley_zygmund_from_moments(mu: f64, sigma2: f64, threshold: usize) -> TailBound {
    if mu <= 0.0 {
        return TailBound::Inapplicable;
    }
    let gamma = threshold as f64 / mu;
    if gamma <= 0.0 || gamma >= 1.0 {
        return TailBound::Inapplicable;
    }
    let a = (1.0 - gamma) * (1.0 - gamma) * mu * mu;
    TailBound::Value(a / (a + sigma2))
}

/// The γ parameter of Lemma 2: `((n+1)/2) / μ`. Exposed so callers can
/// reproduce the paper's applicability check (`γ < 1`) directly.
pub fn paley_zygmund_gamma(eps: &[f64], threshold: usize) -> f64 {
    let mu: f64 = eps.iter().sum();
    if mu <= 0.0 {
        f64::INFINITY
    } else {
        threshold as f64 / mu
    }
}

/// Cantelli (one-sided Chebyshev) upper bound:
///
/// ```text
/// Pr(C ≥ μ + a) ≤ σ² / (σ² + a²)   for a > 0
/// ```
///
/// Applicable whenever the threshold exceeds the mean; used as an
/// *upper*-bound pruning ablation (a reliable jury whose upper bound is
/// already below the incumbent's JER can be accepted without exact
/// evaluation — and vice versa for rejection).
pub fn cantelli_upper_bound(eps: &[f64], threshold: usize) -> TailBound {
    let mu: f64 = eps.iter().sum();
    let sigma2: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
    cantelli_from_moments(mu, sigma2, threshold)
}

/// The moment form of [`cantelli_upper_bound`].
#[inline]
pub fn cantelli_from_moments(mu: f64, sigma2: f64, threshold: usize) -> TailBound {
    let a = threshold as f64 - mu;
    if a <= 0.0 {
        return TailBound::Inapplicable;
    }
    TailBound::Value(sigma2 / (sigma2 + a * a))
}

/// Chernoff–Hoeffding upper bound for sums of independent Bernoullis via
/// the KL-divergence form:
///
/// ```text
/// Pr(C ≥ t) ≤ exp(-n · KL(t/n ‖ μ/n))    for t/n > μ/n
/// ```
///
/// Tighter than Cantelli far in the tail; the `bounds` ablation bench
/// compares all three.
pub fn chernoff_upper_bound(eps: &[f64], threshold: usize) -> TailBound {
    let mu: f64 = eps.iter().sum();
    chernoff_from_moments(eps.len(), mu, threshold)
}

/// The moment form of [`chernoff_upper_bound`] (the KL bound needs only
/// the count and the mean).
#[inline]
pub fn chernoff_from_moments(n: usize, mu: f64, threshold: usize) -> TailBound {
    if n == 0 || threshold > n {
        // Pr(C >= t) = 0 when t > n: bound trivially zero.
        return if threshold > n { TailBound::Value(0.0) } else { TailBound::Inapplicable };
    }
    let p = mu / n as f64;
    let q = threshold as f64 / n as f64;
    if q <= p {
        return TailBound::Inapplicable;
    }
    if p <= 0.0 {
        // Mean zero: C is almost surely 0, so Pr(C >= t>=1) = 0.
        return TailBound::Value(if threshold == 0 { 1.0 } else { 0.0 });
    }
    let kl = kl_bernoulli(q, p);
    TailBound::Value((-(n as f64) * kl).exp().min(1.0))
}

/// KL divergence between Bernoulli(q) and Bernoulli(p), with the usual
/// `0·ln 0 = 0` conventions.
fn kl_bernoulli(q: f64, p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q) && (0.0..=1.0).contains(&p));
    let mut kl = 0.0;
    if q > 0.0 {
        kl += q * (q / p).ln();
    }
    if q < 1.0 {
        kl += (1.0 - q) * ((1.0 - q) / (1.0 - p)).ln();
    }
    kl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poibin::PoiBin;

    fn majority(n: usize) -> usize {
        n / 2 + 1
    }

    #[test]
    fn paley_zygmund_is_a_true_lower_bound_when_applicable() {
        // Error-prone jurors: mean above threshold so γ < 1.
        let eps = vec![0.8; 9];
        let t = majority(eps.len()); // 5; μ = 7.2; γ = 0.694
        let bound = paley_zygmund_lower_bound(&eps, t);
        let exact = PoiBin::from_error_rates(&eps).tail(t);
        match bound {
            TailBound::Value(b) => {
                assert!(b <= exact + 1e-12, "bound {b} exceeds exact {exact}");
                assert!(b > 0.0);
            }
            TailBound::Inapplicable => panic!("γ < 1 here; bound must apply"),
        }
    }

    #[test]
    fn paley_zygmund_inapplicable_for_reliable_juries() {
        // Reliable jurors: μ = 0.9 < t = 5 so γ > 1.
        let eps = vec![0.1; 9];
        assert_eq!(paley_zygmund_lower_bound(&eps, majority(9)), TailBound::Inapplicable);
        assert!(paley_zygmund_gamma(&eps, majority(9)) > 1.0);
    }

    #[test]
    fn paley_zygmund_gamma_matches_definition() {
        let eps = [0.5, 0.7, 0.9];
        let g = paley_zygmund_gamma(&eps, 2);
        assert!((g - 2.0 / 2.1).abs() < 1e-12);
    }

    #[test]
    fn paley_zygmund_empty_is_inapplicable() {
        assert_eq!(paley_zygmund_lower_bound(&[], 1), TailBound::Inapplicable);
        assert!(paley_zygmund_gamma(&[], 1).is_infinite());
    }

    #[test]
    fn cantelli_is_a_true_upper_bound() {
        let eps = [0.1, 0.2, 0.15, 0.3, 0.25];
        let t = majority(eps.len());
        let exact = PoiBin::from_error_rates(&eps).tail(t);
        match cantelli_upper_bound(&eps, t) {
            TailBound::Value(b) => assert!(b >= exact - 1e-12, "bound {b} below exact {exact}"),
            TailBound::Inapplicable => panic!("threshold above mean; must apply"),
        }
    }

    #[test]
    fn cantelli_inapplicable_below_mean() {
        let eps = vec![0.9; 5];
        assert_eq!(cantelli_upper_bound(&eps, 3), TailBound::Inapplicable);
    }

    #[test]
    fn chernoff_is_a_true_upper_bound() {
        let eps = [0.1, 0.12, 0.2, 0.05, 0.3, 0.18, 0.22];
        let t = majority(eps.len());
        let exact = PoiBin::from_error_rates(&eps).tail(t);
        match chernoff_upper_bound(&eps, t) {
            TailBound::Value(b) => assert!(b >= exact - 1e-12),
            TailBound::Inapplicable => panic!("must apply"),
        }
    }

    #[test]
    fn chernoff_tighter_than_cantelli_far_in_tail() {
        // Many very reliable jurors; majority failure is deep in the tail.
        let eps = vec![0.05; 41];
        let t = majority(41);
        let ch = chernoff_upper_bound(&eps, t).value().unwrap();
        let ca = cantelli_upper_bound(&eps, t).value().unwrap();
        assert!(ch < ca, "chernoff {ch} should beat cantelli {ca}");
    }

    #[test]
    fn chernoff_edge_cases() {
        assert_eq!(chernoff_upper_bound(&[], 1), TailBound::Value(0.0));
        assert_eq!(chernoff_upper_bound(&[0.0, 0.0], 1), TailBound::Value(0.0));
        // Threshold below mean: inapplicable.
        assert_eq!(chernoff_upper_bound(&[0.9, 0.9, 0.9], 1), TailBound::Inapplicable);
        // Threshold beyond n: probability is exactly 0.
        assert_eq!(chernoff_upper_bound(&[0.5; 3], 7), TailBound::Value(0.0));
    }

    #[test]
    fn bound_accessors() {
        assert_eq!(TailBound::Value(0.5).value(), Some(0.5));
        assert_eq!(TailBound::Inapplicable.value(), None);
        assert!(TailBound::Value(0.0).is_applicable());
        assert!(!TailBound::Inapplicable.is_applicable());
    }

    #[test]
    fn kl_zero_when_equal() {
        assert!((kl_bernoulli(0.3, 0.3)).abs() < 1e-15);
        assert!(kl_bernoulli(0.6, 0.3) > 0.0);
    }

    #[test]
    fn prefix_moments_match_slice_bounds_bit_for_bit() {
        // Pushing a sorted run juror by juror must reproduce the slice
        // entry points at every prefix, bits included — the accumulators
        // are the same left-to-right sums.
        let eps: Vec<f64> =
            (0..97).map(|i| 0.01 + 0.98 * ((i as f64 * 0.6180339887498949) % 1.0)).collect();
        let mut pm = PrefixMoments::new();
        assert_eq!(pm.n(), 0);
        for (i, &e) in eps.iter().enumerate() {
            pm.push(e);
            let prefix = &eps[..=i];
            let n = i + 1;
            assert_eq!(pm.n(), n);
            for t in [1usize, majority(n), n, n + 1] {
                assert_eq!(
                    pm.paley_zygmund_lower(t),
                    paley_zygmund_lower_bound(prefix, t),
                    "pz n={n} t={t}"
                );
                assert_eq!(
                    pm.cantelli_upper(t),
                    cantelli_upper_bound(prefix, t),
                    "cantelli n={n} t={t}"
                );
                assert_eq!(
                    pm.chernoff_upper(t),
                    chernoff_upper_bound(prefix, t),
                    "chernoff n={n} t={t}"
                );
            }
        }
        // μ and σ² are the plain sequential sums.
        let mu: f64 = eps.iter().sum();
        let sigma2: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
        assert_eq!(pm.mu().to_bits(), mu.to_bits());
        assert_eq!(pm.sigma2().to_bits(), sigma2.to_bits());
    }

    #[test]
    fn prefix_moments_empty_prefix_is_inapplicable_or_trivial() {
        let pm = PrefixMoments::new();
        assert_eq!(pm.paley_zygmund_lower(1), TailBound::Inapplicable);
        assert_eq!(pm.cantelli_upper(1), TailBound::Value(0.0));
        assert_eq!(pm.chernoff_upper(1), TailBound::Value(0.0));
    }
}
