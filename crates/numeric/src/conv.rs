//! Convolution of real coefficient vectors.
//!
//! CBA (Algorithm 2 of the paper) merges the carelessness distributions of
//! two sub-juries by multiplying their generating polynomials. For a juror
//! with error rate `ε` the polynomial is `(1-ε) + ε·x`; the product over a
//! jury gives the Poisson-Binomial pmf of the number of wrong votes.
//!
//! Three strategies are provided:
//!
//! * [`convolve_direct`] — schoolbook `O(n·m)`; exact up to f64 rounding
//!   and fastest for short operands;
//! * [`convolve_fft`] — zero-padded FFT multiplication, `O(N log N)` where
//!   `N` is the padded length;
//! * [`convolve`] — adaptive dispatcher used by CBA, picking direct for
//!   small products and FFT beyond [`DEFAULT_FFT_CUTOFF`]. The crossover is
//!   itself measured by the `convolution` ablation bench.
//!
//! Probability vectors are non-negative, so the FFT path also clamps tiny
//! negative round-off results back to zero — downstream tail sums must
//! never see `-1e-17`-style noise.

use crate::complex::Complex64;
use crate::fft::{next_pow2, FftPlanCache};

/// Operand-size product above which [`convolve`] switches to the FFT path.
///
/// Calibrated from the `convolution` criterion bench on this container:
/// equal-length operands of 256 still favour the schoolbook loop
/// (23 µs vs 36 µs) while 512 favours the FFT (95 µs vs 72 µs), putting
/// the crossover near a product of ~2·10⁵. The schoolbook loop's
/// vectorised multiply-add stream beats the FFT's butterfly latency far
/// longer than flop counting suggests. Re-run the bench when porting to
/// a different microarchitecture.
pub const DEFAULT_FFT_CUTOFF: usize = 400 * 400;

/// Which convolution implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvStrategy {
    /// Always the schoolbook `O(n·m)` loop.
    Direct,
    /// Always the FFT path.
    Fft,
    /// Choose per-call based on `a.len() * b.len()` (the default).
    #[default]
    Adaptive,
}

/// Reusable workspace for [`convolve_into`]: the complex transform
/// buffers plus an [`FftPlanCache`], so repeated convolutions (a batched
/// service workload, CBA's merge levels) perform no heap allocation and
/// no twiddle recomputation after warm-up.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    z: Vec<Complex64>,
    c: Vec<Complex64>,
    plans: FftPlanCache,
}

impl ConvScratch {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Convolves two real vectors, choosing the implementation per
/// [`ConvStrategy::Adaptive`].
///
/// Returns a vector of length `a.len() + b.len() - 1` (or empty if either
/// operand is empty).
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    convolve_with(a, b, ConvStrategy::Adaptive)
}

/// Convolves two real vectors with an explicit strategy.
pub fn convolve_with(a: &[f64], b: &[f64], strategy: ConvStrategy) -> Vec<f64> {
    let mut out = Vec::new();
    convolve_into(a, b, strategy, &mut ConvScratch::new(), &mut out);
    out
}

/// Convolves into a caller-provided output vector using a reusable
/// workspace — the zero-allocation form of [`convolve_with`] (after the
/// buffers have grown to the workload's steady-state sizes).
///
/// `out` is cleared first; on return it has length
/// `a.len() + b.len() - 1` (or 0 if either operand is empty). Results are
/// bit-identical to [`convolve_with`] under the same strategy.
pub fn convolve_into(
    a: &[f64],
    b: &[f64],
    strategy: ConvStrategy,
    scratch: &mut ConvScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    match strategy {
        ConvStrategy::Direct => direct_into(a, b, out),
        ConvStrategy::Fft => fft_into(a, b, scratch, out),
        ConvStrategy::Adaptive => {
            if a.len().saturating_mul(b.len()) <= DEFAULT_FFT_CUTOFF {
                direct_into(a, b, out);
            } else {
                fft_into(a, b, scratch, out);
            }
        }
    }
}

/// Schoolbook convolution: `out[k] = Σ_i a[i]·b[k-i]`.
///
/// The outer loop iterates the shorter operand so the inner loop (which the
/// compiler can vectorise) streams over the longer one.
pub fn convolve_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    if a.is_empty() || b.is_empty() {
        return out;
    }
    direct_into(a, b, &mut out);
    out
}

/// FFT-based convolution with zero padding to the next power of two.
///
/// Small negative results (round-off noise on what must be a non-negative
/// probability vector) are clamped to zero.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    if a.is_empty() || b.is_empty() {
        return out;
    }
    fft_into(a, b, &mut ConvScratch::new(), &mut out);
    out
}

/// Direct convolution into `out` (assumed cleared, non-empty operands).
fn direct_into(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    out.resize(a.len() + b.len() - 1, 0.0);
    for (i, &s) in short.iter().enumerate() {
        if s == 0.0 {
            continue;
        }
        let dst = &mut out[i..i + long.len()];
        for (d, &l) in dst.iter_mut().zip(long) {
            *d += s * l;
        }
    }
}

/// FFT convolution into `out` (assumed cleared, non-empty operands).
fn fft_into(a: &[f64], b: &[f64], scratch: &mut ConvScratch, out: &mut Vec<f64>) {
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let ConvScratch { z, c, plans } = scratch;
    let plan = plans.plan(n);

    // Pack both real sequences into one complex transform:
    // z = a + i·b  =>  A[k] = (Z[k] + conj(Z[n-k]))/2, B[k] = (Z[k] - conj(Z[n-k]))/(2i)
    // and A·B can be formed directly from Z, halving transform count.
    z.clear();
    z.resize(n, Complex64::ZERO);
    for (zi, &av) in z.iter_mut().zip(a) {
        zi.re = av;
    }
    for (zi, &bv) in z.iter_mut().zip(b) {
        zi.im = bv;
    }
    plan.forward(z);

    // Product spectrum: C[k] = A[k]*B[k]
    //   = (Z[k]^2 - conj(Z[n-k])^2) / (4i)
    c.clear();
    c.resize(n, Complex64::ZERO);
    for k in 0..n {
        let zk = z[k];
        let znk = z[(n - k) & (n - 1)].conj();
        let num = zk * zk - znk * znk;
        // divide by 4i  ==  multiply by -i/4
        c[k] = Complex64::new(num.im * 0.25, -num.re * 0.25);
    }
    plan.inverse(c);

    out.extend(c[..out_len].iter().map(|v| if v.re < 0.0 && v.re > -1e-12 { 0.0 } else { v.re }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(approx_eq(*x, *y, tol), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn empty_operands_yield_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
        assert!(convolve_direct(&[], &[]).is_empty());
        assert!(convolve_fft(&[], &[1.0, 2.0]).is_empty());
    }

    #[test]
    fn singleton_scales() {
        let out = convolve(&[2.0], &[1.0, 3.0, 5.0]);
        assert_close(&out, &[2.0, 6.0, 10.0], 1e-12);
    }

    #[test]
    fn known_product() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2
        let out = convolve_direct(&[1.0, 2.0], &[3.0, 4.0]);
        assert_close(&out, &[3.0, 10.0, 8.0], 1e-12);
        let out = convolve_fft(&[1.0, 2.0], &[3.0, 4.0]);
        assert_close(&out, &[3.0, 10.0, 8.0], 1e-9);
    }

    #[test]
    fn binomial_coefficients_via_repeated_convolution() {
        // (1 + x)^6 coefficients
        let mut acc = vec![1.0];
        for _ in 0..6 {
            acc = convolve(&acc, &[1.0, 1.0]);
        }
        assert_close(&acc, &[1.0, 6.0, 15.0, 20.0, 15.0, 6.0, 1.0], 1e-9);
    }

    #[test]
    fn fft_matches_direct_on_random_sizes() {
        // Deterministic pseudo-random data; no rand dependency needed here.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for (la, lb) in [(1, 1), (2, 3), (7, 7), (16, 5), (33, 64), (100, 257), (513, 512)] {
            let a: Vec<f64> = (0..la).map(|_| next()).collect();
            let b: Vec<f64> = (0..lb).map(|_| next()).collect();
            let d = convolve_direct(&a, &b);
            let f = convolve_fft(&a, &b);
            assert_close(&d, &f, 1e-9);
        }
    }

    #[test]
    fn probability_vectors_stay_non_negative_and_normalised() {
        // Bernoulli(0.3) ⊗ Bernoulli(0.8) ⊗ ... stays a distribution.
        let eps = [0.3, 0.8, 0.01, 0.99, 0.5];
        let mut pmf = vec![1.0];
        for &e in &eps {
            pmf = convolve_with(&pmf, &[1.0 - e, e], ConvStrategy::Fft);
        }
        assert_eq!(pmf.len(), eps.len() + 1);
        let total: f64 = pmf.iter().sum();
        assert!(approx_eq(total, 1.0, 1e-10));
        assert!(pmf.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn commutativity() {
        let a = [0.2, 0.5, 0.3];
        let b = [0.9, 0.1];
        assert_close(&convolve(&a, &b), &convolve(&b, &a), 1e-12);
    }

    #[test]
    fn strategy_override_is_respected() {
        // Both paths must agree on the same input regardless of size.
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.01).sin().abs()).collect();
        let b: Vec<f64> = (0..300).map(|i| (i as f64 * 0.02).cos().abs()).collect();
        let d = convolve_with(&a, &b, ConvStrategy::Direct);
        let f = convolve_with(&a, &b, ConvStrategy::Fft);
        let ad = convolve_with(&a, &b, ConvStrategy::Adaptive);
        assert_close(&d, &f, 1e-8);
        assert_close(&d, &ad, 1e-8);
    }

    #[test]
    fn output_length_is_sum_minus_one() {
        let a = vec![1.0; 17];
        let b = vec![1.0; 40];
        assert_eq!(convolve(&a, &b).len(), 56);
    }

    #[test]
    fn scratch_form_is_bit_identical_and_reusable() {
        let a: Vec<f64> = (0..321).map(|i| (i as f64 * 0.013).sin().abs()).collect();
        let b: Vec<f64> = (0..290).map(|i| (i as f64 * 0.027).cos().abs()).collect();
        let mut scratch = ConvScratch::new();
        let mut out = Vec::new();
        for strategy in [ConvStrategy::Direct, ConvStrategy::Fft, ConvStrategy::Adaptive] {
            // Run twice through the same scratch: warm buffers must not
            // change results.
            for _ in 0..2 {
                convolve_into(&a, &b, strategy, &mut scratch, &mut out);
                assert_eq!(out, convolve_with(&a, &b, strategy), "{strategy:?}");
            }
        }
        // Mixed sizes through one scratch exercise the plan cache.
        for n in [3usize, 64, 511, 1024] {
            let x = vec![0.5; n];
            convolve_into(&x, &x, ConvStrategy::Fft, &mut scratch, &mut out);
            assert_eq!(out, convolve_fft(&x, &x), "n={n}");
        }
        convolve_into(&[], &a, ConvStrategy::Adaptive, &mut scratch, &mut out);
        assert!(out.is_empty());
    }
}
