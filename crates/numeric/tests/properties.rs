//! Property-based tests for the numeric substrate.
//!
//! These encode the mathematical invariants the rest of the workspace
//! relies on: agreement of all Poisson-Binomial constructions, conservation
//! of probability mass, FFT round-trips, convolution equivalences and the
//! soundness of every tail bound.

use jury_numeric::bounds::{
    cantelli_upper_bound, chernoff_upper_bound, paley_zygmund_lower_bound, TailBound,
};
use jury_numeric::conv::{convolve_direct, convolve_fft};
use jury_numeric::fft::Fft;
use jury_numeric::poibin::{tail_probability_dp, PoiBin};
use jury_numeric::Complex64;
use proptest::collection::vec;
use proptest::prelude::*;

/// Error rates strictly inside (0,1) as Definition 4 requires.
fn error_rates(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(0.001..0.999f64, 1..=max_len)
}

proptest! {
    #[test]
    fn naive_dp_cba_agree(eps in error_rates(12)) {
        let naive = PoiBin::from_error_rates_naive(&eps);
        let dp = PoiBin::from_error_rates_dp(&eps);
        let cba = PoiBin::from_error_rates_cba(&eps);
        for k in 0..=eps.len() {
            prop_assert!((naive.prob_eq(k) - dp.prob_eq(k)).abs() < 1e-10);
            prop_assert!((naive.prob_eq(k) - cba.prob_eq(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn dp_cba_agree_medium(eps in error_rates(150)) {
        let dp = PoiBin::from_error_rates_dp(&eps);
        let cba = PoiBin::from_error_rates_cba(&eps);
        for k in 0..=eps.len() {
            prop_assert!((dp.prob_eq(k) - cba.prob_eq(k)).abs() < 1e-9,
                "k={} dp={} cba={}", k, dp.prob_eq(k), cba.prob_eq(k));
        }
    }

    #[test]
    fn pmf_is_a_distribution(eps in error_rates(100)) {
        let d = PoiBin::from_error_rates(&eps);
        let total: f64 = d.pmf().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(d.pmf().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn mean_variance_closed_forms(eps in error_rates(60)) {
        let d = PoiBin::from_error_rates(&eps);
        let mu: f64 = eps.iter().sum();
        let var: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
        prop_assert!((d.mean() - mu).abs() < 1e-9);
        prop_assert!((d.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn tail_is_monotone_decreasing(eps in error_rates(40)) {
        let d = PoiBin::from_error_rates(&eps);
        for k in 0..=eps.len() {
            prop_assert!(d.tail(k) + 1e-12 >= d.tail(k + 1));
        }
        prop_assert_eq!(d.tail(0), 1.0);
        prop_assert_eq!(d.tail(eps.len() + 1), 0.0);
    }

    #[test]
    fn tail_dp_matches_pmf_tail(eps in error_rates(40), t in 0usize..45) {
        let d = PoiBin::from_error_rates(&eps);
        prop_assert!((tail_probability_dp(&eps, t) - d.tail(t)).abs() < 1e-10);
    }

    #[test]
    fn incremental_push_matches_batch(eps in error_rates(50)) {
        let mut inc = PoiBin::empty();
        for &e in &eps {
            inc.push(e);
        }
        let batch = PoiBin::from_error_rates_dp(&eps);
        for k in 0..=eps.len() {
            prop_assert!((inc.prob_eq(k) - batch.prob_eq(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn merge_is_commutative_and_joint(a in error_rates(20), b in error_rates(20)) {
        let da = PoiBin::from_error_rates(&a);
        let db = PoiBin::from_error_rates(&b);
        let ab = da.merge(&db);
        let ba = db.merge(&da);
        let mut joint_eps = a.clone();
        joint_eps.extend_from_slice(&b);
        let joint = PoiBin::from_error_rates(&joint_eps);
        for k in 0..=joint_eps.len() {
            prop_assert!((ab.prob_eq(k) - ba.prob_eq(k)).abs() < 1e-10);
            prop_assert!((ab.prob_eq(k) - joint.prob_eq(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn paley_zygmund_never_exceeds_exact(eps in error_rates(25), t in 1usize..13) {
        if let TailBound::Value(b) = paley_zygmund_lower_bound(&eps, t) {
            let exact = PoiBin::from_error_rates(&eps).tail(t);
            prop_assert!(b <= exact + 1e-9, "bound {} > exact {}", b, exact);
        }
    }

    #[test]
    fn upper_bounds_never_undershoot(eps in error_rates(25), t in 1usize..13) {
        let exact = PoiBin::from_error_rates(&eps).tail(t);
        if let TailBound::Value(b) = cantelli_upper_bound(&eps, t) {
            prop_assert!(b >= exact - 1e-9);
        }
        if let TailBound::Value(b) = chernoff_upper_bound(&eps, t) {
            prop_assert!(b >= exact - 1e-9);
        }
    }

    #[test]
    fn fft_round_trip(values in vec(-100.0..100.0f64, 1..64)) {
        let n = values.len().next_power_of_two();
        let mut data: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        data.resize(n, Complex64::ZERO);
        let original = data.clone();
        let plan = Fft::new(n);
        let mut buf = data;
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn conv_direct_equals_fft(a in vec(0.0..1.0f64, 1..80), b in vec(0.0..1.0f64, 1..80)) {
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        prop_assert_eq!(d.len(), f.len());
        for (x, y) in d.iter().zip(&f) {
            prop_assert!((x - y).abs() < 1e-8, "{} vs {}", x, y);
        }
    }

    #[test]
    fn adding_a_certain_juror_shifts_tail(eps in error_rates(20), t in 1usize..10) {
        // Appending ε = 1 (always wrong) increments C by one deterministically:
        // Pr(C' >= t+1) == Pr(C >= t).
        let base = PoiBin::from_error_rates(&eps);
        let mut extended = base.clone();
        extended.push(1.0);
        prop_assert!((extended.tail(t + 1) - base.tail(t)).abs() < 1e-10);
        // Appending ε = 0 (never wrong) leaves every tail unchanged.
        let mut same = base.clone();
        same.push(0.0);
        prop_assert!((same.tail(t) - base.tail(t)).abs() < 1e-10);
    }
}
