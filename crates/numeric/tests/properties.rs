//! Property-based tests for the numeric substrate.
//!
//! These encode the mathematical invariants the rest of the workspace
//! relies on: agreement of all Poisson-Binomial constructions, conservation
//! of probability mass, FFT round-trips, convolution equivalences and the
//! soundness of every tail bound.

use jury_numeric::bounds::{
    cantelli_upper_bound, chernoff_upper_bound, paley_zygmund_lower_bound, PrefixMoments, TailBound,
};
use jury_numeric::conv::{convolve_direct, convolve_fft, ConvScratch};
use jury_numeric::fft::Fft;
use jury_numeric::poibin::{tail_probability_dp, DeconvError, PoiBin, DECONV_GUARD_BAND};
use jury_numeric::Complex64;
use proptest::collection::vec;
use proptest::prelude::*;

/// Error rates strictly inside (0,1) as Definition 4 requires.
fn error_rates(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(0.001..0.999f64, 1..=max_len)
}

/// Adversarial rates for the bound-soundness sandwich: exact degenerate
/// masses (0, 1), denormal-adjacent rates (`1e-12`, `1 − 1e-12`), the
/// ½-mass neighbourhood (`0.5`, `0.5 ± 1e-12` — where the Paley–Zygmund
/// `γ → 1` and Cantelli `t − μ → 0` cancellations are sharpest) and
/// ordinary rates, mixed freely.
fn adversarial_rates(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    vec((0usize..10, 0.001..0.999f64), 1..=max_len).prop_map(|picks| {
        picks
            .into_iter()
            .map(|(which, r)| match which {
                0 => 0.0,
                1 => 1.0,
                2 => 1e-12,
                3 => 1.0 - 1e-12,
                4 => 0.5,
                5 => 0.5 - 1e-12,
                6 => 0.5 + 1e-12,
                _ => r,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn naive_dp_cba_agree(eps in error_rates(12)) {
        let naive = PoiBin::from_error_rates_naive(&eps);
        let dp = PoiBin::from_error_rates_dp(&eps);
        let cba = PoiBin::from_error_rates_cba(&eps);
        for k in 0..=eps.len() {
            prop_assert!((naive.prob_eq(k) - dp.prob_eq(k)).abs() < 1e-10);
            prop_assert!((naive.prob_eq(k) - cba.prob_eq(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn dp_cba_agree_medium(eps in error_rates(150)) {
        let dp = PoiBin::from_error_rates_dp(&eps);
        let cba = PoiBin::from_error_rates_cba(&eps);
        for k in 0..=eps.len() {
            prop_assert!((dp.prob_eq(k) - cba.prob_eq(k)).abs() < 1e-9,
                "k={} dp={} cba={}", k, dp.prob_eq(k), cba.prob_eq(k));
        }
    }

    #[test]
    fn pmf_is_a_distribution(eps in error_rates(100)) {
        let d = PoiBin::from_error_rates(&eps);
        let total: f64 = d.pmf().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(d.pmf().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn mean_variance_closed_forms(eps in error_rates(60)) {
        let d = PoiBin::from_error_rates(&eps);
        let mu: f64 = eps.iter().sum();
        let var: f64 = eps.iter().map(|e| e * (1.0 - e)).sum();
        prop_assert!((d.mean() - mu).abs() < 1e-9);
        prop_assert!((d.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn tail_is_monotone_decreasing(eps in error_rates(40)) {
        let d = PoiBin::from_error_rates(&eps);
        for k in 0..=eps.len() {
            prop_assert!(d.tail(k) + 1e-12 >= d.tail(k + 1));
        }
        prop_assert_eq!(d.tail(0), 1.0);
        prop_assert_eq!(d.tail(eps.len() + 1), 0.0);
    }

    #[test]
    fn tail_dp_matches_pmf_tail(eps in error_rates(40), t in 0usize..45) {
        let d = PoiBin::from_error_rates(&eps);
        prop_assert!((tail_probability_dp(&eps, t) - d.tail(t)).abs() < 1e-10);
    }

    #[test]
    fn incremental_push_matches_batch(eps in error_rates(50)) {
        let mut inc = PoiBin::empty();
        for &e in &eps {
            inc.push(e);
        }
        let batch = PoiBin::from_error_rates_dp(&eps);
        for k in 0..=eps.len() {
            prop_assert!((inc.prob_eq(k) - batch.prob_eq(k)).abs() < 1e-10);
        }
    }

    #[test]
    fn merge_is_commutative_and_joint(a in error_rates(20), b in error_rates(20)) {
        let da = PoiBin::from_error_rates(&a);
        let db = PoiBin::from_error_rates(&b);
        let ab = da.merge(&db);
        let ba = db.merge(&da);
        let mut joint_eps = a.clone();
        joint_eps.extend_from_slice(&b);
        let joint = PoiBin::from_error_rates(&joint_eps);
        for k in 0..=joint_eps.len() {
            prop_assert!((ab.prob_eq(k) - ba.prob_eq(k)).abs() < 1e-10);
            prop_assert!((ab.prob_eq(k) - joint.prob_eq(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn paley_zygmund_never_exceeds_exact(eps in error_rates(25), t in 1usize..13) {
        if let TailBound::Value(b) = paley_zygmund_lower_bound(&eps, t) {
            let exact = PoiBin::from_error_rates(&eps).tail(t);
            prop_assert!(b <= exact + 1e-9, "bound {} > exact {}", b, exact);
        }
    }

    #[test]
    fn upper_bounds_never_undershoot(eps in error_rates(25), t in 1usize..13) {
        let exact = PoiBin::from_error_rates(&eps).tail(t);
        if let TailBound::Value(b) = cantelli_upper_bound(&eps, t) {
            prop_assert!(b >= exact - 1e-9);
        }
        if let TailBound::Value(b) = chernoff_upper_bound(&eps, t) {
            prop_assert!(b >= exact - 1e-9);
        }
    }

    #[test]
    fn bounds_sandwich_exact_tail_on_adversarial_rates(eps in adversarial_rates(40)) {
        // The pruning soundness contract: whenever the bounds apply,
        //   paley_zygmund_lower ≤ exact Poisson-binomial tail ≤
        //   cantelli_upper / chernoff_upper,
        // including degenerate, denormal-adjacent and ½-mass rates.
        let d = PoiBin::from_error_rates(&eps);
        let n = eps.len();
        for t in [1usize, n / 2 + 1, n.max(1), n + 1] {
            let exact = d.tail(t);
            if let TailBound::Value(b) = paley_zygmund_lower_bound(&eps, t) {
                prop_assert!(b <= exact + 1e-9, "pz {} > exact {} (t={})", b, exact, t);
            }
            if let TailBound::Value(b) = cantelli_upper_bound(&eps, t) {
                prop_assert!(b >= exact - 1e-9, "cantelli {} < exact {} (t={})", b, exact, t);
            }
            if let TailBound::Value(b) = chernoff_upper_bound(&eps, t) {
                prop_assert!(b >= exact - 1e-9, "chernoff {} < exact {} (t={})", b, exact, t);
            }
        }
    }

    #[test]
    fn prefix_moment_sweep_matches_slices_on_adversarial_rates(eps in adversarial_rates(40)) {
        // The streaming kernel behind the bound-pruned AltrM sweep must
        // reproduce the slice entry points at every prefix, bits
        // included, no matter how degenerate the rates.
        let mut moments = PrefixMoments::new();
        for (i, &e) in eps.iter().enumerate() {
            moments.push(e);
            let prefix = &eps[..=i];
            let n = i + 1;
            for t in [1usize, n / 2 + 1, n] {
                prop_assert_eq!(moments.paley_zygmund_lower(t), paley_zygmund_lower_bound(prefix, t));
                prop_assert_eq!(moments.cantelli_upper(t), cantelli_upper_bound(prefix, t));
                prop_assert_eq!(moments.chernoff_upper(t), chernoff_upper_bound(prefix, t));
            }
        }
    }

    #[test]
    fn fft_round_trip(values in vec(-100.0..100.0f64, 1..64)) {
        let n = values.len().next_power_of_two();
        let mut data: Vec<Complex64> = values.iter().map(|&v| Complex64::from_real(v)).collect();
        data.resize(n, Complex64::ZERO);
        let original = data.clone();
        let plan = Fft::new(n);
        let mut buf = data;
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn conv_direct_equals_fft(a in vec(0.0..1.0f64, 1..80), b in vec(0.0..1.0f64, 1..80)) {
        let d = convolve_direct(&a, &b);
        let f = convolve_fft(&a, &b);
        prop_assert_eq!(d.len(), f.len());
        for (x, y) in d.iter().zip(&f) {
            prop_assert!((x - y).abs() < 1e-8, "{} vs {}", x, y);
        }
    }

    #[test]
    fn adding_a_certain_juror_shifts_tail(eps in error_rates(20), t in 1usize..10) {
        // Appending ε = 1 (always wrong) increments C by one deterministically:
        // Pr(C' >= t+1) == Pr(C >= t).
        let base = PoiBin::from_error_rates(&eps);
        let mut extended = base.clone();
        extended.push(1.0);
        prop_assert!((extended.tail(t + 1) - base.tail(t)).abs() < 1e-10);
        // Appending ε = 0 (never wrong) leaves every tail unchanged.
        let mut same = base.clone();
        same.push(0.0);
        prop_assert!((same.tail(t) - base.tail(t)).abs() < 1e-10);
    }

    #[test]
    fn remove_factor_inverts_push_everywhere(
        eps in error_rates(100),
        p in 0.0..1.0f64,
    ) {
        // remove_factor ∘ push ≈ identity whenever the guard admits p.
        let base = PoiBin::from_error_rates(&eps);
        let mut round_trip = base.clone();
        round_trip.push(p);
        match round_trip.remove_factor(p) {
            Ok(()) => {
                prop_assert_eq!(round_trip.n(), base.n());
                for k in 0..=base.n() {
                    prop_assert!(
                        (round_trip.prob_eq(k) - base.prob_eq(k)).abs() < 1e-10,
                        "p={} k={}: {} vs {}", p, k, round_trip.prob_eq(k), base.prob_eq(k)
                    );
                }
            }
            Err(DeconvError::IllConditioned { p: rejected }) => {
                prop_assert!((rejected - 0.5).abs() < DECONV_GUARD_BAND);
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn remove_factor_inverts_merge_into(
        eps in error_rates(60),
        i in any::<prop::sample::Index>(),
    ) {
        // Dividing one factor out of a merged distribution recovers the
        // distribution built without it, for any position of the factor.
        let i = i.index(eps.len());
        let rest: Vec<f64> = eps
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &e)| e)
            .collect();
        prop_assume!((eps[i] - 0.5).abs() >= DECONV_GUARD_BAND);
        let mut merged = PoiBin::empty();
        PoiBin::from_error_rates(&rest).merge_into(
            &PoiBin::from_error_rates(&[eps[i]]),
            &mut ConvScratch::new(),
            &mut merged,
        );
        merged.remove_factor(eps[i]).expect("guard admitted the factor");
        let want = PoiBin::from_error_rates(&rest);
        for k in 0..=rest.len() {
            prop_assert!(
                (merged.prob_eq(k) - want.prob_eq(k)).abs() < 1e-9,
                "i={} k={}: {} vs {}", i, k, merged.prob_eq(k), want.prob_eq(k)
            );
        }
    }

    #[test]
    fn replace_factor_matches_rebuild_prop(
        eps in error_rates(80),
        i in any::<prop::sample::Index>(),
        new_e in 0.001..0.999f64,
    ) {
        let i = i.index(eps.len());
        prop_assume!((eps[i] - 0.5).abs() >= DECONV_GUARD_BAND);
        let mut d = PoiBin::from_error_rates(&eps);
        d.replace_factor(eps[i], new_e).expect("guard admitted the factor");
        let mut swapped = eps.clone();
        swapped[i] = new_e;
        let want = PoiBin::from_error_rates_dp(&swapped);
        for k in 0..=eps.len() {
            prop_assert!(
                (d.prob_eq(k) - want.prob_eq(k)).abs() < 1e-9,
                "k={}: {} vs {}", k, d.prob_eq(k), want.prob_eq(k)
            );
        }
    }
}

/// The adversarial rates the deconvolution contract calls out: exact
/// endpoints are divided exactly, near-endpoint rates contract hard, and
/// everything within the guard band of ½ must be refused a priori.
#[test]
fn deconvolution_adversarial_rates() {
    let base = [0.12, 0.31, 0.07, 0.44 + DECONV_GUARD_BAND, 0.26];
    for &p in &[0.0f64, 1.0, 1e-12, 1.0 - 1e-12] {
        let without = PoiBin::from_error_rates_dp(&base);
        let mut with = without.clone();
        with.push(p);
        with.remove_factor(p).unwrap_or_else(|e| panic!("p={p}: {e}"));
        for k in 0..=without.n() {
            assert!((with.prob_eq(k) - without.prob_eq(k)).abs() < 1e-12, "p={p} k={k}");
        }
    }
    for &p in &[0.5f64, 0.5 - 1e-12, 0.5 + 1e-12] {
        let mut d = PoiBin::from_error_rates_dp(&base);
        d.push(p);
        let before = d.clone();
        assert_eq!(d.remove_factor(p), Err(DeconvError::IllConditioned { p }), "p={p}");
        assert_eq!(d, before, "p={p}: rejection must leave the pmf untouched");
    }
}
