//! Micro-benchmarks for the serving layer's hot paths: warm single
//! solves and warm batches vs the naive per-task solver calls they
//! replace. The `service_throughput` binary in `jury-bench` is the
//! companion that records `BENCH_service.json`; this bench gives
//! per-path numbers under the criterion harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::juror::{pool_from_rates_and_costs, Juror};
use jury_service::{DecisionTask, JuryService};
use std::hint::black_box;

fn pool(n: usize) -> Vec<Juror> {
    let quotes: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let u = (i as f64 * 0.6180339887498949) % 1.0;
            (0.02 + 0.93 * u, 0.05 + u * u)
        })
        .collect();
    pool_from_rates_and_costs(&quotes).expect("valid synthetic quotes")
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    for &n in &[100usize, 1_000] {
        let jurors = pool(n);

        group.bench_with_input(BenchmarkId::new("naive_altr_solve", n), &n, |b, _| {
            b.iter(|| AltrAlg::solve(black_box(&jurors), &AltrConfig::default()))
        });

        let mut service = JuryService::new();
        let id = service.create_pool(jurors.clone());
        service.warm_pool(id).expect("registered");
        let single = DecisionTask::altruism(id);
        group.bench_with_input(BenchmarkId::new("warm_single", n), &n, |b, _| {
            b.iter(|| service.solve(black_box(&single)))
        });

        let batch: Vec<DecisionTask> = (0..32)
            .map(|i| {
                if i % 3 == 2 {
                    DecisionTask::pay_as_you_go(id, 0.5 + (i % 7) as f64)
                } else {
                    DecisionTask::altruism(id)
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("warm_batch_32", n), &n, |b, _| {
            b.iter(|| service.solve_batch(black_box(&batch)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
