//! Pool sharding: million-candidate pools partitioned into K shards.
//!
//! A flat [`PoolCache`](crate) recomputes everything on any mutation; at
//! 10⁶ candidates one re-sort per juror update is already prohibitive,
//! and the eager JER profile is `O(N²)`. [`ShardedPool`] bounds the blast
//! radius of a mutation to the **owning shard**:
//!
//! * each shard caches its own ε-sorted order, greedy PayM frontier and a
//!   ladder of prefix Poisson-binomial pmfs over its sorted rates
//!   ([`PmfLadder`]);
//! * the global ε order / greedy order are K-way merges of the per-shard
//!   runs ([`jury_core::merge`]) — comparisons only, no float
//!   re-evaluation, so the merged permutations equal the flat sort's
//!   exactly and the solvers' presorted entry points produce
//!   **bit-identical** selections; the merged greedy order additionally
//!   carries the PayM budget [`Staircase`], answering warm PayM tasks by
//!   binary search instead of a greedy rescan;
//! * every mutation is *repaired in place*: an insert is one
//!   rank-insert per sorted run (shard and merged) plus one
//!   [`PoiBin::push`] per affected ladder checkpoint
//!   ([`PmfLadder::repair_insert`] — pushes never need deconvolution),
//!   an update or remove one remove + one rank-insert per run, a
//!   renumbering pass for removals, and a factor division per affected
//!   checkpoint ([`PmfLadder::repair_update`]) — so no shard re-sort, no
//!   K-way re-merge and no pmf re-convolution happen at all
//!   ("rescan-free repair"). Only the lazily-derived merged artefacts
//!   (AltrM selection, profile, staircase) are dropped, since the
//!   selection they summarise may genuinely change;
//! * shards hollowed out by skewed churn are *re-balanced* online
//!   ([`ShardedPool::rebalance`]): members move from the largest shards
//!   into degenerate ones, each move repairing both shards' runs and
//!   ladders in place. Re-balancing permutes shard **membership** only —
//!   the merged global orders are a property of the pool, not the
//!   partition, so they are untouched and bit-identity is preserved by
//!   construction.
//!
//! ## What merges bit-identically, and what does not
//!
//! Sorted **orders** merge bit-identically because the comparators are
//! total orders with an index tie-break: a sorted permutation under such
//! an order is unique, so "merge of per-shard sorts" and "one global
//! sort" are the same permutation and every downstream float operation
//! (the AltrALG prefix scan, the PayALG pair trials) is performed in the
//! identical sequence. Prefix **pmfs** do *not*: convolving per-shard
//! distributions ([`PoiBin::merge_into`]) is mathematically the same
//! distribution but a different float evaluation order than the flat
//! path's sequential [`PoiBin::push`]. Selections therefore always ride
//! the merged orders (bit-identity is contractual, enforced by
//! `tests/sharded_differential.rs`), while the merged-pmf path powers
//! the [`jer_probe`](crate::JuryService::jer_probe) point query, whose
//! contract is numerical equality within convolution rounding.

use crate::ladder::PmfLadder;
use jury_core::altr::{AltrConfig, JerProfile};
use jury_core::error::JuryError;
use jury_core::jer::JerEngine;
use jury_core::juror::Juror;
use jury_core::merge::kway_merge_by;
use jury_core::paym::{PayAlg, Staircase};
use jury_core::problem::Selection;
use jury_core::solver::{eps_cmp, SolverScratch};
use jury_numeric::conv::ConvScratch;
use jury_numeric::poibin::PoiBin;
use serde::{Deserialize, Error, Serialize, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// A shared handle to one position-space visit order (merged or flat).
pub(crate) type SharedOrder = Arc<Vec<usize>>;

/// When a [`JuryService`](crate::JuryService) shards its pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Pools with at least this many jurors are sharded (`usize::MAX`
    /// disables sharding — the default). Flat pools crossing the
    /// threshold through inserts are promoted in place; sharded pools
    /// shrinking below it stay sharded (hysteresis keeps warm state).
    pub threshold: usize,
    /// Number of shards K (clamped to ≥ 1) for pools that shard.
    pub shards: usize,
    /// A shard whose membership drops below this percentage of the mean
    /// shard size (pool size / K) is flagged *degenerate* — repeated
    /// removals have hollowed it out, so its run no longer amortises the
    /// per-shard bookkeeping. Each episode bumps
    /// [`ServiceStats::degenerate_shards`](crate::ServiceStats::degenerate_shards)
    /// once and (unless [`ShardConfig::rebalance`] is off) triggers an
    /// online re-balance that heals the shard in place.
    pub degenerate_percent: usize,
    /// Whether a degeneracy episode triggers online re-balancing
    /// ([`ShardedPool::rebalance`] via the registry): members are stolen
    /// from the largest shards into the degenerate ones, repairing both
    /// sides' runs and ladders in place. Membership permutation only —
    /// the merged orders (and therefore every selection) are unchanged.
    /// `false` reverts to detection-only.
    pub rebalance: bool,
}

impl Default for ShardConfig {
    /// Sharding disabled; 8 shards once enabled; shards flagged
    /// degenerate below 25% of the mean shard size and re-balanced
    /// online.
    fn default() -> Self {
        Self { threshold: usize::MAX, shards: 8, degenerate_percent: 25, rebalance: true }
    }
}

impl ShardConfig {
    /// Whether a pool of `len` jurors should be sharded under this
    /// configuration.
    pub fn applies(&self, len: usize) -> bool {
        len >= self.threshold
    }
}

/// Everything derived from one shard's membership snapshot. Held behind
/// an `Arc` so equal pools can adopt one interned build via
/// [`ShardLayer`]; every in-place repair goes through `Arc::make_mut`,
/// which is the per-shard copy-on-write boundary (a sole owner repairs
/// in place, an attached pool clones the one shard it touches first).
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardCache {
    /// The shard's members sorted by the global ε order (ties by pool
    /// position) — one sorted run of the global ε order.
    eps_order: Vec<usize>,
    /// ε values aligned with `eps_order`.
    eps: Vec<f64>,
    /// The shard's members sorted by the global greedy order — one
    /// sorted run of the global PayALG frontier.
    greedy_order: Vec<usize>,
    /// Prefix-pmf checkpoints over `eps`, repaired in place on juror
    /// mutations (see [`crate::ladder`]).
    ladder: PmfLadder,
}

impl ShardCache {
    /// Raw parts for the snapshot codec:
    /// `(eps_order, eps, greedy_order, ladder)`.
    pub(crate) fn raw_parts(&self) -> (&[usize], &[f64], &[usize], &PmfLadder) {
        (&self.eps_order, &self.eps, &self.greedy_order, &self.ladder)
    }

    /// Rebuilds a shard cache from decoded parts, checking only the
    /// run-local shape (aligned lengths, ascending ε run). Membership
    /// consistency against the owner vector is [`ShardLayer::from_raw`]'s
    /// job — it sees all shards at once.
    pub(crate) fn from_raw_parts(
        eps_order: Vec<usize>,
        eps: Vec<f64>,
        greedy_order: Vec<usize>,
        ladder: PmfLadder,
    ) -> Option<Self> {
        if eps_order.len() != eps.len() || eps_order.len() != greedy_order.len() {
            return None;
        }
        if eps.windows(2).any(|w| w[0].partial_cmp(&w[1]).is_none_or(|o| o.is_gt())) {
            return None; // incomparable (NaN) rates rejected too
        }
        Some(Self { eps_order, eps, greedy_order, ladder })
    }
}

/// One shard: an owned subset of pool positions plus its cached state.
#[derive(Debug, Clone, Default)]
struct Shard {
    /// Owned pool positions, ascending (append-only insertion, monotone
    /// renumbering on removal and rank-located re-balance moves all
    /// preserve this).
    members: Vec<usize>,
    cache: Option<Arc<ShardCache>>,
    /// Whether the shard is currently flagged degenerate (membership
    /// below the configured fraction of the mean shard size). The flag
    /// makes each degeneracy *episode* count once in the stats.
    degenerate: bool,
}

/// Global artefacts derived by merging the per-shard runs. The orders
/// are `Arc`'d so equal-content pools can adopt one interned merge from
/// the warm-artifact store ([`crate::store`]); in-place repairs go
/// through `Arc::make_mut`, which is exactly the copy-on-write boundary
/// (a sole owner repairs in place, an attached pool clones off first).
#[derive(Debug, Clone)]
struct MergedCache {
    /// K-way merge of the shards' `eps_order` runs — bit-identical to
    /// the flat pool's ε-sorted order.
    eps_order: Arc<Vec<usize>>,
    /// K-way merge of the shards' `greedy_order` runs — bit-identical to
    /// the flat pool's greedy order.
    greedy_order: Arc<Vec<usize>>,
    /// Lazily solved AltrM answer (the bound-pruned scan runs only when
    /// an AltrM task actually arrives), shared so batch replays can
    /// hand out the same allocation.
    altr: Option<crate::AltrAnswer>,
    /// Lazily computed odd-size JER profile (push-based over the merged
    /// order — bit-identical to the flat profile; `O(N²)`, on demand;
    /// `Arc`'d for store seeding/publication across equal pools).
    profile: Option<Arc<JerProfile>>,
    /// The PayM budget→selection staircase over `greedy_order`, recorded
    /// lazily per budget and cleared by every mutation (the greedy trace
    /// it certifies may change). Always per-pool — sharded staircases
    /// are not interned.
    staircase: Staircase,
}

/// What one mutation did to a sharded pool's warm state — folded into
/// the service's repair counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MutationEffect {
    /// Warm cached state was dropped *or* repaired.
    pub invalidated: bool,
    /// Sorted runs (shard and merged) were repaired in place instead of
    /// being dropped for re-sorting.
    pub orders_repaired: bool,
    /// The owning shard's pmf ladder was repaired by factor division.
    pub pmf_repaired: bool,
    /// The deconvolution guard declined and the ladder was rebuilt.
    pub pmf_rebuilt: bool,
    /// A materialised JER profile was repaired in place (flat pools).
    pub profile_repaired: bool,
    /// A juror insert was absorbed by in-place repair (rank-inserts plus
    /// ladder pushes) instead of dropping warm state.
    pub insert_repaired: bool,
    /// Shards that entered degeneracy because of this mutation.
    pub newly_degenerate: usize,
    /// Jurors moved between shards by the re-balance this mutation
    /// triggered (0 when no re-balance ran).
    pub rebalanced: usize,
}

/// A sharded pool's complete per-shard warm layer — the owner assignment
/// plus every shard's cache — interned in the warm-artifact store so
/// sequence-identical sharded pools share one build of the K sorted
/// runs and pmf ladders, not just the merged orders. Adoption requires
/// the owner vectors to match exactly (partitions may legitimately
/// diverge across different mutation histories even over equal
/// content); the caches are `Arc`-shared, and `Arc::make_mut` at every
/// repair site copies a shard off privately the moment its pool
/// mutates.
#[derive(Debug, Clone)]
pub(crate) struct ShardLayer {
    owner: Vec<u32>,
    caches: Vec<Arc<ShardCache>>,
}

impl ShardLayer {
    /// The owning shard per pool position.
    pub(crate) fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// The per-shard caches, indexed by shard.
    pub(crate) fn caches(&self) -> &[Arc<ShardCache>] {
        &self.caches
    }

    /// Rebuilds a layer from decoded parts, re-validating the partition
    /// invariants — snapshot bytes are untrusted and a malformed layer
    /// would index out of the pool or desynchronise the per-shard runs.
    /// Each pool position must be owned by an existing shard and appear
    /// in **exactly** that shard's ε run and greedy run (checked with
    /// per-order seen maps, so duplicates and omissions both reject).
    pub(crate) fn from_raw(owner: Vec<u32>, caches: Vec<Arc<ShardCache>>) -> Option<Self> {
        if owner.iter().any(|&o| (o as usize) >= caches.len()) {
            return None;
        }
        let total: usize = caches.iter().map(|c| c.eps_order.len()).sum();
        if total != owner.len() {
            return None;
        }
        let mut seen_eps = vec![false; owner.len()];
        let mut seen_greedy = vec![false; owner.len()];
        for (si, cache) in caches.iter().enumerate() {
            if cache.greedy_order.len() != cache.eps_order.len() {
                return None;
            }
            for (seen, order) in
                [(&mut seen_eps, &cache.eps_order), (&mut seen_greedy, &cache.greedy_order)]
            {
                for &p in order.iter() {
                    if p >= owner.len()
                        || owner[p] as usize != si
                        || std::mem::replace(&mut seen[p], true)
                    {
                        return None;
                    }
                }
            }
        }
        Some(Self { owner, caches })
    }
}

impl Serialize for ShardCache {
    fn to_value(&self) -> Value {
        Value::object([
            ("eps_order", self.eps_order.clone().to_value()),
            ("eps", self.eps.clone().to_value()),
            ("greedy_order", self.greedy_order.clone().to_value()),
            ("ladder", self.ladder.to_value()),
        ])
    }
}

impl Deserialize for ShardCache {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let field = |name: &str| value.get(name).ok_or_else(|| Error::missing_field(name));
        Self::from_raw_parts(
            Vec::<usize>::from_value(field("eps_order")?)?,
            Vec::<f64>::from_value(field("eps")?)?,
            Vec::<usize>::from_value(field("greedy_order")?)?,
            PmfLadder::from_value(field("ladder")?)?,
        )
        .ok_or_else(|| Error::custom("shard cache runs are misaligned or unsorted"))
    }
}

impl Serialize for ShardLayer {
    fn to_value(&self) -> Value {
        Value::object([
            ("owner", self.owner.clone().to_value()),
            ("caches", Value::Array(self.caches.iter().map(|c| c.to_value()).collect())),
        ])
    }
}

impl Deserialize for ShardLayer {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let owner = Vec::<u32>::from_value(
            value.get("owner").ok_or_else(|| Error::missing_field("owner"))?,
        )?;
        let Some(Value::Array(caches)) = value.get("caches") else {
            return Err(Error::expected("a layer with a `caches` array", value));
        };
        let caches = caches
            .iter()
            .map(|c| ShardCache::from_value(c).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_raw(owner, caches)
            .ok_or_else(|| Error::custom("shard layer violates the partition invariant"))
    }
}

/// What a [`ShardedPool::warm`] call rebuilt (test observability; the
/// service drives [`ShardedPool::warm_shards`] and
/// [`ShardedPool::ensure_merged`] separately so it can adopt interned
/// merged orders between the two).
#[cfg(test)]
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardWarmOutcome {
    /// Per-shard caches built by this warm.
    pub shards_built: usize,
    /// Whether the merged orders were rebuilt.
    pub merged_rebuilt: bool,
}

/// A pool partitioned into K shards. Owns no jurors — all methods take
/// the registry's juror slice; member values are positions into it.
#[derive(Debug, Clone)]
pub(crate) struct ShardedPool {
    shards: Vec<Shard>,
    /// Owning shard per pool position.
    owner: Vec<u32>,
    merged: Option<MergedCache>,
    /// FFT plans + transform buffers for probe-time pmf merging.
    conv: ConvScratch,
}

impl ShardedPool {
    /// Partitions positions `0..len` round-robin over `k` shards
    /// (clamped to ≥ 1); all caches start cold. Shards already under the
    /// `degenerate_percent` line at birth (a pool smaller than K leaves
    /// some shards empty from creation) have their degeneracy flag
    /// pre-armed, so only shards *hollowed out by later mutations* ever
    /// count as episodes.
    pub(crate) fn new(len: usize, k: usize, degenerate_percent: usize) -> Self {
        let k = k.max(1);
        let mut shards = vec![Shard::default(); k];
        let owner = (0..len).map(|i| (i % k) as u32).collect();
        for i in 0..len {
            shards[i % k].members.push(i);
        }
        let mut pool = Self { shards, owner, merged: None, conv: ConvScratch::new() };
        pool.refresh_degeneracy(degenerate_percent);
        pool
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Warm means the merged orders exist; the AltrM selection and the
    /// profile may still be lazily pending.
    pub(crate) fn is_warm(&self) -> bool {
        self.merged.is_some()
    }

    /// Registers the juror just appended to the pool (position =
    /// `len - 1`, so `jurors` is the **post-insert** pool), assigning it
    /// to the smallest shard. A warm owning shard is *repaired in
    /// place*: one rank-insert per sorted run (shard and merged) and one
    /// [`PoiBin::push`] per affected ladder checkpoint
    /// ([`PmfLadder::repair_insert`] — inserts never need
    /// deconvolution, so this repair cannot decline). Only the merged
    /// pool's lazily-derived artefacts (AltrM selection, profile,
    /// staircase) are dropped.
    pub(crate) fn insert(&mut self, jurors: &[Juror]) -> MutationEffect {
        let idx = jurors.len() - 1;
        debug_assert_eq!(idx, self.owner.len());
        let target = self
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.members.len())
            .map(|(i, _)| i)
            .expect("at least one shard");
        self.owner.push(target as u32);
        self.shards[target].members.push(idx);
        let mut effect = MutationEffect::default();
        match self.shards[target].cache.as_mut() {
            Some(cache) => {
                let cache = Arc::make_mut(cache);
                effect.invalidated = true;
                effect.orders_repaired = true;
                effect.insert_repaired = true;
                let r = rank_insert_eps(&mut cache.eps_order, Some(&mut cache.eps), jurors, idx);
                cache.ladder.repair_insert(&cache.eps, r);
                effect.pmf_repaired = true;
                rank_insert_greedy(&mut cache.greedy_order, jurors, idx);
                if let Some(merged) = self.merged.as_mut() {
                    rank_insert_eps(Arc::make_mut(&mut merged.eps_order), None, jurors, idx);
                    rank_insert_greedy(Arc::make_mut(&mut merged.greedy_order), jurors, idx);
                    merged.altr = None;
                    merged.profile = None;
                    merged.staircase.clear();
                }
            }
            None => {
                // Cold owning shard: nothing to repair, and the merged
                // orders (if any survived) lack the new juror — drop
                // them.
                effect.invalidated = self.merged.is_some();
                self.merged = None;
            }
        }
        effect
    }

    /// Repairs warm state after the juror at position `idx` was replaced
    /// in place: the owning shard's sorted runs get one remove + one
    /// rank-insert each, its pmf ladder one factor division per affected
    /// checkpoint, and the merged orders (if warm) the same remove +
    /// rank-insert — no re-sort, no re-merge, no re-convolution. Only the
    /// merged pool's lazily-derived artefacts (AltrM selection, profile,
    /// staircase) are dropped. `jurors` is the **post-update** pool and
    /// `old` the replaced juror (its keys locate the stale entries).
    pub(crate) fn update(&mut self, idx: usize, jurors: &[Juror], old: &Juror) -> MutationEffect {
        let s = self.owner[idx] as usize;
        let mut effect = MutationEffect::default();
        let Some(cache) = self.shards[s].cache.as_mut() else {
            // Cold shard: there is nothing to repair, and the merged
            // orders (if any survived) reference the stale ε — drop them.
            effect.invalidated = self.merged.is_some();
            self.merged = None;
            return effect;
        };
        let cache = Arc::make_mut(cache);
        effect.invalidated = true;
        effect.orders_repaired = true;
        let (r_old, r_new) =
            reinsert_eps(&mut cache.eps_order, Some(&mut cache.eps), jurors, idx, old);
        reinsert_greedy(&mut cache.greedy_order, jurors, idx, old);
        if cache.ladder.repair_update(&cache.eps, old.epsilon(), r_old, r_new) {
            effect.pmf_repaired = true;
        } else {
            effect.pmf_rebuilt = true;
        }
        if let Some(merged) = self.merged.as_mut() {
            reinsert_eps(Arc::make_mut(&mut merged.eps_order), None, jurors, idx, old);
            reinsert_greedy(Arc::make_mut(&mut merged.greedy_order), jurors, idx, old);
            merged.altr = None;
            merged.profile = None;
            merged.staircase.clear();
        }
        effect
    }

    /// Repairs warm state after position `idx` was removed (the registry
    /// does `Vec::remove`, shifting later positions down by one). The
    /// owning shard's runs and ladder are repaired in place like
    /// [`ShardedPool::update`]; every shard (and the merged orders, which
    /// stay warm) is then *renumbered* — decrementing positions greater
    /// than `idx` preserves each run's relative order under both
    /// comparators, so no sorted run, ε value or pmf checkpoint is ever
    /// recomputed. `jurors` is the **pre-removal** pool (the victim
    /// still present at `idx`): the stale entries are binary-located by
    /// rank, not scanned.
    pub(crate) fn remove(&mut self, idx: usize, jurors: &[Juror]) -> MutationEffect {
        let s = self.owner.remove(idx) as usize;
        let mut effect = MutationEffect::default();
        if let Some(cache) = self.shards[s].cache.as_mut() {
            let cache = Arc::make_mut(cache);
            effect.invalidated = true;
            effect.orders_repaired = true;
            let r = cache.eps_order.partition_point(|&j| eps_cmp(jurors, j, idx) == Ordering::Less);
            debug_assert_eq!(
                cache.eps_order.iter().position(|&m| m == idx),
                Some(r),
                "binary ε rank must agree with the linear scan"
            );
            let old_e = cache.eps[r];
            cache.eps_order.remove(r);
            cache.eps.remove(r);
            let g = cache
                .greedy_order
                .partition_point(|&j| PayAlg::greedy_cmp(jurors, j, idx) == Ordering::Less);
            debug_assert_eq!(
                cache.greedy_order.iter().position(|&m| m == idx),
                Some(g),
                "binary greedy rank must agree with the linear scan"
            );
            cache.greedy_order.remove(g);
            if cache.ladder.repair_remove(&cache.eps, old_e, r) {
                effect.pmf_repaired = true;
            } else {
                effect.pmf_rebuilt = true;
            }
        }
        for (si, shard) in self.shards.iter_mut().enumerate() {
            if si == s {
                shard.members.retain(|&m| m != idx);
            }
            for m in &mut shard.members {
                if *m > idx {
                    *m -= 1;
                }
            }
            if let Some(cache) = shard.cache.as_mut() {
                let cache = Arc::make_mut(cache);
                for m in &mut cache.eps_order {
                    if *m > idx {
                        *m -= 1;
                    }
                }
                for m in &mut cache.greedy_order {
                    if *m > idx {
                        *m -= 1;
                    }
                }
            }
        }
        if effect.invalidated {
            if let Some(merged) = self.merged.as_mut() {
                renumber_out(Arc::make_mut(&mut merged.eps_order), idx);
                renumber_out(Arc::make_mut(&mut merged.greedy_order), idx);
                merged.altr = None;
                merged.profile = None;
                merged.staircase.clear();
            }
        } else {
            // The owning shard was cold, so the merged orders (if any)
            // were already stale; drop them.
            effect.invalidated = self.merged.is_some();
            self.merged = None;
        }
        effect
    }

    /// Builds any cold shard caches and (re)merges the global orders.
    #[cfg(test)]
    pub(crate) fn warm(&mut self, jurors: &[Juror]) -> ShardWarmOutcome {
        let mut outcome =
            ShardWarmOutcome { shards_built: self.warm_shards(jurors), merged_rebuilt: false };
        if self.merged.is_none() {
            self.ensure_merged(jurors);
            outcome.merged_rebuilt = true;
        }
        outcome
    }

    /// Builds any cold shard caches, returning how many were built. When
    /// more than one shard is dirty (bulk ingest, rebalance) the
    /// independent per-shard rebuilds fan out over scoped threads, the
    /// same pattern `jury_core::exact` uses for its subtree search.
    pub(crate) fn warm_shards(&mut self, jurors: &[Juror]) -> usize {
        let cold: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cache.is_none())
            .map(|(i, _)| i)
            .collect();
        if cold.len() == 1 {
            let si = cold[0];
            self.shards[si].cache =
                Some(Arc::new(build_shard_cache(jurors, &self.shards[si].members)));
        } else if cold.len() > 1 {
            let workers =
                std::thread::available_parallelism().map(usize::from).unwrap_or(1).min(cold.len());
            let chunk = cold.len().div_ceil(workers);
            let shards = &self.shards;
            let built: Vec<(usize, ShardCache)> = std::thread::scope(|scope| {
                let handles: Vec<_> = cold
                    .chunks(chunk)
                    .map(|ids| {
                        scope.spawn(move || {
                            ids.iter()
                                .map(|&si| (si, build_shard_cache(jurors, &shards[si].members)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("shard rebuild worker panicked"))
                    .collect()
            });
            for (si, cache) in built {
                self.shards[si].cache = Some(Arc::new(cache));
            }
        }
        cold.len()
    }

    /// The per-shard warm layer as shared handles, for publication to
    /// the warm-artifact store. `None` while any shard is cold (a
    /// partial layer is not worth interning — the attacher would rebuild
    /// the holes anyway).
    pub(crate) fn export_shard_layer(&self) -> Option<ShardLayer> {
        let caches: Option<Vec<Arc<ShardCache>>> =
            self.shards.iter().map(|s| s.cache.clone()).collect();
        Some(ShardLayer { owner: self.owner.clone(), caches: caches? })
    }

    /// Installs an interned per-shard layer (an identical-content pool's
    /// builds) into this pool's cold shards, returning how many were
    /// adopted. Requires the partitions to agree exactly — the owner
    /// vectors are compared, not trusted — because per-shard runs are a
    /// property of the partition, unlike the merged orders. Warm shards
    /// keep their own (possibly repaired) caches.
    pub(crate) fn adopt_shard_layer(&mut self, layer: &ShardLayer) -> usize {
        if layer.caches.len() != self.shards.len() || layer.owner != self.owner {
            return 0;
        }
        let mut adopted = 0usize;
        for (shard, cache) in self.shards.iter_mut().zip(&layer.caches) {
            if shard.cache.is_none() {
                shard.cache = Some(cache.clone());
                adopted += 1;
            }
        }
        adopted
    }

    /// Moves members from the largest shards into degenerate ones until
    /// no shard sits under the [`ShardConfig::degenerate_percent`] line
    /// (or no move can make progress), returning how many jurors moved.
    /// Each move repairs both shards in place ([`Self::move_member`]):
    /// one rank-remove + one rank-insert per sorted run, a factor
    /// division / push per affected ladder checkpoint. The merged
    /// orders are untouched — re-balancing permutes shard membership
    /// only, and the K-way merge of the new runs is the same global
    /// permutation — so every selection stays bit-identical across the
    /// episode.
    pub(crate) fn rebalance(&mut self, jurors: &[Juror], percent: usize) -> usize {
        let k = self.shards.len();
        let total = self.owner.len();
        let mut moved = 0usize;
        loop {
            let mut dest: Option<(usize, usize)> = None;
            let mut src = 0usize;
            for (i, shard) in self.shards.iter().enumerate() {
                let len = shard.members.len();
                if len * k * 100 < percent * total && dest.is_none_or(|(_, dl)| len < dl) {
                    dest = Some((i, len));
                }
                if len > self.shards[src].members.len() {
                    src = i;
                }
            }
            let Some((d, dl)) = dest else { break };
            let sl = self.shards[src].members.len();
            if src == d || sl <= dl + 1 {
                break; // a move would only swap the imbalance around
            }
            let m = *self.shards[src].members.last().expect("largest shard is non-empty");
            self.move_member(m, src, d, jurors);
            moved += 1;
        }
        moved
    }

    /// Moves pool position `m` from shard `src` to shard `dst`,
    /// repairing both shards' sorted runs and pmf ladders in place. The
    /// removal side mirrors [`Self::remove`] without the renumbering
    /// (the pool itself is unchanged); the insertion side mirrors
    /// [`Self::insert`]. Cold shards just update membership.
    fn move_member(&mut self, m: usize, src: usize, dst: usize, jurors: &[Juror]) {
        self.owner[m] = dst as u32;
        let members = &mut self.shards[src].members;
        let p = members.binary_search(&m).expect("member of the source shard");
        members.remove(p);
        if let Some(cache) = self.shards[src].cache.as_mut() {
            let cache = Arc::make_mut(cache);
            let r = cache.eps_order.partition_point(|&j| eps_cmp(jurors, j, m) == Ordering::Less);
            debug_assert_eq!(cache.eps_order.get(r), Some(&m), "rank must locate the mover");
            let old_e = cache.eps[r];
            cache.eps_order.remove(r);
            cache.eps.remove(r);
            // A declined deconvolution rebuilds the ladder internally —
            // either way the source shard stays warm.
            let _ = cache.ladder.repair_remove(&cache.eps, old_e, r);
            let g = cache
                .greedy_order
                .partition_point(|&j| PayAlg::greedy_cmp(jurors, j, m) == Ordering::Less);
            debug_assert_eq!(cache.greedy_order.get(g), Some(&m), "rank must locate the mover");
            cache.greedy_order.remove(g);
        }
        let members = &mut self.shards[dst].members;
        let p = members.binary_search(&m).expect_err("not yet a member of the destination");
        members.insert(p, m);
        if let Some(cache) = self.shards[dst].cache.as_mut() {
            let cache = Arc::make_mut(cache);
            let r = rank_insert_eps(&mut cache.eps_order, Some(&mut cache.eps), jurors, m);
            cache.ladder.repair_insert(&cache.eps, r);
            rank_insert_greedy(&mut cache.greedy_order, jurors, m);
        }
    }

    /// K-way-merges the per-shard runs into the global orders if they
    /// are missing. Requires warm shards ([`ShardedPool::warm_shards`]).
    pub(crate) fn ensure_merged(&mut self, jurors: &[Juror]) {
        if self.merged.is_some() {
            return;
        }
        let eps_runs: Vec<&[usize]> =
            self.shards.iter().map(|s| cache(s).eps_order.as_slice()).collect();
        let mut eps_order = Vec::new();
        kway_merge_by(&eps_runs, |a, b| eps_cmp(jurors, a, b), &mut eps_order);
        let greedy_runs: Vec<&[usize]> =
            self.shards.iter().map(|s| cache(s).greedy_order.as_slice()).collect();
        let mut greedy_order = Vec::new();
        kway_merge_by(&greedy_runs, |a, b| PayAlg::greedy_cmp(jurors, a, b), &mut greedy_order);
        self.merged = Some(MergedCache {
            eps_order: Arc::new(eps_order),
            greedy_order: Arc::new(greedy_order),
            altr: None,
            profile: None,
            staircase: Staircase::new(),
        });
    }

    /// Installs interned merged orders (an identical-content pool's
    /// K-way merge, adopted from the warm-artifact store) instead of
    /// re-merging. The global sort is partition-independent, so adopted
    /// orders are bit-identical to the merge this pool would perform —
    /// only the per-shard caches remain pool-local. The lazy artefacts
    /// start empty; the service seeds them from the store entry on
    /// demand.
    pub(crate) fn adopt_merged(&mut self, eps_order: SharedOrder, greedy_order: SharedOrder) {
        self.merged = Some(MergedCache {
            eps_order,
            greedy_order,
            altr: None,
            profile: None,
            staircase: Staircase::new(),
        });
    }

    /// The merged orders as shared handles, for publication to the
    /// warm-artifact store.
    pub(crate) fn merged_order_arcs(&self) -> Option<(SharedOrder, SharedOrder)> {
        self.merged.as_ref().map(|m| (m.eps_order.clone(), m.greedy_order.clone()))
    }

    /// Installs an AltrM answer solved over an identical merged order
    /// (a store entry's) without re-running the scan.
    pub(crate) fn seed_altr(&mut self, answer: crate::AltrAnswer) {
        if let Some(merged) = self.merged.as_mut() {
            merged.altr = Some(answer);
        }
    }

    /// Whether the lazily-derived profile is already present.
    pub(crate) fn has_profile(&self) -> bool {
        self.merged.as_ref().is_some_and(|m| m.profile.is_some())
    }

    /// Installs a profile built over an identical merged order.
    pub(crate) fn seed_profile(&mut self, profile: Arc<JerProfile>) {
        if let Some(merged) = self.merged.as_mut() {
            merged.profile = Some(profile);
        }
    }

    /// The merged ε order, if warm.
    pub(crate) fn merged_eps_order(&self) -> Option<&[usize]> {
        self.merged.as_ref().map(|m| m.eps_order.as_slice())
    }

    /// The merged greedy order, if warm.
    pub(crate) fn merged_greedy_order(&self) -> Option<&[usize]> {
        self.merged.as_ref().map(|m| m.greedy_order.as_slice())
    }

    /// The merged greedy order together with its budget staircase, for
    /// the mutable PayM solve path. Requires a prior [`Self::warm`].
    pub(crate) fn paym_cache(&mut self) -> Option<(&[usize], &mut Staircase)> {
        self.merged.as_mut().map(|m| {
            let MergedCache { greedy_order, staircase, .. } = m;
            (greedy_order.as_slice(), staircase)
        })
    }

    /// Read-only staircase replay for `budget` (the worker path of
    /// batched solving), if warm and covered.
    pub(crate) fn staircase_lookup(&self, budget: f64) -> Option<Result<Selection, JuryError>> {
        self.merged.as_ref().and_then(|m| m.staircase.lookup(budget))
    }

    /// Whether the warm staircase already covers `budget`.
    pub(crate) fn staircase_covers(&self, budget: f64) -> bool {
        self.merged.as_ref().is_some_and(|m| m.staircase.covers(budget))
    }

    /// The cached AltrM selection, if already solved.
    pub(crate) fn cached_altr(&self) -> Option<&crate::AltrAnswer> {
        self.merged.as_ref().and_then(|m| m.altr.as_ref())
    }

    /// Solves AltrM over the merged order (bound-pruned under the
    /// default strategy — members/JER/cost bit-identical to the flat
    /// path) and caches the result. Requires a prior [`Self::warm`].
    pub(crate) fn ensure_altr(
        &mut self,
        jurors: &[Juror],
        config: &AltrConfig,
        scratch: &mut SolverScratch,
    ) -> &crate::AltrAnswer {
        let merged = self.merged.as_mut().expect("warm() must precede ensure_altr");
        if merged.altr.is_none() {
            merged.altr =
                Some(crate::solve_altr_cached(jurors, &merged.eps_order, config, scratch));
        }
        merged.altr.as_ref().expect("filled above")
    }

    /// Re-evaluates every shard's degeneracy flag against the current
    /// mean shard size; returns how many shards *entered* degeneracy
    /// (each episode counts once — a shard recovering above the line
    /// re-arms its flag). `O(K)`, called by the registry after
    /// membership-changing mutations.
    pub(crate) fn refresh_degeneracy(&mut self, percent: usize) -> usize {
        let k = self.shards.len();
        let total = self.owner.len();
        let mut newly = 0usize;
        for shard in &mut self.shards {
            // members < (percent/100) · (total/K), in integer arithmetic.
            let degenerate = shard.members.len() * k * 100 < percent * total;
            if degenerate && !shard.degenerate {
                newly += 1;
            }
            shard.degenerate = degenerate;
        }
        newly
    }

    /// The odd-size JER profile over the merged order, computed lazily
    /// with the same sequential pushes as the flat path (bit-identical,
    /// and therefore shareable across equal-content pools — the service
    /// seeds/publishes it through the warm-artifact store). Requires a
    /// prior [`Self::warm`].
    pub(crate) fn ensure_profile(&mut self, jurors: &[Juror]) -> &Arc<JerProfile> {
        let merged = self.merged.as_mut().expect("warm() must precede ensure_profile");
        if merged.profile.is_none() {
            let eps: Vec<f64> = merged.eps_order.iter().map(|&i| jurors[i].epsilon()).collect();
            merged.profile = Some(Arc::new(JerProfile::build(&eps)));
        }
        merged.profile.as_ref().expect("filled above")
    }

    /// JER of the best `n`-juror jury via per-shard prefix pmfs merged by
    /// convolution: the global best-`n` prefix is split into per-shard
    /// counts, each shard resumes from its nearest ladder checkpoint (or
    /// batch-builds beyond the ladder) and the K distributions are
    /// combined with [`PoiBin::merge_into`]. `O(n·spacing + n log n)`
    /// instead of the flat path's `O(n²)` pushes — the payoff of keeping
    /// pmfs per shard. Numerically equal to the flat evaluation within
    /// convolution rounding (not bit-identical; see the module docs).
    ///
    /// Requires a prior [`Self::warm`]; `n` must be `1..=len`.
    pub(crate) fn jer_probe(&mut self, n: usize) -> f64 {
        let merged = self.merged.as_ref().expect("warm() must precede jer_probe");
        let mut counts = vec![0usize; self.shards.len()];
        for &g in &merged.eps_order[..n] {
            counts[self.owner[g] as usize] += 1;
        }
        let mut acc = PoiBin::empty();
        let mut flipped = PoiBin::empty();
        let mut shard_pmf = PoiBin::empty();
        for (shard, &c) in self.shards.iter().zip(&counts) {
            if c == 0 {
                continue;
            }
            let cache = cache(shard);
            cache.ladder.prefix_into(&cache.eps, c, &mut shard_pmf);
            acc.merge_into(&shard_pmf, &mut self.conv, &mut flipped);
            std::mem::swap(&mut acc, &mut flipped);
        }
        acc.tail(JerEngine::majority_threshold(n))
    }
}

/// One remove + one rank-insert of `idx` in an ε-sorted run after its
/// juror changed: the stale entry is binary-located with the
/// pre-mutation rate, the fresh rank found under the post-mutation pool
/// — the same permutation a full re-sort would produce, since
/// [`eps_cmp`] is total. Maintains the aligned ε values when given;
/// returns `(old_rank, new_rank)` for ladder repair.
pub(crate) fn reinsert_eps(
    order: &mut Vec<usize>,
    mut eps: Option<&mut Vec<f64>>,
    jurors: &[Juror],
    idx: usize,
    old: &Juror,
) -> (usize, usize) {
    let r_old = locate_eps(order, jurors, idx, old.epsilon());
    order.remove(r_old);
    if let Some(eps) = eps.as_deref_mut() {
        eps.remove(r_old);
    }
    let r_new = order.partition_point(|&j| eps_cmp(jurors, j, idx) == Ordering::Less);
    order.insert(r_new, idx);
    if let Some(eps) = eps {
        eps.insert(r_new, jurors[idx].epsilon());
    }
    (r_old, r_new)
}

/// The [`reinsert_eps`] of the greedy order: one remove + one
/// rank-insert under [`PayAlg::greedy_cmp`].
pub(crate) fn reinsert_greedy(order: &mut Vec<usize>, jurors: &[Juror], idx: usize, old: &Juror) {
    let g_old = locate_greedy(order, jurors, idx, old);
    order.remove(g_old);
    let g_new = order.partition_point(|&j| PayAlg::greedy_cmp(jurors, j, idx) == Ordering::Less);
    order.insert(g_new, idx);
}

/// Rank-inserts pool position `idx` into an ε-sorted run — the insert
/// half of [`reinsert_eps`], shared by the flat, per-shard and merged
/// insert repairs. Maintains the aligned ε values when given; returns
/// the new rank for ladder repair.
pub(crate) fn rank_insert_eps(
    order: &mut Vec<usize>,
    eps: Option<&mut Vec<f64>>,
    jurors: &[Juror],
    idx: usize,
) -> usize {
    let r = order.partition_point(|&j| eps_cmp(jurors, j, idx) == Ordering::Less);
    order.insert(r, idx);
    if let Some(eps) = eps {
        eps.insert(r, jurors[idx].epsilon());
    }
    r
}

/// Rank-inserts pool position `idx` into a greedy-sorted run, returning
/// the new rank.
pub(crate) fn rank_insert_greedy(order: &mut Vec<usize>, jurors: &[Juror], idx: usize) -> usize {
    let g = order.partition_point(|&j| PayAlg::greedy_cmp(jurors, j, idx) == Ordering::Less);
    order.insert(g, idx);
    g
}

/// Binary-locates position `idx` in an ε-sorted run using the juror's
/// *pre-mutation* rate (the run is still sorted under it; probing any
/// other entry reads the pool, where only `idx` changed).
fn locate_eps(order: &[usize], jurors: &[Juror], idx: usize, old_eps: f64) -> usize {
    let pos = order.partition_point(|&j| {
        let (e, i) = if j == idx { (old_eps, idx) } else { (jurors[j].epsilon(), j) };
        e.total_cmp(&old_eps).then(i.cmp(&idx)) == Ordering::Less
    });
    debug_assert_eq!(order.get(pos), Some(&idx), "stale entry must sit at its old rank");
    pos
}

/// Binary-locates position `idx` in a greedy-sorted run using the
/// juror's pre-mutation keys (same construction as [`locate_eps`], over
/// [`PayAlg::greedy_cmp`]'s full tie-break chain).
fn locate_greedy(order: &[usize], jurors: &[Juror], idx: usize, old: &Juror) -> usize {
    let (ok, oc, oe) = (old.greedy_key(), old.cost, old.epsilon());
    let pos = order.partition_point(|&j| {
        let (k, c, e, i) = if j == idx {
            (ok, oc, oe, idx)
        } else {
            (jurors[j].greedy_key(), jurors[j].cost, jurors[j].epsilon(), j)
        };
        k.total_cmp(&ok).then(c.total_cmp(&oc)).then(e.total_cmp(&oe)).then(i.cmp(&idx))
            == Ordering::Less
    });
    debug_assert_eq!(order.get(pos), Some(&idx), "stale entry must sit at its old rank");
    pos
}

/// Removes `idx` from a position list and renumbers the survivors
/// (positions greater than `idx` shift down by one), preserving order,
/// in one pass.
pub(crate) fn renumber_out(order: &mut Vec<usize>, idx: usize) {
    order.retain_mut(|v| {
        if *v == idx {
            return false;
        }
        if *v > idx {
            *v -= 1;
        }
        true
    });
}

/// Shorthand for a shard's cache that `warm` has guaranteed to exist.
fn cache(shard: &Shard) -> &ShardCache {
    shard.cache.as_deref().expect("shard warmed")
}

/// Sorts one shard's members under both global comparators and lays the
/// prefix-pmf checkpoint ladder.
fn build_shard_cache(jurors: &[Juror], members: &[usize]) -> ShardCache {
    let mut eps_order = members.to_vec();
    eps_order.sort_by(|&a, &b| eps_cmp(jurors, a, b));
    let eps: Vec<f64> = eps_order.iter().map(|&i| jurors[i].epsilon()).collect();
    let mut greedy_order = members.to_vec();
    greedy_order.sort_by(|&a, &b| PayAlg::greedy_cmp(jurors, a, b));
    let ladder = PmfLadder::build(&eps);
    ShardCache { eps_order, eps, greedy_order, ladder }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::juror::pool_from_rates_and_costs;
    use jury_core::solver::sorted_order_into;

    fn pool(n: usize) -> Vec<Juror> {
        let quotes: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let u = (i as f64 * 0.6180339887498949) % 1.0;
                (0.02 + 0.93 * u, ((i * 13) % 7) as f64 / 7.0)
            })
            .collect();
        pool_from_rates_and_costs(&quotes).unwrap()
    }

    #[test]
    fn merged_orders_match_flat_sorts_across_k_and_sizes() {
        for &n in &[1usize, 2, 5, 17, 100] {
            for &k in &[1usize, 2, 7, 16] {
                let jurors = pool(n);
                let mut sp = ShardedPool::new(n, k, 25);
                sp.warm(&jurors);
                let mut flat_eps = Vec::new();
                sorted_order_into(&jurors, &mut flat_eps);
                assert_eq!(sp.merged_eps_order().unwrap(), flat_eps.as_slice(), "n={n} k={k}");
                let mut flat_greedy = Vec::new();
                PayAlg::greedy_order_into(&jurors, &mut flat_greedy);
                assert_eq!(
                    sp.merged_greedy_order().unwrap(),
                    flat_greedy.as_slice(),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn remove_repairs_in_place_and_renumbers() {
        let mut jurors = pool(40);
        let mut sp = ShardedPool::new(40, 4, 25);
        sp.warm(&jurors);
        let victim = 11; // shard 11 % 4 == 3
        let effect = sp.remove(victim, &jurors);
        jurors.remove(victim);
        assert!(effect.invalidated && effect.orders_repaired);
        // Every shard stays warm — the owning one was repaired, not
        // dropped — and the merged orders survive the renumbering.
        assert!(sp.shards.iter().all(|s| s.cache.is_some()));
        assert!(sp.is_warm());
        let outcome = sp.warm(&jurors);
        assert_eq!(outcome.shards_built, 0);
        assert!(!outcome.merged_rebuilt);
        let mut flat_eps = Vec::new();
        sorted_order_into(&jurors, &mut flat_eps);
        assert_eq!(sp.merged_eps_order().unwrap(), flat_eps.as_slice());
        let mut flat_greedy = Vec::new();
        PayAlg::greedy_order_into(&jurors, &mut flat_greedy);
        assert_eq!(sp.merged_greedy_order().unwrap(), flat_greedy.as_slice());
    }

    #[test]
    fn update_repairs_orders_and_ladder_in_place() {
        use jury_core::juror::ErrorRate;
        let mut jurors = pool(300);
        let mut sp = ShardedPool::new(300, 4, 25);
        sp.warm(&jurors);
        let probe_direct = |jurors: &[Juror], n: usize| {
            let mut order = Vec::new();
            sorted_order_into(jurors, &mut order);
            let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
            PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n))
        };
        for (step, &(idx, e)) in [(17usize, 0.9f64), (4, 0.021), (120, 0.44)].iter().enumerate() {
            let old = jurors[idx];
            jurors[idx] = Juror::new(900 + step as u32, ErrorRate::new(e).unwrap(), 0.3);
            let effect = sp.update(idx, &jurors, &old);
            assert!(effect.invalidated && effect.orders_repaired, "step {step}");
            assert!(effect.pmf_repaired || effect.pmf_rebuilt, "step {step}");
            // Repaired merged orders equal full re-sorts, bit for bit.
            let mut flat_eps = Vec::new();
            sorted_order_into(&jurors, &mut flat_eps);
            assert_eq!(sp.merged_eps_order().unwrap(), flat_eps.as_slice(), "step {step}");
            let mut flat_greedy = Vec::new();
            PayAlg::greedy_order_into(&jurors, &mut flat_greedy);
            assert_eq!(sp.merged_greedy_order().unwrap(), flat_greedy.as_slice(), "step {step}");
            // Repaired ladders keep probes within the documented bound.
            for n in [1usize, 63, 65, 129, 299] {
                let direct = probe_direct(&jurors, n);
                assert!(
                    (sp.jer_probe(n) - direct).abs() < crate::ladder::PROBE_REPAIR_TOL,
                    "step {step} n={n}"
                );
            }
        }
    }

    #[test]
    fn insert_repairs_the_owning_shard_in_place() {
        let mut jurors = pool(9);
        let mut sp = ShardedPool::new(9, 4, 25); // shard sizes 3,2,2,2
        sp.warm(&jurors);
        jurors.push(jurors[0]);
        let effect = sp.insert(&jurors);
        assert_eq!(sp.owner[9], 1, "smallest shard with lowest id wins");
        assert!(effect.invalidated && effect.orders_repaired && effect.insert_repaired);
        assert!(effect.pmf_repaired);
        // Nothing went cold: the owning shard was repaired and the
        // merged orders absorbed the newcomer by rank-insert.
        assert!(sp.shards.iter().all(|s| s.cache.is_some()));
        let outcome = sp.warm(&jurors);
        assert_eq!(outcome.shards_built, 0);
        assert!(!outcome.merged_rebuilt);
        let mut flat_eps = Vec::new();
        sorted_order_into(&jurors, &mut flat_eps);
        assert_eq!(sp.merged_eps_order().unwrap(), flat_eps.as_slice());
        let mut flat = Vec::new();
        PayAlg::greedy_order_into(&jurors, &mut flat);
        assert_eq!(sp.merged_greedy_order().unwrap(), flat.as_slice());
    }

    #[test]
    fn sustained_ingest_keeps_probes_within_tolerance() {
        let mut jurors = pool(200);
        let mut sp = ShardedPool::new(200, 4, 25);
        sp.warm(&jurors);
        for step in 0..150 {
            jurors.push(jurors[(step * 7) % 50]);
            let effect = sp.insert(&jurors);
            assert!(effect.insert_repaired, "warm inserts must repair, step {step}");
        }
        let mut order = Vec::new();
        sorted_order_into(&jurors, &mut order);
        let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
        for n in [1usize, 63, 65, 129, 349] {
            let direct = PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n));
            assert!((sp.jer_probe(n) - direct).abs() < crate::ladder::PROBE_REPAIR_TOL, "n={n}");
        }
    }

    #[test]
    fn bulk_cold_shards_build_in_parallel() {
        // A creation-cold pool has every shard dirty at once; the warm-up
        // fans the independent builds over scoped threads.
        let jurors = pool(88);
        let mut sp = ShardedPool::new(88, 8, 25);
        let outcome = sp.warm(&jurors);
        assert_eq!(outcome.shards_built, 8);
        // The threaded rebuild must be invisible in the results.
        let mut flat_eps = Vec::new();
        sorted_order_into(&jurors, &mut flat_eps);
        assert_eq!(sp.merged_eps_order().unwrap(), flat_eps.as_slice());
        let mut flat_greedy = Vec::new();
        PayAlg::greedy_order_into(&jurors, &mut flat_greedy);
        assert_eq!(sp.merged_greedy_order().unwrap(), flat_greedy.as_slice());
    }

    #[test]
    fn rebalance_heals_degeneracy_without_touching_merged_orders() {
        let mut jurors = pool(60);
        let mut sp = ShardedPool::new(60, 4, 25);
        sp.warm(&jurors);
        // Hollow out shard 2 until it is degenerate.
        while sp.shards[2].members.len() > 1 {
            let victim = *sp.shards[2].members.last().unwrap();
            sp.remove(victim, &jurors);
            jurors.remove(victim);
        }
        assert!(sp.refresh_degeneracy(25) > 0, "the hollowed shard must be flagged");
        let merged_before: Vec<usize> = sp.merged_eps_order().unwrap().to_vec();
        let greedy_before: Vec<usize> = sp.merged_greedy_order().unwrap().to_vec();
        let moved = sp.rebalance(&jurors, 25);
        assert!(moved > 0, "the episode must move jurors");
        sp.refresh_degeneracy(25);
        assert!(sp.shards.iter().all(|s| !s.degenerate), "re-balance must heal the flag");
        // Membership permutation only: merged orders byte-for-byte
        // unchanged, every shard still warm and internally consistent.
        assert_eq!(sp.merged_eps_order().unwrap(), merged_before.as_slice());
        assert_eq!(sp.merged_greedy_order().unwrap(), greedy_before.as_slice());
        assert!(sp.shards.iter().all(|s| s.cache.is_some()));
        for (si, shard) in sp.shards.iter().enumerate() {
            assert!(shard.members.windows(2).all(|w| w[0] < w[1]), "members ascending");
            for &m in &shard.members {
                assert_eq!(sp.owner[m] as usize, si, "owner table tracks the move");
            }
            let c = cache(shard);
            assert_eq!(c.eps_order.len(), shard.members.len());
            assert_eq!(c.greedy_order.len(), shard.members.len());
        }
        // Rebuilding from scratch agrees with the repaired runs.
        let mut fresh = ShardedPool::new(0, 4, 25);
        fresh.owner = sp.owner.clone();
        fresh.shards = sp
            .shards
            .iter()
            .map(|s| Shard { members: s.members.clone(), cache: None, degenerate: false })
            .collect();
        fresh.warm(&jurors);
        for (a, b) in sp.shards.iter().zip(&fresh.shards) {
            assert_eq!(cache(a).eps_order, cache(b).eps_order);
            assert_eq!(cache(a).greedy_order, cache(b).greedy_order);
        }
        // Probes ride the repaired ladders and stay within tolerance.
        let mut order = Vec::new();
        sorted_order_into(&jurors, &mut order);
        let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
        for n in [1usize, 15, 33, 45] {
            let direct = PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n));
            assert!((sp.jer_probe(n) - direct).abs() < crate::ladder::PROBE_REPAIR_TOL, "n={n}");
        }
    }

    #[test]
    fn probe_matches_direct_jer_within_tolerance() {
        let jurors = pool(300);
        let mut sp = ShardedPool::new(300, 7, 25);
        sp.warm(&jurors);
        let mut order = Vec::new();
        sorted_order_into(&jurors, &mut order);
        let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
        for n in [1usize, 3, 63, 64, 65, 129, 299] {
            let direct = PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n));
            let probed = sp.jer_probe(n);
            assert!((probed - direct).abs() < 1e-9, "n={n}: {probed} vs {direct}");
        }
    }

    #[test]
    fn ladder_fallback_beyond_coverage() {
        use crate::ladder::LADDER_MAX;
        // A single huge shard: probes beyond LADDER_MAX take the batch
        // branch and must still agree.
        let jurors = pool(LADDER_MAX + 300);
        let mut sp = ShardedPool::new(jurors.len(), 1, 25);
        sp.warm(&jurors);
        let n = LADDER_MAX + 201;
        let mut order = Vec::new();
        sorted_order_into(&jurors, &mut order);
        let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
        let direct = PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n));
        assert!((sp.jer_probe(n) - direct).abs() < 1e-9);
    }

    mod wire_round_trip {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;
        use serde::json;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            // A warm layer — owner partition, per-shard sorted runs and
            // greedy orders, nested ladders — must survive encode →
            // decode → encode byte-identically, and decode lax against
            // unknown fields at both the layer and the cache level.
            #[test]
            fn shard_layer_json_round_trips_and_decodes_lax(
                pairs in vec((0.02..0.95f64, 0.0..1.0f64), 1..=60),
                k in 1usize..6,
            ) {
                let jurors = pool_from_rates_and_costs(&pairs).unwrap();
                let mut sp = ShardedPool::new(jurors.len(), k, 25);
                sp.warm(&jurors);
                let layer = sp.export_shard_layer().unwrap();
                let text = json::to_string(&layer);
                let back: ShardLayer = json::from_str(&text).unwrap();
                prop_assert_eq!(json::to_string(&back), text.clone());
                let lax = format!("{{\"future_field\": 7, {}", &text[1..]);
                let back: ShardLayer = json::from_str(&lax).unwrap();
                prop_assert_eq!(json::to_string(&back), text);

                let cache = layer.caches().first().unwrap();
                let text = json::to_string(&**cache);
                let back: ShardCache = json::from_str(&text).unwrap();
                prop_assert_eq!(json::to_string(&back), text.clone());
                let lax = format!("{{\"future_field\": \"x\", {}", &text[1..]);
                let back: ShardCache = json::from_str(&lax).unwrap();
                prop_assert_eq!(json::to_string(&back), text);
            }
        }
    }
}
