//! Pool sharding: million-candidate pools partitioned into K shards.
//!
//! A flat [`PoolCache`](crate) recomputes everything on any mutation; at
//! 10⁶ candidates one re-sort per juror update is already prohibitive,
//! and the eager JER profile is `O(N²)`. [`ShardedPool`] bounds the blast
//! radius of a mutation to the **owning shard**:
//!
//! * each shard caches its own ε-sorted order, greedy PayM frontier and a
//!   ladder of prefix Poisson-binomial pmfs over its sorted rates;
//! * the global ε order / greedy order are K-way merges of the per-shard
//!   runs ([`jury_core::merge`]) — comparisons only, no float
//!   re-evaluation, so the merged permutations equal the flat sort's
//!   exactly and the solvers' presorted entry points produce
//!   **bit-identical** selections;
//! * a juror insert/update touches one shard; a remove re-sorts one
//!   shard and only *renumbers* (no re-sorting, no pmf work) the others.
//!
//! ## What merges bit-identically, and what does not
//!
//! Sorted **orders** merge bit-identically because the comparators are
//! total orders with an index tie-break: a sorted permutation under such
//! an order is unique, so "merge of per-shard sorts" and "one global
//! sort" are the same permutation and every downstream float operation
//! (the AltrALG prefix scan, the PayALG pair trials) is performed in the
//! identical sequence. Prefix **pmfs** do *not*: convolving per-shard
//! distributions ([`PoiBin::merge_into`]) is mathematically the same
//! distribution but a different float evaluation order than the flat
//! path's sequential [`PoiBin::push`]. Selections therefore always ride
//! the merged orders (bit-identity is contractual, enforced by
//! `tests/sharded_differential.rs`), while the merged-pmf path powers
//! the [`jer_probe`](crate::JuryService::jer_probe) point query, whose
//! contract is numerical equality within convolution rounding.

use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::error::JuryError;
use jury_core::jer::JerEngine;
use jury_core::juror::Juror;
use jury_core::merge::kway_merge_by;
use jury_core::paym::PayAlg;
use jury_core::problem::Selection;
use jury_core::solver::{eps_cmp, SolverScratch};
use jury_numeric::conv::ConvScratch;
use jury_numeric::poibin::PoiBin;

/// Spacing between prefix-pmf checkpoints in a shard's ladder.
const LADDER_SPACING: usize = 64;

/// Largest sorted-prefix length a shard materialises checkpoints for.
/// Probes beyond the ladder fall back to a fresh batch construction —
/// optimal juries are small in practice, so the ladder covers the hot
/// range without `O(n_s²)` build cost on huge shards.
const LADDER_MAX: usize = 1024;

/// When a [`JuryService`](crate::JuryService) shards its pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Pools with at least this many jurors are sharded (`usize::MAX`
    /// disables sharding — the default). Flat pools crossing the
    /// threshold through inserts are promoted in place; sharded pools
    /// shrinking below it stay sharded (hysteresis keeps warm state).
    pub threshold: usize,
    /// Number of shards K (clamped to ≥ 1) for pools that shard.
    pub shards: usize,
}

impl Default for ShardConfig {
    /// Sharding disabled; 8 shards once enabled.
    fn default() -> Self {
        Self { threshold: usize::MAX, shards: 8 }
    }
}

impl ShardConfig {
    /// Whether a pool of `len` jurors should be sharded under this
    /// configuration.
    pub fn applies(&self, len: usize) -> bool {
        len >= self.threshold
    }
}

/// Everything derived from one shard's membership snapshot.
#[derive(Debug, Clone, Default)]
struct ShardCache {
    /// The shard's members sorted by the global ε order (ties by pool
    /// position) — one sorted run of the global ε order.
    eps_order: Vec<usize>,
    /// ε values aligned with `eps_order`.
    eps: Vec<f64>,
    /// The shard's members sorted by the global greedy order — one
    /// sorted run of the global PayALG frontier.
    greedy_order: Vec<usize>,
    /// Prefix Poisson-binomial pmfs of `eps` at sizes
    /// `LADDER_SPACING, 2·LADDER_SPACING, …` up to `LADDER_MAX`.
    ladder: Vec<PoiBin>,
}

/// One shard: an owned subset of pool positions plus its cached state.
#[derive(Debug, Clone, Default)]
struct Shard {
    /// Owned pool positions, ascending (append-only insertion plus
    /// monotone renumbering on removal preserve this).
    members: Vec<usize>,
    cache: Option<ShardCache>,
}

/// Global artefacts derived by merging the per-shard runs.
#[derive(Debug, Clone)]
struct MergedCache {
    /// K-way merge of the shards' `eps_order` runs — bit-identical to
    /// the flat pool's ε-sorted order.
    eps_order: Vec<usize>,
    /// K-way merge of the shards' `greedy_order` runs — bit-identical to
    /// the flat pool's greedy order.
    greedy_order: Vec<usize>,
    /// Lazily solved AltrM answer (the `O(N²)` scan runs only when an
    /// AltrM task actually arrives).
    altr: Option<Result<Selection, JuryError>>,
    /// Lazily computed odd-size JER profile (push-based over the merged
    /// order — bit-identical to the flat profile; `O(N²)`, on demand).
    profile: Option<Vec<(usize, f64)>>,
}

/// What a [`ShardedPool::warm`] call rebuilt — feeds the service's
/// repair counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardWarmOutcome {
    /// Per-shard caches built by this warm.
    pub shards_built: usize,
    /// Total shards in the pool.
    pub shard_count: usize,
    /// Whether the merged orders were rebuilt.
    pub merged_rebuilt: bool,
}

/// A pool partitioned into K shards. Owns no jurors — all methods take
/// the registry's juror slice; member values are positions into it.
#[derive(Debug, Clone)]
pub(crate) struct ShardedPool {
    shards: Vec<Shard>,
    /// Owning shard per pool position.
    owner: Vec<u32>,
    merged: Option<MergedCache>,
    /// FFT plans + transform buffers for probe-time pmf merging.
    conv: ConvScratch,
}

impl ShardedPool {
    /// Partitions positions `0..len` round-robin over `k` shards
    /// (clamped to ≥ 1); all caches start cold.
    pub(crate) fn new(len: usize, k: usize) -> Self {
        let k = k.max(1);
        let mut shards = vec![Shard::default(); k];
        let owner = (0..len).map(|i| (i % k) as u32).collect();
        for i in 0..len {
            shards[i % k].members.push(i);
        }
        Self { shards, owner, merged: None, conv: ConvScratch::new() }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Warm means the merged orders exist; the AltrM selection and the
    /// profile may still be lazily pending.
    pub(crate) fn is_warm(&self) -> bool {
        self.merged.is_some()
    }

    /// Registers the juror just appended to the pool (position =
    /// `len - 1`), assigning it to the smallest shard. Only that shard's
    /// cache (plus the merged orders) is invalidated. Returns whether
    /// any warm state was actually dropped.
    pub(crate) fn insert(&mut self, len_after: usize) -> bool {
        let idx = len_after - 1;
        debug_assert_eq!(idx, self.owner.len());
        let target = self
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.members.len())
            .map(|(i, _)| i)
            .expect("at least one shard");
        let dropped = self.shards[target].cache.is_some() || self.merged.is_some();
        self.owner.push(target as u32);
        self.shards[target].members.push(idx);
        self.shards[target].cache = None;
        self.merged = None;
        dropped
    }

    /// Invalidates the shard owning position `idx` (an in-place juror
    /// replacement); the other K−1 shards keep their caches. Returns
    /// whether any warm state was actually dropped.
    pub(crate) fn update(&mut self, idx: usize) -> bool {
        let s = self.owner[idx] as usize;
        let dropped = self.shards[s].cache.is_some() || self.merged.is_some();
        self.shards[s].cache = None;
        self.merged = None;
        dropped
    }

    /// Removes position `idx` (the registry does `Vec::remove`, shifting
    /// later positions down by one). The owning shard's cache is
    /// invalidated; every other shard is *renumbered* in place —
    /// decrementing positions greater than `idx` preserves each run's
    /// relative order under both comparators, so their sorted runs, ε
    /// values and pmf ladders all stay valid. Returns whether any warm
    /// state was actually dropped.
    pub(crate) fn remove(&mut self, idx: usize) -> bool {
        let s = self.owner.remove(idx) as usize;
        let dropped = self.shards[s].cache.is_some() || self.merged.is_some();
        for (si, shard) in self.shards.iter_mut().enumerate() {
            if si == s {
                shard.members.retain(|&m| m != idx);
                shard.cache = None;
            }
            for m in &mut shard.members {
                if *m > idx {
                    *m -= 1;
                }
            }
            if let Some(cache) = shard.cache.as_mut() {
                for m in &mut cache.eps_order {
                    if *m > idx {
                        *m -= 1;
                    }
                }
                for m in &mut cache.greedy_order {
                    if *m > idx {
                        *m -= 1;
                    }
                }
            }
        }
        self.merged = None;
        dropped
    }

    /// Builds any cold shard caches and (re)merges the global orders.
    pub(crate) fn warm(&mut self, jurors: &[Juror]) -> ShardWarmOutcome {
        let mut outcome = ShardWarmOutcome {
            shards_built: 0,
            shard_count: self.shards.len(),
            merged_rebuilt: false,
        };
        for shard in &mut self.shards {
            if shard.cache.is_none() {
                shard.cache = Some(build_shard_cache(jurors, &shard.members));
                outcome.shards_built += 1;
            }
        }
        if self.merged.is_none() {
            let eps_runs: Vec<&[usize]> =
                self.shards.iter().map(|s| cache(s).eps_order.as_slice()).collect();
            let mut eps_order = Vec::new();
            kway_merge_by(&eps_runs, |a, b| eps_cmp(jurors, a, b), &mut eps_order);
            let greedy_runs: Vec<&[usize]> =
                self.shards.iter().map(|s| cache(s).greedy_order.as_slice()).collect();
            let mut greedy_order = Vec::new();
            kway_merge_by(&greedy_runs, |a, b| PayAlg::greedy_cmp(jurors, a, b), &mut greedy_order);
            self.merged = Some(MergedCache { eps_order, greedy_order, altr: None, profile: None });
            outcome.merged_rebuilt = true;
        }
        outcome
    }

    /// The merged ε order, if warm.
    pub(crate) fn merged_eps_order(&self) -> Option<&[usize]> {
        self.merged.as_ref().map(|m| m.eps_order.as_slice())
    }

    /// The merged greedy order, if warm.
    pub(crate) fn merged_greedy_order(&self) -> Option<&[usize]> {
        self.merged.as_ref().map(|m| m.greedy_order.as_slice())
    }

    /// The cached AltrM selection, if already solved.
    pub(crate) fn cached_altr(&self) -> Option<&Result<Selection, JuryError>> {
        self.merged.as_ref().and_then(|m| m.altr.as_ref())
    }

    /// Solves AltrM over the merged order (bit-identical to the flat
    /// path) and caches the result. Requires a prior [`Self::warm`].
    pub(crate) fn ensure_altr(
        &mut self,
        jurors: &[Juror],
        config: &AltrConfig,
        scratch: &mut SolverScratch,
    ) -> &Result<Selection, JuryError> {
        let merged = self.merged.as_mut().expect("warm() must precede ensure_altr");
        if merged.altr.is_none() {
            merged.altr =
                Some(AltrAlg::new(*config).solve_presorted(jurors, &merged.eps_order, scratch));
        }
        merged.altr.as_ref().expect("filled above")
    }

    /// The odd-size JER profile over the merged order, computed lazily
    /// with the same sequential pushes as the flat path (bit-identical).
    /// Requires a prior [`Self::warm`].
    pub(crate) fn ensure_profile(&mut self, jurors: &[Juror]) -> &[(usize, f64)] {
        let merged = self.merged.as_mut().expect("warm() must precede ensure_profile");
        if merged.profile.is_none() {
            let eps: Vec<f64> = merged.eps_order.iter().map(|&i| jurors[i].epsilon()).collect();
            merged.profile = Some(AltrAlg::jer_profile_sorted(&eps));
        }
        merged.profile.as_ref().expect("filled above")
    }

    /// JER of the best `n`-juror jury via per-shard prefix pmfs merged by
    /// convolution: the global best-`n` prefix is split into per-shard
    /// counts, each shard resumes from its nearest ladder checkpoint (or
    /// batch-builds beyond the ladder) and the K distributions are
    /// combined with [`PoiBin::merge_into`]. `O(n·spacing + n log n)`
    /// instead of the flat path's `O(n²)` pushes — the payoff of keeping
    /// pmfs per shard. Numerically equal to the flat evaluation within
    /// convolution rounding (not bit-identical; see the module docs).
    ///
    /// Requires a prior [`Self::warm`]; `n` must be `1..=len`.
    pub(crate) fn jer_probe(&mut self, n: usize) -> f64 {
        let merged = self.merged.as_ref().expect("warm() must precede jer_probe");
        let mut counts = vec![0usize; self.shards.len()];
        for &g in &merged.eps_order[..n] {
            counts[self.owner[g] as usize] += 1;
        }
        let mut acc = PoiBin::empty();
        let mut flipped = PoiBin::empty();
        let mut shard_pmf = PoiBin::empty();
        for (shard, &c) in self.shards.iter().zip(&counts) {
            if c == 0 {
                continue;
            }
            prefix_pmf_into(cache(shard), c, &mut shard_pmf);
            acc.merge_into(&shard_pmf, &mut self.conv, &mut flipped);
            std::mem::swap(&mut acc, &mut flipped);
        }
        acc.tail(JerEngine::majority_threshold(n))
    }
}

/// Shorthand for a shard's cache that `warm` has guaranteed to exist.
fn cache(shard: &Shard) -> &ShardCache {
    shard.cache.as_ref().expect("shard warmed")
}

/// Sorts one shard's members under both global comparators and lays the
/// prefix-pmf checkpoint ladder.
fn build_shard_cache(jurors: &[Juror], members: &[usize]) -> ShardCache {
    let mut eps_order = members.to_vec();
    eps_order.sort_by(|&a, &b| eps_cmp(jurors, a, b));
    let eps: Vec<f64> = eps_order.iter().map(|&i| jurors[i].epsilon()).collect();
    let mut greedy_order = members.to_vec();
    greedy_order.sort_by(|&a, &b| PayAlg::greedy_cmp(jurors, a, b));
    let mut ladder = Vec::with_capacity(eps.len().min(LADDER_MAX) / LADDER_SPACING);
    let mut pmf = PoiBin::empty();
    for (i, &e) in eps.iter().take(LADDER_MAX).enumerate() {
        pmf.push(e);
        if (i + 1) % LADDER_SPACING == 0 {
            ladder.push(pmf.clone());
        }
    }
    ShardCache { eps_order, eps, greedy_order, ladder }
}

/// The Poisson-binomial distribution of a shard's `c` most reliable
/// members, resumed from the nearest ladder checkpoint when one is close
/// enough, else batch-built (adaptive DP/CBA).
fn prefix_pmf_into(cache: &ShardCache, c: usize, out: &mut PoiBin) {
    let checkpoint = (c / LADDER_SPACING).min(cache.ladder.len());
    let start = checkpoint * LADDER_SPACING;
    if c - start <= LADDER_SPACING {
        if checkpoint > 0 {
            out.copy_from(&cache.ladder[checkpoint - 1]);
        } else {
            out.reset();
        }
        for &e in &cache.eps[start..c] {
            out.push(e);
        }
    } else {
        *out = PoiBin::from_error_rates(&cache.eps[..c]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::juror::pool_from_rates_and_costs;
    use jury_core::solver::sorted_order_into;

    fn pool(n: usize) -> Vec<Juror> {
        let quotes: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let u = (i as f64 * 0.6180339887498949) % 1.0;
                (0.02 + 0.93 * u, ((i * 13) % 7) as f64 / 7.0)
            })
            .collect();
        pool_from_rates_and_costs(&quotes).unwrap()
    }

    #[test]
    fn merged_orders_match_flat_sorts_across_k_and_sizes() {
        for &n in &[1usize, 2, 5, 17, 100] {
            for &k in &[1usize, 2, 7, 16] {
                let jurors = pool(n);
                let mut sp = ShardedPool::new(n, k);
                sp.warm(&jurors);
                let mut flat_eps = Vec::new();
                sorted_order_into(&jurors, &mut flat_eps);
                assert_eq!(sp.merged_eps_order().unwrap(), flat_eps.as_slice(), "n={n} k={k}");
                let mut flat_greedy = Vec::new();
                PayAlg::greedy_order_into(&jurors, &mut flat_greedy);
                assert_eq!(
                    sp.merged_greedy_order().unwrap(),
                    flat_greedy.as_slice(),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn remove_renumbers_and_preserves_other_shards() {
        let mut jurors = pool(40);
        let mut sp = ShardedPool::new(40, 4);
        sp.warm(&jurors);
        let victim = 11; // shard 11 % 4 == 3
        jurors.remove(victim);
        sp.remove(victim);
        // Only the owning shard went cold.
        assert_eq!(sp.shards.iter().filter(|s| s.cache.is_none()).count(), 1);
        assert!(sp.shards[victim % 4].cache.is_none());
        let outcome = sp.warm(&jurors);
        assert_eq!(outcome.shards_built, 1);
        let mut flat_eps = Vec::new();
        sorted_order_into(&jurors, &mut flat_eps);
        assert_eq!(sp.merged_eps_order().unwrap(), flat_eps.as_slice());
    }

    #[test]
    fn insert_goes_to_smallest_shard_only() {
        let mut jurors = pool(9);
        let mut sp = ShardedPool::new(9, 4); // shard sizes 3,2,2,2
        sp.warm(&jurors);
        jurors.push(jurors[0]);
        sp.insert(jurors.len());
        assert_eq!(sp.owner[9], 1, "smallest shard with lowest id wins");
        assert_eq!(sp.shards.iter().filter(|s| s.cache.is_none()).count(), 1);
        let outcome = sp.warm(&jurors);
        assert_eq!(outcome.shards_built, 1);
        let mut flat = Vec::new();
        PayAlg::greedy_order_into(&jurors, &mut flat);
        assert_eq!(sp.merged_greedy_order().unwrap(), flat.as_slice());
    }

    #[test]
    fn probe_matches_direct_jer_within_tolerance() {
        let jurors = pool(300);
        let mut sp = ShardedPool::new(300, 7);
        sp.warm(&jurors);
        let mut order = Vec::new();
        sorted_order_into(&jurors, &mut order);
        let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
        for n in [1usize, 3, 63, 64, 65, 129, 299] {
            let direct = PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n));
            let probed = sp.jer_probe(n);
            assert!((probed - direct).abs() < 1e-9, "n={n}: {probed} vs {direct}");
        }
    }

    #[test]
    fn ladder_fallback_beyond_coverage() {
        // A single huge shard: probes beyond LADDER_MAX take the batch
        // branch and must still agree.
        let jurors = pool(LADDER_MAX + 300);
        let mut sp = ShardedPool::new(jurors.len(), 1);
        sp.warm(&jurors);
        let n = LADDER_MAX + 201;
        let mut order = Vec::new();
        sorted_order_into(&jurors, &mut order);
        let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
        let direct = PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n));
        assert!((sp.jer_probe(n) - direct).abs() < 1e-9);
    }
}
