//! `jury-service` — a batched, cache-aware serving layer over the JSP
//! solvers.
//!
//! The paper treats jury selection as a one-shot optimisation; a
//! micro-blog deployment is the opposite: a *repeated online service*
//! over slowly-changing juror pools, answering streams of decision tasks
//! under mixed crowd models and per-task budgets. [`JuryService`] is that
//! seam:
//!
//! * **pool registry** — pools are registered once and addressed by
//!   [`PoolId`]; jurors can be inserted, updated and removed in place.
//! * **per-pool cache** — the ε-sorted order, PayALG's greedy visit
//!   order and the solved AltrM selection are computed once per pool
//!   *generation* (the prefix-pmf JER profile and checkpoint ladder
//!   stay lazy until queried). A warm AltrM task is a cache lookup —
//!   shared, not copied, under [`JuryService::solve_batch_shared`]; a
//!   warm PayM task is a **budget-staircase** lookup (below), falling
//!   back to one greedy scan on the cached order.
//! * **rescan-free mutation repair** — every juror mutation — *update*,
//!   *removal* and *insert*, flat or sharded — repairs warm state in
//!   place instead of invalidating it: every sorted order (flat,
//!   per-shard and merged) gets one rank-insert (plus one remove for
//!   updates/removals; `O(n)` memmoves, provably the same permutation a
//!   re-sort would produce), every affected prefix-pmf checkpoint is
//!   patched by dividing the juror's `(1−ε, ε)` factor out of the
//!   Poisson binomial
//!   ([`jury_numeric::poibin::PoiBin::remove_factor`]; inserts need
//!   only a push) — `O(n)` per checkpoint instead of
//!   `O(n·spacing + n log n)` re-convolution — and a materialised JER
//!   profile reuses every untouched prefix entry verbatim, re-deriving
//!   only the suffix from the nearest checkpoint.
//! * **rescan-free warm AltrM** — the one artefact a mutation must drop
//!   is the solved AltrM answer (the optimum may genuinely move). The
//!   re-solve is **bound-pruned** ([`AltrAlg::solve_pruned`]): prefix
//!   sums of ε and ε(1−ε) ([`jury_numeric::bounds::PrefixMoments`])
//!   evaluate Paley–Zygmund lower and Cantelli/Chernoff upper JER
//!   bounds in `O(1)` per odd size, every size whose lower bound clears
//!   the best upper bound is eliminated, and exact JER runs only at the
//!   survivors — `O(N + M²)` for largest survivor `M` instead of the
//!   `O(N²)` full prefix rescan (the `altrm_throughput` bench records
//!   ~10³× at 10⁴ jurors on an expert-plus-mob pool).
//! * **PayM budget staircase** — Algorithm 4's selection is piecewise
//!   constant in the budget, so each pool's warm greedy order carries a
//!   [`jury_core::paym::Staircase`]: recorded step intervals map any
//!   covered budget to its selection by binary search, and a miss costs
//!   exactly one instrumented greedy scan that records a new step.
//! * **pool sharding** — pools at or above
//!   [`ShardConfig::threshold`] are partitioned into K shards, each with
//!   its own ε-sorted order, greedy frontier and prefix Poisson-binomial
//!   pmf ladder. The global orders are K-way merges of the per-shard
//!   sorted runs, kept warm across mutations by the in-place repairs
//!   above; a cold pool's per-shard builds fan out in parallel under
//!   `std::thread::scope`. Shards hollowed out by skewed churn are
//!   **re-balanced online**: a degeneracy episode moves members from the
//!   largest shards into the starved one, repairing both sides' runs
//!   and ladders in place ([`ServiceStats::shard_rebalances`]).
//! * **batched parallel solving** — [`JuryService::solve_batch`] fans a
//!   slice of [`DecisionTask`]s across scoped worker threads, each with
//!   its own persistent [`SolverScratch`], so a warm task performs no
//!   solver-path heap allocation beyond its returned [`Selection`].
//!
//! # Bit-identity vs numerical contracts
//!
//! Selections — members, JER bits, cost bits — are **bit-identical** to
//! calling [`AltrAlg::solve`] / [`PayAlg::solve`] directly: cold cache,
//! warm cache, batched, staircase-replayed, bound-pruned, flat and
//! sharded paths all reduce to the same scratch-threaded solver
//! internals (`tests/equivalence.rs` and
//! `tests/sharded_differential.rs` assert this). The caching layers sit
//! on either side of that line:
//!
//! * **Staircase replays are bit-identical.** A staircase step is
//!   recorded by the ordinary greedy scan, instrumented only to remember
//!   the half-open budget window on which every affordability comparison
//!   it made keeps its outcome. Inside that window the admission trace —
//!   float op for float op, [`SolverStats`](jury_core::SolverStats)
//!   included — is the one the scan performed, so replaying the stored
//!   [`Selection`] *is* replaying [`PayAlg::solve_presorted`].
//! * **Bound-pruned AltrM selections are bit-identical; the stats are
//!   not.** The pruned scan evaluates survivors with the identical
//!   sequential pushes the full scan performs and pruning is sound
//!   (an eliminated size's exact JER strictly exceeds the incumbent's,
//!   smallest-`n` tie-break preserved — see
//!   [`AltrAlg::solve_pruned`]), so members/JER/cost match the full
//!   scan bit for bit. The [`SolverStats`](jury_core::SolverStats)
//!   *document the pruning instead of hiding it*: `jer_evaluations`
//!   counts survivors only and `pruned_by_bound` the eliminated sizes
//!   (their sum equals the full scan's evaluation count). This is the
//!   one place service answers differ from the direct solver's, by
//!   design. Crucially, the pruned scan builds its pmfs from scratch —
//!   it never reads a repaired checkpoint — which is what keeps
//!   post-mutation AltrM answers on the bit-identical side.
//! * **Deconvolution repairs are numerical.** Dividing a factor out of a
//!   Poisson binomial re-derives the cached prefix pmfs in a different
//!   float order than building them fresh, so ladder-backed answers —
//!   [`JuryService::jer_probe`], and [`JuryService::jer_profile`]
//!   entries re-derived by an in-place profile repair — are only
//!   *numerically* equal: within [`PROBE_REPAIR_TOL`] of a from-scratch
//!   evaluation, with an a-priori conditioning guard plus validation
//!   fallback ([`ServiceStats::pmf_rebuilds`]) bounding the drift.
//!   Nothing on the bit-identical side ever reads a repaired pmf.
//!
//! # Sharding invariants
//!
//! For sharded pools the bit-identity guarantee rests on three facts:
//!
//! 1. **Orders merge bit-identically.** Both solver visit orders are
//!    *total* orders with the pool position as final tie-break
//!    ([`jury_core::solver::eps_cmp`], [`PayAlg::greedy_cmp`]), so the
//!    sorted permutation is unique: a K-way merge of per-shard sorted
//!    runs ([`jury_core::merge`]) equals the flat pool's single sort,
//!    permutation-for-permutation. The merge only *compares* floats;
//!    every float *evaluation* (the AltrALG prefix scan, PayALG's pair
//!    trials) then runs over the identical sequence via
//!    [`AltrAlg::solve_presorted`] / [`PayAlg::solve_presorted`], hence
//!    identical bits, [`SolverStats`](jury_core::SolverStats) included.
//! 2. **Pmfs do not.** Convolving per-shard carelessness distributions
//!    ([`jury_core`'s `PoiBin::merge_into`]) yields the same
//!    distribution mathematically but a different float evaluation order
//!    than the flat path's sequential pushes. Anything contractually
//!    bit-identical therefore never flows through pmf merging; the
//!    merged-pmf path powers only [`JuryService::jer_probe`], whose
//!    contract is numerical equality within convolution rounding.
//! 3. **The partition is not part of the answer.** Which shard owns a
//!    juror never influences a selection — only the merged orders do —
//!    so *inserts* repair the owning shard and the merged orders by
//!    rank-insert (no shard drop, no re-merge), and *re-balancing*
//!    (healing a shard hollowed out by skewed churn by stealing members
//!    from the largest shards) is a pure permutation of shard
//!    membership: per-shard runs change hands, the merged global orders
//!    are untouched, and `tests/sharded_differential.rs` proves
//!    selections bit-identical across forced-degeneracy episodes.
//!
//! # The warm-artifact store and its fingerprint contract
//!
//! All pools of one service share a **content-addressed warm-artifact
//! store**: registering N pools over the same juror content builds the
//! warm artifacts **once** and hands every further pool `Arc` clones of
//! one interned set. The contract:
//!
//! * **What is keyed.** Every artifact set is interned under
//!   `(fingerprint, layout, solver config)`. The fingerprint is a
//!   commutative multiset hash
//!   ([`jury_core::fingerprint::PoolFingerprint`]) over each juror's
//!   solver-relevant content — the pair `(ε.to_bits(), cost.to_bits())`;
//!   juror *ids* are payload and never enter the key. The layout
//!   separates flat from K-shard artifact shapes; the config covers the
//!   [`AltrConfig`]/[`PayConfig`] knobs that change solver output.
//!   Because raw IEEE-754 bits are hashed, the fingerprint is exactly as
//!   strict as the solvers' `total_cmp` orders (`0.5` vs `0.5 + 1e-12`
//!   is different content). Maintained incrementally: one
//!   constant-time hash update per mutation, never a rescan.
//! * **What is shared.** A pool whose juror sequence equals an entry's
//!   founding sequence position-for-position shares *everything*: both
//!   orders, sorted ε values, pmf ladder, JER profile, the Arc'd AltrM
//!   answer and the (lazily growing, lock-guarded) PayM budget
//!   staircase. A pool that is a *permutation* of the founding sequence
//!   still shares every rank-space artifact pointer-equal (sorted ε
//!   values, ladder, profile, the AltrM answer's JER/cost/stats) and
//!   derives its position-space orders by an `O(N)` sort-free
//!   translation; its staircase stays private (recorded selections are
//!   position-space). Permuted sharing additionally requires the entry
//!   to be **tie-free** (no equal-ε, different-cost juror pair), which
//!   makes the translated orders bit-identical to the pool's own sort.
//! * **CoW detach and re-join.** Mutations never write through a shared
//!   entry: the pool detaches first (sole holders reclaim the artifacts
//!   zero-copy; pools with siblings clone exactly what the repair will
//!   touch), the existing in-place repairs run on the private copy, the
//!   fingerprint is updated incrementally, and the pool re-joins an
//!   existing entry if one matches the post-mutation content (verified
//!   by content comparison, never by hash alone). A pool that detached
//!   from siblings publishes its repaired artifacts under the new key
//!   for identically-mutated siblings to follow; entries no pool holds
//!   are evicted. [`ServiceStats::artifact_share_hits`],
//!   [`ServiceStats::artifact_detaches`] and
//!   [`ServiceStats::artifact_rejoins`] make all of this observable.
//! * **What stays outside the bit-identity guarantee.** Sharing never
//!   changes any answer: shared-artifact AltrM/PayM selections are
//!   bit-identical (members/JER/cost/stats) to privately-built ones —
//!   the differential harness proves it across interleaved
//!   detach/re-join mutations. The pre-existing numerical carve-outs
//!   are unchanged: [`JuryService::jer_probe`] and repaired
//!   [`JuryService::jer_profile`] entries remain numerical-contract
//!   ([`PROBE_REPAIR_TOL`]), and a re-joining pool adopts the entry's
//!   pmf-lineage artifacts (fresh-built or repaired), which is
//!   indistinguishable within that same tolerance. For sharded pools
//!   the store interns the merged-layer artifacts (merged orders, AltrM
//!   answer, profile) *and* the per-shard layer (owner assignment plus
//!   every shard's runs and ladder — adopted only when the partitions
//!   match exactly, since different mutation histories may partition
//!   equal content differently) for sequence-identical pools; the
//!   sharded staircase stays per-pool. Adopted shard caches are
//!   copy-on-write: `Arc::make_mut` at every repair site clones the one
//!   touched shard off privately.
//!
//! Sharing is on by default; [`ServiceConfig::share_artifacts`] turns it
//! off (the `multi_tenant_throughput` bench measures the difference).
//!
//! Mutation cost is where the repair paths pay: a juror update, removal
//! or insert costs a few `O(n)` memmoves plus `O(ladder)` factor
//! divisions (pushes for inserts), the next PayM task re-records its
//! staircase step with a single greedy scan, and the next AltrM task
//! re-solves with the bound-pruned sweep — no re-sort, no K-way
//! re-merge, no `O(N²)` rescan on either lane (on pools whose sorted
//! prefix mean crosses ½; below that the pruned scan degrades
//! gracefully to the full one plus an `O(N)` sweep). The
//! [`ServiceStats`] counters (`cache_invalidations`, `order_repairs`,
//! `insert_repairs`, `staircase_hits`, `pmf_repairs`, `pmf_rebuilds`,
//! `profile_repairs`, `bound_pruned`, `shard_repairs`, `full_repairs`,
//! `degenerate_shards`, `shard_rebalances`) make that behaviour
//! observable; the `sharded_throughput`, `staircase_throughput`,
//! `altrm_throughput` and `rebalance_throughput` benches record it at
//! pool sizes up to 10⁶.
//!
//! # Persistence contract
//!
//! [`JuryService::snapshot`] persists the warm-artifact store to a
//! directory; a service whose [`ServiceConfig::snapshot_dir`] points at
//! one restores matching pools on registration instead of rebuilding.
//! The contract has three clauses:
//!
//! * **Writes are crash-safe.** Each store entry becomes one
//!   checksummed binary file, written to a temp name, fsync'd, and
//!   atomically renamed; the manifest naming the entries is written
//!   last, by the same dance, and is the commit point. A crash at any
//!   instant leaves either the previous snapshot or the new one —
//!   never a torn mix — and a crash mid-entry leaves the manifest
//!   pointing only at fully-written files.
//! * **Restores are verified, never trusted.** A snapshot is input,
//!   not state: before anything is attached the whole file is
//!   re-checksummed, every section is re-checksummed and decoded, the
//!   orders are checked to be permutations, sorted ε values re-bound
//!   bit-for-bit against the registering pool's jurors, the pmf
//!   ladder's content hash re-derived, shard layouts re-validated
//!   (the shard layer's owner/cache binding), and the decoded
//!   juror content compared against the pool's actual content — the
//!   same `match_pool` comparison the in-memory attach path uses. A
//!   restored artifact set is therefore indistinguishable from one the
//!   store built itself, and restored answers are bit-identical to
//!   cold-built ones.
//! * **Failure is always a cold build.** Any mismatch — truncation, a
//!   flipped bit anywhere, a stale manifest, layout or config drift, a
//!   snapshot of different juror content — rejects that entry and
//!   falls back to the ordinary cold build. Restore failures are never
//!   an error and can never change an answer; they cost exactly one
//!   [`ServiceStats::snapshot_rejections`] increment. Successful
//!   attaches count [`ServiceStats::snapshot_restores`].
//!
//! `tests/snapshot_faults.rs` drives the full fault matrix (truncation
//! at every section boundary, one flipped bit per field class, swapped
//! manifest entries, post-snapshot mutation, manifest skew) and proves
//! cold-fallback bit-identity under every fault; the
//! `restart_throughput` bench measures restart-to-first-answer, cold vs
//! restored, at pool sizes up to 10⁶.
//!
//! ## Multi-process contract
//!
//! Several processes may share one snapshot directory; four more
//! clauses govern that:
//!
//! * **Checkpoints are incremental generations.** Each successful
//!   [`JuryService::snapshot`] writes only the entries that changed
//!   since the directory's last committed generation, then publishes
//!   `manifest-<gen>.json` (monotonically numbered; the pre-generation
//!   `manifest.json` reads as generation 0) referencing fresh files
//!   and files retained from earlier generations alike. Old
//!   generations are garbage-collected only after the new manifest is
//!   durable, so a crash at any byte boundary — including between an
//!   entry write and the manifest commit, or mid-GC — leaves the
//!   previous generation fully restorable. A checkpoint with nothing
//!   dirty touches no file at all.
//! * **One writer, advisory lease.** Writers coordinate through a
//!   `writer.lease` file acquired by atomic create, carrying holder
//!   id, **epoch**, and a heartbeat refreshed on every checkpoint. A
//!   second writer gets [`SnapshotError::LeaseHeld`] (it can still
//!   restore read-only) until the heartbeat goes stale past
//!   [`LeaseConfig::ttl`], at which point it *breaks* the lease with
//!   an epoch bump.
//! * **Fencing: a zombie can never commit.** Every commit re-reads the
//!   lease immediately before the manifest rename; a writer whose
//!   lease was broken (foreign holder, higher epoch) is refused with
//!   [`SnapshotError::Fenced`] and must re-acquire from the current
//!   disk state. Epochs never run backwards past a committed
//!   generation (broken leases bump above the manifest's epoch), and
//!   entry file names embed generation and epoch so racing writers
//!   cannot collide on a name.
//! * **Readers pick the highest durable generation, bounded by age.**
//!   Restores scan for the highest parseable manifest (corrupt
//!   generations fall through to older ones), verify as above, and
//!   surface `snapshot_generation`/`snapshot_age_ms` gauges in
//!   [`ServiceStats`]. With [`ServiceConfig::max_snapshot_age`] set, a
//!   generation older than the bound (or one with no commit stamp) is
//!   refused — counted in [`ServiceStats::stale_snapshot_skips`] — and
//!   the pool cold-builds instead; staleness can cost warmth, never
//!   correctness.
//!
//! `tests/shared_snapshot_faults.rs` drives the multi-process matrix
//! (crash at every commit-sequence boundary, lease-holder death and
//! break, fenced zombie commits, mid-GC readers, restore racing a
//! writer thread) and proves bit-identical answers with exact counter
//! deltas under every interleaving.
//!
//! ## Failover contract
//!
//! A deployment runs one *writer* and any number of *warm followers*
//! over a shared snapshot directory. `jury-frontend`'s supervisor
//! drives the role transitions; the mechanisms live here:
//!
//! * **Followers serve, bounded-lag.** A follower answers every solve
//!   from its adopted generation: selections are bit-identical to a
//!   writer serving the same juror content (restore verification
//!   guarantees it) — merely warm from an older generation.
//!   [`JuryService::adopt_snapshot`] hot-swaps a newer committed
//!   generation into a live service without restart, re-verified
//!   through the very gates a cold restore uses (counted in
//!   [`ServiceStats::generations_adopted`] /
//!   [`ServiceStats::adoptions_rejected`]), and pre-warms only *cold*
//!   pools — warm state, and therefore every in-flight answer, is
//!   never perturbed mid-mutation. The `follower_generation` /
//!   `follower_lag_ms` gauges bound the staleness: lag is the age of
//!   the adopted generation's commit stamp, and [`SnapshotWatcher`]'s
//!   jittered poll bounds how long a newer commit can go unnoticed —
//!   together, a follower trails the writer by at most one poll
//!   interval (+25% jitter) plus one adoption.
//! * **Promotion.** A follower promotes by simply checkpointing:
//!   [`JuryService::snapshot`] acquires the lease, breaking a stale
//!   one (heartbeat older than [`LeaseConfig::ttl`]) by epoch bump. A
//!   live writer's heartbeat refuses promotion with
//!   [`SnapshotError::LeaseHeld`], whose holder id doubles as the
//!   leader hint. Wall-clock steps never fake staleness: heartbeat
//!   ages are clamped at zero, so a future-dated heartbeat (a clock
//!   that ran backwards) reads as fresh and promotion waits out the
//!   full TTL instead of usurping a live writer.
//! * **Demotion.** Exactly one writer can commit: the fence re-reads
//!   the lease immediately before every manifest rename, and a writer
//!   that lost it gets [`SnapshotError::Fenced`] with nothing
//!   committed. The correct response is to demote back to following —
//!   adopt the winner's generations, and retry promotion only when
//!   the winner in turn goes stale.
//! * **Writes route to the writer.** Followers refuse mutations (the
//!   frontend answers 503 plus a leader hint) but never refuse
//!   solves: both roles keep serving reads through every transition.
//!
//! `tests/failover_faults.rs` drives the chaos matrix — a writer
//! killed at every commit fs-op boundary via the injectable
//! [`FaultPlane`], promotion races between two followers, stalled
//! heartbeats, adoption racing GC — and proves exactly one surviving
//! writer, no half-adopted generation, and follower answers
//! bit-identical to a never-failed control.
//!
//! ```
//! use jury_core::juror::pool_from_rates_and_costs;
//! use jury_service::{DecisionTask, JuryService};
//!
//! let jurors = pool_from_rates_and_costs(&[
//!     (0.1, 0.2), (0.2, 0.2), (0.2, 0.3), (0.3, 0.4), (0.4, 0.05),
//! ]).unwrap();
//! let mut service = JuryService::new();
//! let pool = service.create_pool(jurors);
//!
//! let tasks = vec![
//!     DecisionTask::altruism(pool),
//!     DecisionTask::pay_as_you_go(pool, 0.5),
//!     DecisionTask::pay_as_you_go(pool, 1.0),
//! ];
//! let results = service.solve_batch(&tasks);
//! assert!(results.iter().all(Result::is_ok));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ladder;
mod shard;
mod snapshot;
mod store;

pub use ladder::PROBE_REPAIR_TOL;
pub use shard::ShardConfig;
pub use snapshot::{
    snapshot_checksum, FaultAction, FaultPlane, FaultScheduler, LeaseConfig, NoFaults,
    SnapshotError, SnapshotReport, SnapshotWatcher,
};

use jury_core::altr::{AltrAlg, AltrConfig, AltrStrategy, JerProfile};
use jury_core::error::JuryError;
use jury_core::fingerprint::{FingerprintKey, PoolFingerprint};
use jury_core::jer::JerEngine;
use jury_core::juror::Juror;
use jury_core::model::CrowdModel;
use jury_core::paym::{PayAlg, PayConfig, Staircase};
use jury_core::problem::Selection;
use jury_core::solver::SolverScratch;
use jury_numeric::poibin::PoiBin;
use ladder::PmfLadder;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use shard::{reinsert_eps, reinsert_greedy, renumber_out, MutationEffect, ShardedPool};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use store::{
    translate_selection, ArtifactSet, ArtifactStore, Attach, LayoutKey, PermutedView, StoreKey,
    StoreLink,
};

/// Upper bound on sequential staircase-recording scans per batch. Only
/// `(pool, budget)` pairs that repeat within the batch are recorded up
/// front (a singleton is scanned exactly once by a worker anyway, in
/// parallel, and records its step on a later single-solve miss); a batch
/// with more distinct repeated pairs than this leaves the excess to the
/// workers' presorted scans (correct either way — the staircase is a
/// cache, not a requirement).
const MAX_BATCH_STAIRCASE_SCANS: usize = 32;

/// Minimum tasks a batch assigns per worker thread before it spawns
/// another one. Fanning a large batch over every available core makes
/// each chunk so small that thread spawn/join overhead and allocator
/// contention outweigh the parallelism — the `service_throughput`
/// pool-10⁴/batch-1024 regression. Capping workers at
/// `tasks / MIN_TASKS_PER_WORKER` keeps per-worker chunks coarse.
const MIN_TASKS_PER_WORKER: usize = 32;

/// Opaque handle to a registered juror pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolId(u64);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool#{}", self.0)
    }
}

impl Serialize for PoolId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for PoolId {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        u64::from_value(value).map(PoolId)
    }
}

/// One decision-making task: which pool answers it, under which crowd
/// model (AltrM, or PayM with a per-task budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTask {
    /// The candidate pool to select from.
    pub pool: PoolId,
    /// Crowd model governing feasibility.
    pub model: CrowdModel,
}

impl DecisionTask {
    /// An AltrM task on `pool`.
    pub fn altruism(pool: PoolId) -> Self {
        Self { pool, model: CrowdModel::Altruism }
    }

    /// A PayM task on `pool` with the given budget (validated when
    /// solved, exactly like [`PayAlg::solve`]).
    pub fn pay_as_you_go(pool: PoolId, budget: f64) -> Self {
        Self { pool, model: CrowdModel::PayAsYouGo { budget } }
    }
}

impl Serialize for DecisionTask {
    fn to_value(&self) -> Value {
        Value::object([("pool", self.pool.to_value()), ("task", self.model.to_value())])
    }
}

impl Deserialize for DecisionTask {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let pool = value.get("pool").ok_or_else(|| SerdeError::missing_field("pool"))?;
        let model = value.get("task").ok_or_else(|| SerdeError::missing_field("task"))?;
        Ok(Self { pool: PoolId::from_value(pool)?, model: CrowdModel::from_value(model)? })
    }
}

/// Service-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The task referenced a pool id that is not registered.
    UnknownPool(PoolId),
    /// The referenced index is outside the pool.
    JurorOutOfRange {
        /// The pool addressed.
        pool: PoolId,
        /// The offending position.
        index: usize,
        /// Current pool size.
        len: usize,
    },
    /// The underlying solver rejected the task.
    Solver(JuryError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownPool(id) => write!(f, "unknown {id}"),
            Self::JurorOutOfRange { pool, index, len } => {
                write!(f, "juror index {index} out of range for {pool} of size {len}")
            }
            Self::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<JuryError> for ServiceError {
    fn from(e: JuryError) -> Self {
        Self::Solver(e)
    }
}

impl Serialize for ServiceError {
    fn to_value(&self) -> Value {
        match self {
            Self::UnknownPool(id) => {
                Value::object([("kind", "unknown-pool".to_value()), ("pool", id.to_value())])
            }
            Self::JurorOutOfRange { pool, index, len } => Value::object([
                ("kind", "juror-out-of-range".to_value()),
                ("pool", pool.to_value()),
                ("index", index.to_value()),
                ("len", len.to_value()),
            ]),
            Self::Solver(e) => {
                Value::object([("kind", "solver".to_value()), ("error", e.to_value())])
            }
        }
    }
}

impl Deserialize for ServiceError {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let field = |name: &str| value.get(name).ok_or_else(|| SerdeError::missing_field(name));
        match value.get("kind").and_then(Value::as_str) {
            Some("unknown-pool") => Ok(Self::UnknownPool(PoolId::from_value(field("pool")?)?)),
            Some("juror-out-of-range") => Ok(Self::JurorOutOfRange {
                pool: PoolId::from_value(field("pool")?)?,
                index: usize::from_value(field("index")?)?,
                len: usize::from_value(field("len")?)?,
            }),
            Some("solver") => Ok(Self::Solver(JuryError::from_value(field("error")?)?)),
            _ => Err(SerdeError::expected("a service error object", value)),
        }
    }
}

/// Tuning knobs for a [`JuryService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads for [`JuryService::solve_batch`]
    /// (0 = one per available core).
    pub threads: usize,
    /// AltrALG configuration used for AltrM tasks.
    pub altr: AltrConfig,
    /// PayALG configuration used for PayM tasks.
    pub pay: PayConfig,
    /// When pools are partitioned into shards (disabled by default).
    pub shard: ShardConfig,
    /// Whether equal-content pools share one warm artifact set through
    /// the content-addressed store (on by default; see the crate docs
    /// for the fingerprint contract). Turning it off makes every pool
    /// build privately — the `multi_tenant_throughput` bench's baseline.
    pub share_artifacts: bool,
    /// TTL/idle eviction for **orphaned** warm-artifact entries. With the
    /// default `None`, an entry is evicted the instant its last holder
    /// detaches (refcount eviction — today's behaviour, and the cheapest:
    /// sole holders reclaim artifacts zero-copy). With `Some(ttl)`,
    /// detaches leave the entry interned and *stamp* it orphaned instead;
    /// a pool whose content returns within `ttl` re-joins the warm entry
    /// (impossible under refcount eviction), and entries that stay
    /// orphaned past `ttl` are reaped by the sweep that runs after every
    /// mutation / pool removal (or explicitly via
    /// [`JuryService::sweep_artifact_ttl`]), counted by
    /// [`ServiceStats::store_ttl_evictions`]. The trade: detaches lose
    /// the sole-holder zero-copy reclaim (they clone what repairs touch),
    /// and orphans hold memory for up to `ttl`.
    pub store_ttl: Option<Duration>,
    /// Directory of a warm-state snapshot to restore from (see the
    /// crate docs' *persistence contract*). With `Some(dir)`, a pool
    /// registering content the snapshot holds attaches to the verified
    /// restored artifacts at warm-up instead of cold-building; every
    /// loaded artifact is re-verified against the live pool first, and
    /// any mismatch falls back to the cold build (counted by
    /// [`ServiceStats::snapshot_rejections`]) — never an error, never
    /// a wrong answer. `None` (the default) restores nothing.
    /// Restoring requires [`ServiceConfig::share_artifacts`] (restored
    /// entries are store entries). The directory is only *read*;
    /// writing snapshots is explicit via [`JuryService::snapshot`].
    pub snapshot_dir: Option<PathBuf>,
    /// Reader staleness policy (see the crate docs' *multi-process
    /// contract*). With `Some(age)`, restore refuses snapshot
    /// generations whose commit stamp is older than `age` — or absent
    /// (legacy manifests carry none) — counting each refusal in
    /// [`ServiceStats::stale_snapshot_skips`] and cold-building
    /// instead. `None` (the default) restores any verified generation.
    pub max_snapshot_age: Option<Duration>,
    /// Writer-lease tuning for shared snapshot directories (see the
    /// crate docs' *multi-process contract*).
    pub lease: LeaseConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            altr: AltrConfig::default(),
            pay: PayConfig::default(),
            shard: ShardConfig::default(),
            share_artifacts: true,
            store_ttl: None,
            snapshot_dir: None,
            max_snapshot_age: None,
            lease: LeaseConfig::default(),
        }
    }
}

/// Monotone counters describing the service's work so far.
///
/// The repair counters make the cache's behaviour observable: a healthy
/// warm PayM workload shows `staircase_hits` tracking `tasks_solved`,
/// juror updates show `order_repairs`/`pmf_repairs` instead of
/// `full_repairs`, and `pmf_rebuilds` stays near zero (it counts
/// deconvolution-guard fallbacks).
///
/// ```
/// use jury_core::juror::pool_from_rates_and_costs;
/// use jury_service::{DecisionTask, JuryService};
///
/// let jurors = pool_from_rates_and_costs(&[(0.1, 0.2), (0.2, 0.1), (0.3, 0.4)]).unwrap();
/// let mut service = JuryService::new();
/// let pool = service.create_pool(jurors);
/// for _ in 0..3 {
///     service.solve(&DecisionTask::pay_as_you_go(pool, 0.5)).unwrap();
/// }
/// let stats = service.stats();
/// assert_eq!(stats.tasks_solved, 3);
/// assert_eq!(stats.staircase_hits, 2, "only the first budget runs a greedy scan");
/// assert_eq!(stats.full_repairs, 0, "budget changes never rebuild pmf artefacts");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Tasks solved (single or batched).
    pub tasks_solved: usize,
    /// Tasks whose pool cache was already warm (orders present) when the
    /// request arrived (cold solves and unknown pools are not hits; a
    /// sharded pool's lazily-pending AltrM selection still counts as
    /// warm — hits are order-level).
    pub cache_hits: usize,
    /// Cache (re)builds: a flat pool's artefact build, or a sharded
    /// pool's merged-order rebuild.
    pub cache_builds: usize,
    /// `solve_batch` invocations.
    pub batches: usize,
    /// Mutations that invalidated (dropped or repaired) warm cached
    /// state. Mutations on cold pools count nothing.
    pub cache_invalidations: usize,
    /// Juror mutations whose sorted orders (flat, per-shard and merged)
    /// were repaired in place (`O(n)` remove + insert, plus a
    /// renumbering pass for removals) instead of being recomputed.
    pub order_repairs: usize,
    /// Juror inserts absorbed by in-place repair — one rank-insert per
    /// sorted run plus a [`PoiBin::push`] per affected pmf-ladder
    /// checkpoint — on a warm pool, flat or sharded (a sharded insert
    /// used to drop the owning shard; this counter gates the fix).
    pub insert_repairs: usize,
    /// Warm PayM tasks answered from the budget staircase — a binary
    /// search plus a selection clone instead of a greedy rescan.
    pub staircase_hits: usize,
    /// Pmf checkpoint ladders repaired by factor deconvolution
    /// ([`jury_numeric::poibin::PoiBin::remove_factor`]) after a juror
    /// update/removal, instead of being re-convolved from scratch.
    pub pmf_repairs: usize,
    /// Ladder repairs that fell back to a full rebuild because the
    /// deconvolution conditioning guard declined (old rate within
    /// [`jury_numeric::poibin::DECONV_GUARD_BAND`] of ½, or error budget
    /// exceeded).
    pub pmf_rebuilds: usize,
    /// Shard-local repairs: per-shard cache rebuilds performed while
    /// the rest of the warm state survived — other shards stayed warm,
    /// or the merged layer was adopted from an interned artifact set
    /// (per-shard caches are always built per pool; each rebuilt shard
    /// counts once).
    pub shard_repairs: usize,
    /// Full repairs: cache builds that recomputed everything — a flat
    /// pool's from-scratch build, or a sharded warm-up with every shard
    /// cold (including each pool's first build).
    pub full_repairs: usize,
    /// Materialised JER profiles repaired in place after a juror
    /// mutation (prefix entries reused verbatim, suffix re-derived from
    /// the nearest pmf-ladder checkpoint) instead of being dropped for
    /// an `O(N²)` rebuild.
    pub profile_repairs: usize,
    /// Candidate jury sizes eliminated by the warm AltrM bound sweep
    /// (`AltrAlg::solve_pruned`'s Paley–Zygmund vs Cantelli/Chernoff
    /// comparison) across all AltrM (re)solves — exact JER was never
    /// computed for these.
    pub bound_pruned: usize,
    /// Shards observed shrinking below the configured fraction of the
    /// mean shard size ([`ShardConfig::degenerate_percent`]); each shard
    /// counts once per episode of degeneracy. Under the default
    /// [`ShardConfig::rebalance`] policy every episode is healed online
    /// (see [`ServiceStats::shard_rebalances`]); with re-balancing off
    /// this is detection only.
    pub degenerate_shards: usize,
    /// Online re-balancing episodes: a degeneracy-flagged pool had
    /// members moved between shards, each move repairing both shards'
    /// runs and ladders in place. Membership permutation only — the
    /// merged orders, and therefore every selection, are unchanged. Each
    /// episode counts once however many jurors moved.
    pub shard_rebalances: usize,
    /// Pools that attached to an already-interned warm-artifact set
    /// instead of building their own (registration-time and
    /// warm-time attaches; re-joins after mutations count separately).
    pub artifact_share_hits: usize,
    /// Mutations that detached a pool from a shared artifact set onto a
    /// privately-owned copy (copy-on-write; sole holders reclaim the
    /// artifacts zero-copy).
    pub artifact_detaches: usize,
    /// Post-mutation re-attaches: the incrementally-updated fingerprint
    /// matched an existing entry (content-verified) and the pool dropped
    /// its private copy for the shared one.
    pub artifact_rejoins: usize,
    /// Orphaned warm-artifact entries reaped by the TTL sweep — entries
    /// no pool held for longer than [`ServiceConfig::store_ttl`]. Stays
    /// zero under the default refcount-eviction policy.
    pub store_ttl_evictions: usize,
    /// Warm-up attaches served from a verified snapshot entry
    /// ([`ServiceConfig::snapshot_dir`]): the pool skipped its cold
    /// build because restored artifacts passed every verification gate.
    pub snapshot_restores: usize,
    /// Snapshot candidates *refused* at restore time — truncated or
    /// bit-flipped files, section/manifest checksum mismatches, version
    /// skew, key or content mismatches against the registering pool,
    /// and layout/config drift over known content. Each rejection falls
    /// back to the ordinary cold build.
    pub snapshot_rejections: usize,
    /// Restores refused by the staleness policy
    /// ([`ServiceConfig::max_snapshot_age`]): the snapshot generation
    /// was verified-restorable but too old (or unstamped), so the pool
    /// cold-built instead.
    pub stale_snapshot_skips: usize,
    /// Gauge (not a counter): the highest snapshot generation this
    /// service has observed — committed by its own writer or read from
    /// [`ServiceConfig::snapshot_dir`]. 0 until a generation exists
    /// (legacy `manifest.json` snapshots also read as 0).
    pub snapshot_generation: usize,
    /// Gauge (not a counter): milliseconds since that generation's
    /// commit stamp at the moment [`JuryService::stats`] was called; 0
    /// when no stamped generation has been observed.
    pub snapshot_age_ms: usize,
    /// Gauge (not a counter): the generation of the snapshot catalog
    /// this service currently *reads from* — loaded at construction
    /// from [`ServiceConfig::snapshot_dir`] or hot-swapped in by
    /// [`JuryService::adopt_snapshot`] since. 0 with no catalog
    /// attached. Unlike [`ServiceStats::snapshot_generation`] this
    /// never tracks the service's own writer — it is the follower's
    /// view of the directory.
    pub follower_generation: usize,
    /// Gauge (not a counter): milliseconds since the adopted
    /// generation's commit stamp — how stale the follower's view of
    /// the directory is, and (together with the watch poll interval)
    /// the bound on how far a follower trails its writer. 0 with no
    /// stamped adopted generation.
    pub follower_lag_ms: usize,
    /// Newer committed generations hot-swapped into this live service
    /// by [`JuryService::adopt_snapshot`] — each one re-verified
    /// through the ordinary restore gates, no restart involved.
    pub generations_adopted: usize,
    /// Snapshot entries *refused* during adoption pre-warm — the
    /// adoption-path slice of [`ServiceStats::snapshot_rejections`]
    /// (every adoption rejection counts in both). The generation still
    /// adopts; the refused pools cold-build as usual.
    pub adoptions_rejected: usize,
}

impl Serialize for ServiceStats {
    fn to_value(&self) -> Value {
        Value::object([
            ("tasks_solved", self.tasks_solved.to_value()),
            ("cache_hits", self.cache_hits.to_value()),
            ("cache_builds", self.cache_builds.to_value()),
            ("batches", self.batches.to_value()),
            ("cache_invalidations", self.cache_invalidations.to_value()),
            ("order_repairs", self.order_repairs.to_value()),
            ("insert_repairs", self.insert_repairs.to_value()),
            ("staircase_hits", self.staircase_hits.to_value()),
            ("pmf_repairs", self.pmf_repairs.to_value()),
            ("pmf_rebuilds", self.pmf_rebuilds.to_value()),
            ("shard_repairs", self.shard_repairs.to_value()),
            ("full_repairs", self.full_repairs.to_value()),
            ("profile_repairs", self.profile_repairs.to_value()),
            ("bound_pruned", self.bound_pruned.to_value()),
            ("degenerate_shards", self.degenerate_shards.to_value()),
            ("shard_rebalances", self.shard_rebalances.to_value()),
            ("artifact_share_hits", self.artifact_share_hits.to_value()),
            ("artifact_detaches", self.artifact_detaches.to_value()),
            ("artifact_rejoins", self.artifact_rejoins.to_value()),
            ("store_ttl_evictions", self.store_ttl_evictions.to_value()),
            ("snapshot_restores", self.snapshot_restores.to_value()),
            ("snapshot_rejections", self.snapshot_rejections.to_value()),
            ("stale_snapshot_skips", self.stale_snapshot_skips.to_value()),
            ("snapshot_generation", self.snapshot_generation.to_value()),
            ("snapshot_age_ms", self.snapshot_age_ms.to_value()),
            ("follower_generation", self.follower_generation.to_value()),
            ("follower_lag_ms", self.follower_lag_ms.to_value()),
            ("generations_adopted", self.generations_adopted.to_value()),
            ("adoptions_rejected", self.adoptions_rejected.to_value()),
        ])
    }
}

impl Deserialize for ServiceStats {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if !matches!(value, Value::Object(_)) {
            return Err(SerdeError::expected("a stats object", value));
        }
        Ok(Self {
            tasks_solved: stat_field(value, "tasks_solved")?,
            cache_hits: stat_field(value, "cache_hits")?,
            cache_builds: stat_field(value, "cache_builds")?,
            batches: stat_field(value, "batches")?,
            cache_invalidations: stat_field(value, "cache_invalidations")?,
            order_repairs: stat_field(value, "order_repairs")?,
            insert_repairs: stat_field(value, "insert_repairs")?,
            staircase_hits: stat_field(value, "staircase_hits")?,
            pmf_repairs: stat_field(value, "pmf_repairs")?,
            pmf_rebuilds: stat_field(value, "pmf_rebuilds")?,
            shard_repairs: stat_field(value, "shard_repairs")?,
            full_repairs: stat_field(value, "full_repairs")?,
            profile_repairs: stat_field(value, "profile_repairs")?,
            bound_pruned: stat_field(value, "bound_pruned")?,
            degenerate_shards: stat_field(value, "degenerate_shards")?,
            shard_rebalances: stat_field(value, "shard_rebalances")?,
            artifact_share_hits: stat_field(value, "artifact_share_hits")?,
            artifact_detaches: stat_field(value, "artifact_detaches")?,
            artifact_rejoins: stat_field(value, "artifact_rejoins")?,
            store_ttl_evictions: stat_field(value, "store_ttl_evictions")?,
            snapshot_restores: stat_field(value, "snapshot_restores")?,
            snapshot_rejections: stat_field(value, "snapshot_rejections")?,
            stale_snapshot_skips: stat_field(value, "stale_snapshot_skips")?,
            snapshot_generation: stat_field(value, "snapshot_generation")?,
            snapshot_age_ms: stat_field(value, "snapshot_age_ms")?,
            follower_generation: stat_field(value, "follower_generation")?,
            follower_lag_ms: stat_field(value, "follower_lag_ms")?,
            generations_adopted: stat_field(value, "generations_adopted")?,
            adoptions_rejected: stat_field(value, "adoptions_rejected")?,
        })
    }
}

/// Reads one counter field. Missing fields read as zero so stats
/// payloads stay forward-compatible: an older client can parse a newer
/// server's `/stats` (extra counters ignored by lookup) and vice versa.
fn stat_field(value: &Value, name: &str) -> Result<usize, SerdeError> {
    match value.get(name) {
        None => Ok(0),
        Some(v) => usize::from_value(v),
    }
}

/// The solved AltrM answer of one pool snapshot: shared so batch
/// replays can hand out the same allocation
/// ([`JuryService::solve_batch_shared`]) instead of copying a
/// potentially huge member list per task.
type AltrAnswer = Result<Arc<Selection>, JuryError>;

/// Everything derived from one immutable snapshot of a flat pool.
#[derive(Debug, Clone)]
struct PoolCache {
    /// Pool indices ascending by ε — AltrALG's visit order.
    eps_order: Vec<usize>,
    /// ε values aligned with `eps_order`.
    eps_sorted: Vec<f64>,
    /// PayALG's budget-independent greedy visit order.
    greedy_order: Vec<usize>,
    /// The solved AltrM answer, replayed verbatim on every AltrM task.
    /// Dropped by mutations (the selection may genuinely change) and
    /// re-solved rescan-free by the bound-pruned scan.
    altr: Option<AltrAnswer>,
    /// The odd-size JER profile (Figure 3(a)'s curve for this pool),
    /// built lazily by [`JuryService::jer_profile`] and *repaired in
    /// place* on juror mutations (prefix entries reused, suffix resumed
    /// from the pmf ladder).
    profile: Option<JerProfile>,
    /// Prefix-pmf checkpoints over `eps_sorted`, built lazily by the
    /// first [`JuryService::jer_probe`] or profile repair and repaired
    /// in place on juror mutations (see [`ladder`]).
    ladder: Option<PmfLadder>,
    /// The PayM budget→selection staircase over `greedy_order`, recorded
    /// lazily per budget and cleared by every mutation.
    staircase: Staircase,
}

/// A flat pool's warm state: cold, privately owned (mutated in place by
/// the repair paths), or attached to a shared warm-artifact set.
#[derive(Debug, Clone)]
enum FlatCache {
    /// Nothing warm yet.
    Cold,
    /// Privately-owned artifacts — the only state repairs write to.
    Private(PoolCache),
    /// Attached to an interned [`ArtifactSet`]; mutations detach first.
    Shared(SharedFlat),
}

/// A flat pool's attachment to a store entry.
#[derive(Debug, Clone)]
struct SharedFlat {
    link: StoreLink,
    /// `None` for sequence-identical attachers (founding position space
    /// *is* this pool's); `Some` for permuted attachers, holding the
    /// σ-translated orders plus the position-space artifacts that cannot
    /// be shared across permutations.
    view: Option<PermutedView>,
}

impl FlatCache {
    /// The position-space ε order, however the cache is held.
    fn eps_order(&self) -> Option<&[usize]> {
        match self {
            Self::Cold => None,
            Self::Private(c) => Some(&c.eps_order),
            Self::Shared(sf) => Some(match &sf.view {
                None => &sf.link.set.eps_order,
                Some(view) => &view.eps_order,
            }),
        }
    }

    /// Whether any orders are present (the warmth level PayM needs).
    fn has_orders(&self) -> bool {
        !matches!(self, Self::Cold)
    }

    /// Whether the AltrM answer this pool would replay is present.
    fn has_altr(&self) -> bool {
        match self {
            Self::Cold => false,
            Self::Private(c) => c.altr.is_some(),
            Self::Shared(sf) => match &sf.view {
                None => sf.link.set.altr.get().is_some(),
                Some(view) => view.altr.is_some(),
            },
        }
    }
}

/// How a registered pool is served: flat (one sorted scan) or sharded.
#[derive(Debug, Clone)]
enum PoolState {
    /// Below the shard threshold: one cache over the whole pool.
    Flat {
        /// The per-generation cache.
        cache: FlatCache,
    },
    /// At or above the shard threshold: K shards with per-shard caches;
    /// `link` attaches the merged-layer artifacts to the store.
    Sharded {
        /// The sharded pool.
        sp: ShardedPool,
        /// Store attachment of the merged-layer artifacts, if any.
        link: Option<StoreLink>,
    },
}

#[derive(Debug, Clone)]
struct PoolEntry {
    jurors: Vec<Juror>,
    state: PoolState,
    /// Running multiset hash of the jurors' solver-relevant content —
    /// the store key, updated in `O(1)` per mutation.
    fp: PoolFingerprint,
}

/// What one [`JuryService::adopt_snapshot`] call did — returned only
/// when a strictly newer committed generation was adopted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdoptReport {
    /// The generation now serving reads.
    pub generation: u64,
    /// Cold pools pre-warmed from the adopted generation (verified
    /// restores published into the store; also counted in
    /// [`ServiceStats::snapshot_restores`]).
    pub restored: usize,
    /// Candidate entries refused by verification during pre-warm (also
    /// counted in [`ServiceStats::snapshot_rejections`] and
    /// [`ServiceStats::adoptions_rejected`]).
    pub rejected: usize,
}

/// The serving layer: pool registry + per-pool caches + batched parallel
/// solving. See the crate docs for the architecture.
#[derive(Debug, Default)]
pub struct JuryService {
    config: ServiceConfig,
    pools: HashMap<u64, PoolEntry>,
    next_pool: u64,
    stats: ServiceStats,
    /// Persistent per-worker scratches, reused across batches.
    scratches: Vec<SolverScratch>,
    /// The content-addressed warm-artifact store (see the crate docs).
    store: ArtifactStore,
    /// The parsed snapshot catalog when [`ServiceConfig::snapshot_dir`]
    /// is set — consulted (read-only) by warm-ups before cold-building.
    snapshots: Option<snapshot::Catalog>,
    /// Writer-side snapshot state: holder identity, per-directory
    /// generation/lease view (see the crate docs' *multi-process
    /// contract*). Never cloned — a cloned service is a distinct
    /// would-be writer.
    snap: snapshot::WriterState,
}

impl Clone for JuryService {
    /// A fully independent copy. The warm-artifact store is
    /// deep-cloned — every interned entry re-wrapped in a fresh `Arc`
    /// (immutable innards still share memory) and every attached pool
    /// re-linked to its copy — because sharing entries across services
    /// would break the exact strong-count accounting behind sole-owner
    /// detach and orphan eviction. Warm state, counters and pool ids
    /// carry over; worker scratches start empty (they refill lazily).
    fn clone(&self) -> Self {
        let (store, remap) = self.store.deep_clone();
        let mut pools = self.pools.clone();
        for entry in pools.values_mut() {
            let link = match &mut entry.state {
                PoolState::Flat { cache: FlatCache::Shared(sf) } => Some(&mut sf.link),
                PoolState::Sharded { link: Some(link), .. } => Some(link),
                _ => None,
            };
            if let Some(link) = link {
                // Every attached pool's handle is the map's (publish
                // never replaces an entry), so the remap always hits;
                // the fallback keeps an unexpected stray handle working
                // as a plain non-sole holder.
                if let Some(copy) = remap.get(&Arc::as_ptr(&link.set)) {
                    link.set = copy.clone();
                }
            }
        }
        Self {
            config: self.config.clone(),
            pools,
            next_pool: self.next_pool,
            stats: self.stats,
            scratches: Vec::new(),
            store,
            snapshots: self.snapshots.clone(),
            snap: snapshot::WriterState::default(),
        }
    }
}

/// The solver-relevant configuration bits entering every store key: the
/// knobs that change what a solver *outputs* (threads, shard thresholds
/// and degeneracy percentages only change how fast).
fn config_key(config: &ServiceConfig) -> u64 {
    let strategy = match config.altr.strategy {
        AltrStrategy::PaperRecompute => 0u64,
        AltrStrategy::Incremental => 1,
    };
    let engine = match config.altr.engine {
        JerEngine::Naive => 0u64,
        JerEngine::DynamicProgramming => 1,
        JerEngine::TailDp => 2,
        JerEngine::Convolution => 3,
        JerEngine::Auto => 4,
    };
    strategy
        | (u64::from(config.altr.use_lower_bound) << 1)
        | (engine << 2)
        | (u64::from(config.pay.strict_improvement) << 5)
}

impl JuryService {
    /// A service with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A service with explicit configuration. When
    /// [`ServiceConfig::snapshot_dir`] is set, the directory's manifest
    /// is read (once, here); entry files are opened lazily as matching
    /// content registers. A missing manifest is simply an empty catalog
    /// — a fresh directory restores nothing and rejects nothing.
    pub fn with_config(config: ServiceConfig) -> Self {
        let snapshots = config.snapshot_dir.as_deref().map(snapshot::Catalog::load);
        Self { config, snapshots, ..Self::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Work counters, plus the snapshot gauges
    /// (`snapshot_generation`/`snapshot_age_ms`) computed from the
    /// highest generation this service has observed — read from
    /// [`ServiceConfig::snapshot_dir`] at construction or committed by
    /// its own writer since.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.stats;
        let mut gen = 0u64;
        let mut written_at = None;
        if let Some(catalog) = &self.snapshots {
            gen = catalog.generation();
            written_at = catalog.written_at_ms();
            stats.follower_generation = gen as usize;
            if let Some(written) = written_at {
                stats.follower_lag_ms = snapshot::lease::now_ms().saturating_sub(written) as usize;
            }
        }
        if let Some((g, w)) = self.snap.observed() {
            if g >= gen {
                gen = g;
                written_at = w;
            }
        }
        stats.snapshot_generation = gen as usize;
        if let Some(written) = written_at {
            stats.snapshot_age_ms = snapshot::lease::now_ms().saturating_sub(written) as usize;
        }
        stats
    }

    /// Number of registered pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Writes an incremental, lease-coordinated checkpoint of the
    /// warm-artifact store to `dir` (see the crate docs' *persistence
    /// contract* and *multi-process contract*): acquires or refreshes
    /// the single-writer lease (breaking a stale one by epoch bump),
    /// writes only the entries that changed since the directory's last
    /// generation, re-verifies the lease, commits
    /// `manifest-<gen>.json`, then garbage-collects superseded files.
    /// A crash at any byte boundary leaves the previous generation
    /// fully readable; a checkpoint with nothing dirty touches no
    /// file. Read back by a service whose
    /// [`ServiceConfig::snapshot_dir`] points here. Only store entries
    /// are persisted: private (unshared) pool caches and pool
    /// registrations themselves are rebuilt by the restarted process's
    /// own `create_pool` calls.
    ///
    /// Errors are never silent partial successes:
    /// [`SnapshotError::LeaseHeld`] (another live writer — restore
    /// read-only instead), [`SnapshotError::Fenced`] (this writer's
    /// lease was broken; no commit happened), or
    /// [`SnapshotError::Partial`] (entry writes failed; the manifest
    /// was *not* committed, readers keep the previous generation).
    pub fn snapshot(&mut self, dir: impl AsRef<Path>) -> Result<SnapshotReport, SnapshotError> {
        snapshot::write_incremental(
            &mut self.snap,
            dir.as_ref(),
            self.config.lease.ttl,
            self.store.iter_entries(),
        )
    }

    /// Releases the writer lease on `dir` if this service holds it —
    /// the graceful-drain complement to [`JuryService::snapshot`]. A
    /// lease another writer broke or now holds is left untouched.
    /// Never required for safety (an unreleased lease merely makes the
    /// next writer wait out [`LeaseConfig::ttl`]).
    pub fn release_snapshot_lease(&mut self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        snapshot::release_lease(&mut self.snap, dir.as_ref())
    }

    /// Hot-swaps a newer committed snapshot generation into this live
    /// service — the warm-follower adoption step (see the crate docs'
    /// *failover contract*). Re-reads [`ServiceConfig::snapshot_dir`];
    /// when the highest durable generation there is strictly newer
    /// than the catalog this service reads from, the fresh catalog
    /// replaces it and every still-**cold** pool is pre-warmed through
    /// the ordinary verified-restore path (the same content gates a
    /// cold start uses — adoption can never loosen verification).
    /// Warm pools are deliberately untouched: their in-flight answers
    /// stay bit-identical, and they pick the new generation up
    /// whenever they next go cold. Returns `None` when there is
    /// nothing newer (including an unreadable or empty directory —
    /// adoption never moves backwards); otherwise one
    /// [`ServiceStats::generations_adopted`] is counted and pre-warm
    /// rejections feed both [`ServiceStats::snapshot_rejections`] and
    /// [`ServiceStats::adoptions_rejected`].
    pub fn adopt_snapshot(&mut self) -> Option<AdoptReport> {
        let dir = self.config.snapshot_dir.clone()?;
        let current = self.snapshots.as_ref().map_or(0, snapshot::Catalog::generation);
        let fresh = snapshot::Catalog::load(&dir);
        let generation = fresh.generation();
        if generation <= current {
            return None;
        }
        self.snapshots = Some(fresh);
        self.stats.generations_adopted += 1;
        let restores_before = self.stats.snapshot_restores;
        let rejections_before = self.stats.snapshot_rejections;
        if self.config.share_artifacts {
            let config_bits = config_key(&self.config);
            let max_age = self.config.max_snapshot_age;
            let Self { pools, store, stats, snapshots, .. } = &mut *self;
            for entry in pools.values() {
                let key = match &entry.state {
                    PoolState::Flat { cache: FlatCache::Cold } => StoreKey {
                        fp: entry.fp.key(),
                        layout: LayoutKey::Flat,
                        config: config_bits,
                    },
                    PoolState::Sharded { sp, link: None } if !sp.is_warm() => StoreKey {
                        fp: entry.fp.key(),
                        layout: LayoutKey::Sharded { shards: sp.shard_count() },
                        config: config_bits,
                    },
                    // Anything warm keeps serving what it has.
                    _ => continue,
                };
                restore_into_store(
                    store,
                    snapshots.as_ref(),
                    &key,
                    &entry.jurors,
                    max_age,
                    &mut stats.snapshot_restores,
                    &mut stats.snapshot_rejections,
                    &mut stats.stale_snapshot_skips,
                );
            }
        }
        let restored = self.stats.snapshot_restores - restores_before;
        let rejected = self.stats.snapshot_rejections - rejections_before;
        self.stats.adoptions_rejected += rejected;
        Some(AdoptReport { generation, restored, rejected })
    }

    /// Installs a [`FaultPlane`] over this service's snapshot and
    /// lease filesystem operations — test instrumentation for the
    /// chaos harness (see [`snapshot watch` module docs](SnapshotWatcher)
    /// and [`FaultScheduler`]). Production services keep the default
    /// [`NoFaults`] plane.
    pub fn set_snapshot_fault_plane(&mut self, faults: Arc<dyn FaultPlane>) {
        self.snap.set_fault_plane(faults);
    }

    /// The holder id this service writes into `writer.lease` — what a
    /// competing writer sees in [`SnapshotError::LeaseHeld`] and a
    /// frontend serves as the leader hint.
    pub fn snapshot_holder(&self) -> &str {
        self.snap.holder()
    }

    // ------------------------------------------------------------------
    // Pool registry
    // ------------------------------------------------------------------

    /// Registers a pool and returns its handle. The pool may be empty
    /// (tasks on it then fail exactly like the direct solvers do). Pools
    /// at or above [`ShardConfig::threshold`] are sharded immediately.
    pub fn create_pool(&mut self, jurors: Vec<Juror>) -> PoolId {
        let id = self.next_pool;
        self.next_pool += 1;
        let state = if self.config.shard.applies(jurors.len()) {
            PoolState::Sharded {
                sp: ShardedPool::new(
                    jurors.len(),
                    self.config.shard.shards,
                    self.config.shard.degenerate_percent,
                ),
                link: None,
            }
        } else {
            PoolState::Flat { cache: FlatCache::Cold }
        };
        let fp = PoolFingerprint::from_jurors(&jurors);
        self.pools.insert(id, PoolEntry { jurors, state, fp });
        PoolId(id)
    }

    /// Unregisters a pool, returning its jurors. The id is never reused,
    /// so stale handles keep failing with
    /// [`ServiceError::UnknownPool`] instead of aliasing a later pool.
    /// Shared warm artifacts the pool held are released (entries no pool
    /// holds any more are evicted from the store).
    pub fn remove_pool(&mut self, pool: PoolId) -> Result<Vec<Juror>, ServiceError> {
        let entry = self.pools.remove(&pool.0).ok_or(ServiceError::UnknownPool(pool))?;
        let key = match &entry.state {
            PoolState::Flat { cache: FlatCache::Shared(sf) } => Some(sf.link.key),
            PoolState::Sharded { link: Some(link), .. } => Some(link.key),
            _ => None,
        };
        let jurors = entry.jurors;
        drop(entry.state);
        if let Some(key) = key {
            self.store.release(&key, self.config.store_ttl.is_some());
        }
        self.sweep_store_ttl();
        Ok(jurors)
    }

    /// The pool's current content-fingerprint key — equal multisets of
    /// solver-relevant juror content (ε and cost bits) produce equal
    /// keys regardless of arrangement; any single-juror content change
    /// produces a different key. Maintained incrementally, so this is a
    /// constant-time read.
    pub fn fingerprint(&self, pool: PoolId) -> Result<FingerprintKey, ServiceError> {
        self.pools.get(&pool.0).map(|entry| entry.fp.key()).ok_or(ServiceError::UnknownPool(pool))
    }

    /// Whether two pools currently hold the *same* interned warm-artifact
    /// set (pointer equality of the shared `Arc`) — true for pools that
    /// attached, re-joined or published to one store entry; false when
    /// either is cold, privately detached, or the pools' content
    /// diverged.
    pub fn shares_artifacts_with(&self, a: PoolId, b: PoolId) -> Result<bool, ServiceError> {
        let set_of = |id: PoolId| -> Result<Option<&Arc<ArtifactSet>>, ServiceError> {
            let entry = self.pools.get(&id.0).ok_or(ServiceError::UnknownPool(id))?;
            Ok(match &entry.state {
                PoolState::Flat { cache: FlatCache::Shared(sf) } => Some(&sf.link.set),
                PoolState::Sharded { link: Some(link), .. } => Some(&link.set),
                _ => None,
            })
        };
        let (sa, sb) = (set_of(a)?, set_of(b)?);
        Ok(match (sa, sb) {
            (Some(sa), Some(sb)) => Arc::ptr_eq(sa, sb),
            _ => false,
        })
    }

    /// Number of artifact sets currently interned in the warm-artifact
    /// store (observability; live pools keep their entries alive,
    /// orphaned entries are evicted on detach).
    pub fn artifact_entries(&self) -> usize {
        self.store.len()
    }

    /// The current jurors of `pool` (selection member indices refer to
    /// positions in this slice).
    pub fn pool(&self, pool: PoolId) -> Result<&[Juror], ServiceError> {
        self.pools
            .get(&pool.0)
            .map(|entry| entry.jurors.as_slice())
            .ok_or(ServiceError::UnknownPool(pool))
    }

    /// Whether `pool` is currently served sharded.
    pub fn is_sharded(&self, pool: PoolId) -> Result<bool, ServiceError> {
        self.pools
            .get(&pool.0)
            .map(|entry| matches!(entry.state, PoolState::Sharded { .. }))
            .ok_or(ServiceError::UnknownPool(pool))
    }

    /// The number of shards serving `pool` (`None` for flat pools).
    pub fn shard_count(&self, pool: PoolId) -> Result<Option<usize>, ServiceError> {
        self.pools
            .get(&pool.0)
            .map(|entry| match &entry.state {
                PoolState::Flat { .. } => None,
                PoolState::Sharded { sp, .. } => Some(sp.shard_count()),
            })
            .ok_or(ServiceError::UnknownPool(pool))
    }

    /// Appends a juror; returns its position. A warm pool — flat or
    /// sharded — is repaired in place: one rank-insert per sorted order
    /// (the owning shard's runs and the merged orders, for sharded
    /// pools), one [`PoiBin::push`] per affected pmf-ladder checkpoint
    /// and (flat) an in-place profile repair; only the AltrM answer
    /// (re-solved rescan-free by the bound-pruned scan) and the budget
    /// staircase drop. A flat pool crossing [`ShardConfig::threshold`]
    /// is promoted to sharded (a full rebuild); a sharded insert that
    /// tips a shard into degeneracy triggers an online re-balance.
    pub fn insert_juror(&mut self, pool: PoolId, juror: Juror) -> Result<usize, ServiceError> {
        let shard_config = self.config.shard;
        let ttl_enabled = self.config.store_ttl.is_some();
        let Self { pools, store, .. } = &mut *self;
        let entry = pools.get_mut(&pool.0).ok_or(ServiceError::UnknownPool(pool))?;
        let promote = matches!(entry.state, PoolState::Flat { .. })
            && shard_config.applies(entry.jurors.len() + 1);
        let flat_was_warm = matches!(&entry.state, PoolState::Flat { cache } if cache.has_orders());
        // A promotion replaces the flat cache wholesale, so a shared
        // attachment is merely dropped — never materialised into the
        // private copy an in-place repair would need.
        let detached = if promote {
            discard_flat_share(store, &mut entry.state, ttl_enabled)
        } else {
            detach_pool(store, &mut entry.state, ttl_enabled)
        };
        entry.fp.insert(&juror);
        entry.jurors.push(juror);
        let pos = entry.jurors.len() - 1;
        let effect = match &mut entry.state {
            PoolState::Flat { cache } if promote => {
                *cache = FlatCache::Cold;
                MutationEffect { invalidated: flat_was_warm, ..Default::default() }
            }
            PoolState::Flat { cache } => match cache {
                FlatCache::Private(c) => repair_flat_insert(c, &entry.jurors, pos),
                _ => MutationEffect::default(),
            },
            PoolState::Sharded { sp, .. } => {
                let mut effect = sp.insert(&entry.jurors);
                effect.newly_degenerate = sp.refresh_degeneracy(shard_config.degenerate_percent);
                if shard_config.rebalance && effect.newly_degenerate > 0 {
                    effect.rebalanced =
                        sp.rebalance(&entry.jurors, shard_config.degenerate_percent);
                    sp.refresh_degeneracy(shard_config.degenerate_percent);
                }
                effect
            }
        };
        if promote {
            entry.state = PoolState::Sharded {
                sp: ShardedPool::new(
                    entry.jurors.len(),
                    shard_config.shards,
                    shard_config.degenerate_percent,
                ),
                link: None,
            };
        }
        self.count_mutation(effect);
        self.settle_after_mutation(pool, detached);
        Ok(pos)
    }

    /// Replaces the juror at `index` (e.g. a re-estimated error rate).
    /// Warm state is *repaired in place*, flat or sharded: every sorted
    /// order gets one remove + one rank-insert (`O(n)`, bit-identical to
    /// a re-sort), pmf checkpoint ladders get one factor division per
    /// affected checkpoint (numerically equal to a re-convolution; the
    /// deconvolution guard falls back to a rebuild, observable as
    /// [`ServiceStats::pmf_rebuilds`]). Only the lazily-derived artefacts
    /// whose answers may genuinely change (AltrM selection, profile,
    /// budget staircase) are dropped.
    pub fn update_juror(
        &mut self,
        pool: PoolId,
        index: usize,
        juror: Juror,
    ) -> Result<(), ServiceError> {
        let ttl_enabled = self.config.store_ttl.is_some();
        let Self { pools, store, .. } = &mut *self;
        let entry = pools.get_mut(&pool.0).ok_or(ServiceError::UnknownPool(pool))?;
        let len = entry.jurors.len();
        let slot = entry.jurors.get_mut(index).ok_or(ServiceError::JurorOutOfRange {
            pool,
            index,
            len,
        })?;
        let old = *slot;
        *slot = juror;
        entry.fp.replace(&old, &juror);
        let detached = detach_pool(store, &mut entry.state, ttl_enabled);
        let effect = match &mut entry.state {
            PoolState::Flat { cache } => match cache {
                FlatCache::Private(c) => repair_flat_update(c, &entry.jurors, index, &old),
                _ => MutationEffect::default(),
            },
            PoolState::Sharded { sp, .. } => sp.update(index, &entry.jurors, &old),
        };
        self.count_mutation(effect);
        self.settle_after_mutation(pool, detached);
        Ok(())
    }

    /// Removes and returns the juror at `index`, preserving the order of
    /// the rest (so remaining positions shift down by one, exactly like
    /// `Vec::remove`). Warm state is repaired in place like
    /// [`JuryService::update_juror`], with an extra renumbering pass over
    /// the surviving positions.
    pub fn remove_juror(&mut self, pool: PoolId, index: usize) -> Result<Juror, ServiceError> {
        let shard_config = self.config.shard;
        let ttl_enabled = self.config.store_ttl.is_some();
        let Self { pools, store, .. } = &mut *self;
        let entry = pools.get_mut(&pool.0).ok_or(ServiceError::UnknownPool(pool))?;
        let len = entry.jurors.len();
        if index >= len {
            return Err(ServiceError::JurorOutOfRange { pool, index, len });
        }
        let detached = detach_pool(store, &mut entry.state, ttl_enabled);
        let mut effect = match &mut entry.state {
            PoolState::Flat { cache } => match cache {
                FlatCache::Private(c) => repair_flat_remove(c, index),
                _ => MutationEffect::default(),
            },
            // The victim is still present: its runs entries are located
            // by binary rank against the pre-removal pool.
            PoolState::Sharded { sp, .. } => sp.remove(index, &entry.jurors),
        };
        let removed = entry.jurors.remove(index);
        entry.fp.remove(&removed);
        if let PoolState::Sharded { sp, .. } = &mut entry.state {
            effect.newly_degenerate = sp.refresh_degeneracy(shard_config.degenerate_percent);
            if shard_config.rebalance && effect.newly_degenerate > 0 {
                effect.rebalanced = sp.rebalance(&entry.jurors, shard_config.degenerate_percent);
                sp.refresh_degeneracy(shard_config.degenerate_percent);
            }
        }
        self.count_mutation(effect);
        self.settle_after_mutation(pool, detached);
        Ok(removed)
    }

    /// The closing half of every mutation: counts a detach, then tries
    /// to settle the pool back into the store under its post-mutation
    /// fingerprint — **re-joining** an existing entry when one matches
    /// (content-verified, never by hash alone), or **publishing** the
    /// repaired private artifacts under the new key when the pool
    /// detached from an entry with surviving siblings (identically
    /// mutated siblings then re-join it instead of re-repairing).
    /// Mutated pools with no entry to join and no siblings to serve stay
    /// private — repairs keep their in-place cost and the store stays
    /// bounded by live content states.
    fn settle_after_mutation(&mut self, pool: PoolId, detached: Option<bool>) {
        self.settle_after_mutation_inner(pool, detached);
        self.sweep_store_ttl();
    }

    fn settle_after_mutation_inner(&mut self, pool: PoolId, detached: Option<bool>) {
        let had_siblings = match detached {
            Some(siblings) => {
                self.stats.artifact_detaches += 1;
                siblings
            }
            None => false,
        };
        if !self.config.share_artifacts {
            return;
        }
        let config_bits = config_key(&self.config);
        let Self { pools, store, stats, .. } = &mut *self;
        let Some(entry) = pools.get_mut(&pool.0) else {
            return;
        };
        match &mut entry.state {
            PoolState::Flat { cache } => {
                if !matches!(cache, FlatCache::Private(_)) {
                    return;
                }
                let key =
                    StoreKey { fp: entry.fp.key(), layout: LayoutKey::Flat, config: config_bits };
                if let Some(shared) = attach_flat(store, key, &entry.jurors) {
                    // Seed the entry's empty lazy slots with the
                    // just-repaired rank-space artifacts instead of
                    // dropping them — the whole cohort then skips the
                    // O(N²) rebuild (repair lineage is the documented
                    // numerical carve-out either way).
                    if let (FlatCache::Private(c), FlatCache::Shared(sf)) = (&mut *cache, &shared) {
                        if let Some(ladder) = c.ladder.take() {
                            sf.link.set.set_ladder(ladder);
                        }
                        if let Some(profile) = c.profile.take() {
                            sf.link.set.set_profile(Arc::new(profile));
                        }
                    }
                    *cache = shared;
                    stats.artifact_rejoins += 1;
                } else if had_siblings && !store.contains(&key) {
                    let FlatCache::Private(c) = std::mem::replace(cache, FlatCache::Cold) else {
                        unreachable!("checked above");
                    };
                    *cache = match store.publish(key, ArtifactSet::from_cache(c, &entry.jurors)) {
                        Ok(set) => FlatCache::Shared(SharedFlat {
                            link: StoreLink { key, set },
                            view: None,
                        }),
                        Err(set) => FlatCache::Private(set.into_cache()),
                    };
                }
            }
            PoolState::Sharded { sp, link } => {
                if !sp.is_warm() {
                    return;
                }
                let key = StoreKey {
                    fp: entry.fp.key(),
                    layout: LayoutKey::Sharded { shards: sp.shard_count() },
                    config: config_bits,
                };
                if let Some(set) = store.get(&key) {
                    if matches!(set.match_pool(&entry.jurors), Some(Attach::Identical)) {
                        // A re-joining pool is fully warm (repairs never
                        // drop shards), so seed the entry's shard layer
                        // if it is still empty — identically-mutated
                        // siblings then adopt these repaired caches
                        // (repair lineage is the documented numerical
                        // carve-out either way).
                        if set.shard_layer.get().is_none() {
                            if let Some(layer) = sp.export_shard_layer() {
                                set.set_shard_layer(layer);
                            }
                        }
                        sp.adopt_merged(set.eps_order.clone(), set.greedy_order.clone());
                        *link = Some(StoreLink { key, set });
                        stats.artifact_rejoins += 1;
                    }
                } else if had_siblings {
                    if let Some((eps, greedy)) = sp.merged_order_arcs() {
                        if let Ok(set) =
                            store.publish(key, ArtifactSet::from_merged(eps, greedy, &entry.jurors))
                        {
                            if let Some(layer) = sp.export_shard_layer() {
                                set.set_shard_layer(layer);
                            }
                            *link = Some(StoreLink { key, set });
                        }
                    }
                }
            }
        }
    }

    /// Runs the idle-orphan sweep when [`ServiceConfig::store_ttl`] is
    /// set: store entries no live pool holds (stamped at release time)
    /// are evicted once they have sat unclaimed past the TTL. A no-op
    /// under the default refcount policy, where orphans never outlive
    /// the releasing mutation. Called after every mutation and pool
    /// removal; also reachable directly via
    /// [`JuryService::sweep_artifact_ttl`] for idle services.
    fn sweep_store_ttl(&mut self) {
        if let Some(ttl) = self.config.store_ttl {
            self.stats.store_ttl_evictions += self.store.sweep_ttl(ttl);
        }
    }

    /// Explicitly sweeps TTL-expired orphan entries from the artifact
    /// store, returning how many were evicted this call. Mutations and
    /// pool removals sweep automatically; this entry point exists for
    /// services that go idle after a burst of churn and want the memory
    /// back without waiting for the next mutation. No-op (returns 0)
    /// when [`ServiceConfig::store_ttl`] is `None`.
    pub fn sweep_artifact_ttl(&mut self) -> usize {
        let before = self.stats.store_ttl_evictions;
        self.sweep_store_ttl();
        self.stats.store_ttl_evictions - before
    }

    /// Folds one mutation's repair outcome into the stats counters.
    fn count_mutation(&mut self, effect: MutationEffect) {
        if effect.invalidated {
            self.stats.cache_invalidations += 1;
        }
        if effect.orders_repaired {
            self.stats.order_repairs += 1;
        }
        if effect.pmf_repaired {
            self.stats.pmf_repairs += 1;
        }
        if effect.pmf_rebuilt {
            self.stats.pmf_rebuilds += 1;
        }
        if effect.profile_repaired {
            self.stats.profile_repairs += 1;
        }
        if effect.insert_repaired {
            self.stats.insert_repairs += 1;
        }
        self.stats.degenerate_shards += effect.newly_degenerate;
        if effect.rebalanced > 0 {
            self.stats.shard_rebalances += 1;
        }
    }

    // ------------------------------------------------------------------
    // Cache
    // ------------------------------------------------------------------

    /// Builds whatever cached state is cold: a flat pool's orders and
    /// AltrM answer (just the answer after an order repair — a
    /// bound-pruned rescan-free solve), a sharded pool's cold shards
    /// plus the merged orders. Called automatically by the solve paths;
    /// exposed so benches can separate cold from warm.
    pub fn warm_pool(&mut self, pool: PoolId) -> Result<(), ServiceError> {
        let altr_config = self.config.altr;
        let share = self.config.share_artifacts;
        let config_bits = config_key(&self.config);
        // Borrow-split: the scratch is taken out while the entry is
        // borrowed mutably.
        let mut scratch = self.scratches.pop().unwrap_or_default();
        let mut builds = 0usize;
        let mut fulls = 0usize;
        let mut shard_reps = 0usize;
        let mut pruned = 0usize;
        let mut share_hits = 0usize;
        let mut restores = 0usize;
        let mut rejections = 0usize;
        let mut stale_skips = 0usize;
        let max_age = self.config.max_snapshot_age;
        let Self { pools, store, snapshots, .. } = &mut *self;
        let outcome = match pools.get_mut(&pool.0) {
            None => Err(ServiceError::UnknownPool(pool)),
            Some(PoolEntry { jurors, state, fp }) => {
                match state {
                    PoolState::Flat { cache } => {
                        // Phase 1: a cold pool attaches to an interned
                        // artifact set, or builds one and publishes it.
                        if matches!(cache, FlatCache::Cold) {
                            let key = StoreKey {
                                fp: fp.key(),
                                layout: LayoutKey::Flat,
                                config: config_bits,
                            };
                            if share {
                                restore_into_store(
                                    store,
                                    snapshots.as_ref(),
                                    &key,
                                    jurors,
                                    max_age,
                                    &mut restores,
                                    &mut rejections,
                                    &mut stale_skips,
                                );
                            }
                            let (acquired, attached) =
                                acquire_flat(store, key, jurors, share, || {
                                    let built =
                                        build_full_cache(jurors, &altr_config, &mut scratch);
                                    pruned += altr_pruned(built.altr.as_ref());
                                    builds += 1;
                                    fulls += 1;
                                    built
                                });
                            share_hits += usize::from(attached);
                            *cache = acquired;
                        }
                        // Phase 2: ensure the AltrM answer wherever the
                        // cache lives (attached orders-only entries and
                        // post-repair private caches solve it here —
                        // rescan-free, bound-pruned).
                        match cache {
                            FlatCache::Cold => unreachable!("filled above"),
                            FlatCache::Private(c) => {
                                if c.altr.is_none() {
                                    let answer = solve_altr_cached(
                                        jurors,
                                        &c.eps_order,
                                        &altr_config,
                                        &mut scratch,
                                    );
                                    pruned += altr_pruned(Some(&answer));
                                    c.altr = Some(answer);
                                    builds += 1;
                                }
                            }
                            FlatCache::Shared(sf) => match &mut sf.view {
                                None => {
                                    if sf.link.set.altr.get().is_none() {
                                        let answer = solve_altr_cached(
                                            jurors,
                                            &sf.link.set.eps_order,
                                            &altr_config,
                                            &mut scratch,
                                        );
                                        pruned += altr_pruned(Some(&answer));
                                        builds += 1;
                                        sf.link.set.set_altr(answer);
                                    }
                                }
                                Some(view) => {
                                    if view.altr.is_none() {
                                        let answer = match sf.link.set.altr.get() {
                                            Some(Ok(sel)) => Ok(Arc::new(translate_selection(
                                                sel,
                                                &view.sigma,
                                                jurors,
                                            ))),
                                            Some(Err(e)) => Err(e.clone()),
                                            None => {
                                                let ans = solve_altr_cached(
                                                    jurors,
                                                    &view.eps_order,
                                                    &altr_config,
                                                    &mut scratch,
                                                );
                                                pruned += altr_pruned(Some(&ans));
                                                builds += 1;
                                                // Publish the answer in
                                                // founding space so later
                                                // attachers replay instead
                                                // of re-solving.
                                                let set = &sf.link.set;
                                                let founding = match &ans {
                                                    Ok(sel) => Ok(Arc::new(
                                                        set.untranslate_selection(sel, &view.sigma),
                                                    )),
                                                    Err(e) => Err(e.clone()),
                                                };
                                                set.set_altr(founding);
                                                ans
                                            }
                                        };
                                        view.altr = Some(answer);
                                    }
                                }
                            },
                        }
                    }
                    PoolState::Sharded { sp, link } => {
                        if !sp.is_warm() {
                            let key = StoreKey {
                                fp: fp.key(),
                                layout: LayoutKey::Sharded { shards: sp.shard_count() },
                                config: config_bits,
                            };
                            if share {
                                restore_into_store(
                                    store,
                                    snapshots.as_ref(),
                                    &key,
                                    jurors,
                                    max_age,
                                    &mut restores,
                                    &mut rejections,
                                    &mut stale_skips,
                                );
                            }
                            let attached = share.then(|| store.get(&key)).flatten().filter(|set| {
                                matches!(set.match_pool(jurors), Some(Attach::Identical))
                            });
                            match attached {
                                Some(set) => {
                                    // Adopt the interned per-shard layer
                                    // first (partition-verified): covered
                                    // shards skip their private build
                                    // entirely; only the holes are built.
                                    if let Some(layer) = set.shard_layer.get() {
                                        sp.adopt_shard_layer(layer);
                                    }
                                    let shards_built = sp.warm_shards(jurors);
                                    sp.adopt_merged(
                                        set.eps_order.clone(),
                                        set.greedy_order.clone(),
                                    );
                                    if set.shard_layer.get().is_none() {
                                        if let Some(layer) = sp.export_shard_layer() {
                                            set.set_shard_layer(layer);
                                        }
                                    }
                                    *link = Some(StoreLink { key, set });
                                    share_hits += 1;
                                    // Only the shards the interned layer
                                    // did not cover were built privately.
                                    shard_reps += shards_built;
                                }
                                None => {
                                    let shards_built = sp.warm_shards(jurors);
                                    sp.ensure_merged(jurors);
                                    builds += 1;
                                    if shards_built == sp.shard_count() {
                                        fulls += 1;
                                    } else {
                                        shard_reps += shards_built;
                                    }
                                    if share {
                                        if let Some((eps, greedy)) = sp.merged_order_arcs() {
                                            // An occupied key refused the
                                            // attach above — the incumbent
                                            // wins and this pool stays
                                            // unlinked.
                                            if let Ok(set) = store.publish(
                                                key,
                                                ArtifactSet::from_merged(eps, greedy, jurors),
                                            ) {
                                                if let Some(layer) = sp.export_shard_layer() {
                                                    set.set_shard_layer(layer);
                                                }
                                                *link = Some(StoreLink { key, set });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(())
            }
        };
        self.scratches.push(scratch);
        self.stats.cache_builds += builds;
        self.stats.full_repairs += fulls;
        self.stats.shard_repairs += shard_reps;
        self.stats.bound_pruned += pruned;
        self.stats.artifact_share_hits += share_hits;
        self.stats.snapshot_restores += restores;
        self.stats.snapshot_rejections += rejections;
        self.stats.stale_snapshot_skips += stale_skips;
        outcome
    }

    /// Drops every piece of `pool`'s warm state — orders, ladders,
    /// profile, staircase, per-shard caches and any store attachment —
    /// so the next [`JuryService::warm_pool`] pays the full cold build.
    /// An operational hook (reclaim the memory of a pool gone quiet,
    /// force a from-scratch rebuild) and the referee for the repair
    /// paths: the `rebalance_throughput` bench measures warm in-place
    /// insert repairs against exactly this invalidate-and-rebuild
    /// baseline. Sharded pools are re-partitioned round-robin; entries
    /// the store holds for sibling pools survive.
    pub fn invalidate_warm(&mut self, pool: PoolId) -> Result<(), ServiceError> {
        let shard_config = self.config.shard;
        let ttl_enabled = self.config.store_ttl.is_some();
        let Self { pools, store, .. } = &mut *self;
        let entry = pools.get_mut(&pool.0).ok_or(ServiceError::UnknownPool(pool))?;
        match &mut entry.state {
            PoolState::Flat { .. } => {
                // A shared attachment is dropped, never materialised.
                let _ = discard_flat_share(store, &mut entry.state, ttl_enabled);
                if let PoolState::Flat { cache } = &mut entry.state {
                    *cache = FlatCache::Cold;
                }
            }
            PoolState::Sharded { sp, link } => {
                if let Some(taken) = link.take() {
                    let key = taken.key;
                    drop(taken);
                    store.release(&key, ttl_enabled);
                }
                *sp = ShardedPool::new(
                    entry.jurors.len(),
                    sp.shard_count(),
                    shard_config.degenerate_percent,
                );
            }
        }
        Ok(())
    }

    /// Whether `pool`'s cache is currently warm (flat: orders and the
    /// AltrM answer present — the profile and ladder stay lazy; sharded:
    /// merged orders present — the AltrM selection and profile may still
    /// be lazily pending).
    pub fn is_warm(&self, pool: PoolId) -> bool {
        self.pools.get(&pool.0).is_some_and(|entry| match &entry.state {
            PoolState::Flat { cache } => cache.has_altr(),
            PoolState::Sharded { sp, .. } => sp.is_warm(),
        })
    }

    /// Whether the sorted orders — all a PayM task needs — are present.
    fn has_orders(&self, pool: PoolId) -> bool {
        self.pools.get(&pool.0).is_some_and(|entry| match &entry.state {
            PoolState::Flat { cache } => cache.has_orders(),
            PoolState::Sharded { sp, .. } => sp.is_warm(),
        })
    }

    /// Whether the state `task` actually consumes is warm: solved
    /// artefacts for AltrM, sorted orders for PayM.
    fn is_warm_for(&self, task: &DecisionTask) -> bool {
        match task.model {
            CrowdModel::Altruism => self.is_warm(task.pool),
            CrowdModel::PayAsYouGo { .. } => self.has_orders(task.pool),
        }
    }

    /// The cached odd-size JER profile of `pool` (computed on demand):
    /// `(n, JER of the n lowest-ε jurors)` for `n = 1, 3, 5, …`.
    /// Fresh builds are bit-identical between flat and sharded pools
    /// (both run the same sequential pushes over the same ε-sorted
    /// order). After juror mutations a flat pool's materialised profile
    /// is *repaired in place* — entries whose prefix is untouched are
    /// reused verbatim, the suffix resumes from the pmf ladder — so
    /// repaired entries are only *numerically* equal to a rebuild
    /// (within [`PROBE_REPAIR_TOL`], like
    /// [`jer_probe`](JuryService::jer_probe); see the crate docs).
    pub fn jer_profile(&mut self, pool: PoolId) -> Result<&[(usize, f64)], ServiceError> {
        self.warm_pool(pool)?;
        let PoolEntry { jurors, state, .. } = self.pools.get_mut(&pool.0).expect("warmed above");
        match state {
            PoolState::Flat { cache } => match cache {
                FlatCache::Cold => unreachable!("warmed above"),
                FlatCache::Private(c) => {
                    if c.profile.is_none() {
                        // The ladder gives future profile repairs their
                        // resume checkpoints; build it alongside.
                        if c.ladder.is_none() {
                            c.ladder = Some(PmfLadder::build(&c.eps_sorted));
                        }
                        c.profile = Some(JerProfile::build(&c.eps_sorted));
                    }
                    Ok(c.profile.as_ref().expect("built above").entries())
                }
                FlatCache::Shared(sf) => {
                    // The profile is rank-space (a function of the sorted
                    // ε values alone), so one shared build serves every
                    // attacher, permuted ones included. The ladder is
                    // laid alongside like the private path, so a later
                    // detach repairs it instead of rebuilding.
                    let set = &sf.link.set;
                    let profile = set.profile_or_init(|| {
                        set.ladder_or_init(|| PmfLadder::build(&set.eps_sorted));
                        Arc::new(JerProfile::build(&set.eps_sorted))
                    });
                    Ok(profile.entries())
                }
            },
            PoolState::Sharded { sp, link } => {
                // Seed a missing profile from the attached entry, and
                // publish a freshly built one back to it — rank-space,
                // bit-identical across equal pools either way.
                if !sp.has_profile() {
                    if let Some(shared) = link.as_ref().and_then(|l| l.set.profile.get()) {
                        sp.seed_profile(shared.clone());
                    }
                }
                let profile = sp.ensure_profile(jurors);
                if let Some(l) = link.as_ref() {
                    l.set.set_profile(profile.clone());
                }
                Ok(profile.entries())
            }
        }
    }

    /// The cached reliability order of `pool`: positions sorted ascending
    /// by ε (ties by position). `order[..k]` is the best fixed-size-`k`
    /// jury by Lemma 3.
    pub fn reliability_order(&mut self, pool: PoolId) -> Result<&[usize], ServiceError> {
        self.warm_pool(pool)?;
        let entry = &self.pools[&pool.0];
        match &entry.state {
            PoolState::Flat { cache } => Ok(cache.eps_order().expect("warmed above")),
            PoolState::Sharded { sp, .. } => Ok(sp.merged_eps_order().expect("warmed above")),
        }
    }

    /// JER of the best `n`-juror jury of `pool` (odd `n`, clamped to the
    /// largest feasible odd size like
    /// [`AltrAlg::solve_fixed_size`]) — a point query on the Figure 3(a)
    /// curve without materialising the whole profile.
    ///
    /// Flat pools resume the prefix distribution from their own
    /// checkpoint ladder (built on the first probe); sharded pools merge
    /// per-shard prefix pmfs (resumed from their ladders) by
    /// convolution. The paths agree within convolution rounding — and,
    /// after deconvolution-repaired mutations, within
    /// [`PROBE_REPAIR_TOL`] of a from-scratch evaluation — so this query
    /// is *numerically* stable but deliberately outside the bit-identity
    /// contract (see the crate docs).
    ///
    /// Probing warms only what it reads: on a cold flat pool the sorted
    /// orders are built (`O(N log N)`) *without* the `O(N²)` profile and
    /// AltrM solve; a later [`JuryService::warm_pool`] reuses them.
    ///
    /// # Errors
    /// [`ServiceError::UnknownPool`], or the solver errors an invalid
    /// size produces ([`JuryError::EmptyPool`], [`JuryError::EmptyJury`],
    /// [`JuryError::EvenJurySize`]).
    pub fn jer_probe(&mut self, pool: PoolId, n: usize) -> Result<f64, ServiceError> {
        self.warm_orders(pool)?;
        let PoolEntry { jurors, state, .. } = self.pools.get_mut(&pool.0).expect("warmed above");
        if jurors.is_empty() {
            return Err(ServiceError::Solver(JuryError::EmptyPool));
        }
        if n == 0 {
            return Err(ServiceError::Solver(JuryError::EmptyJury));
        }
        if n.is_multiple_of(2) {
            return Err(ServiceError::Solver(JuryError::EvenJurySize(n)));
        }
        let len = jurors.len();
        let n = n.min(if len % 2 == 1 { len } else { len - 1 });
        match state {
            PoolState::Flat { cache } => {
                let (ladder, eps_sorted): (&PmfLadder, &[f64]) = match cache {
                    FlatCache::Cold => unreachable!("warmed above"),
                    FlatCache::Private(c) => (
                        c.ladder.get_or_insert_with(|| PmfLadder::build(&c.eps_sorted)),
                        &c.eps_sorted,
                    ),
                    FlatCache::Shared(sf) => {
                        // Rank-space: one shared ladder serves every
                        // attacher, permuted ones included.
                        let set = &sf.link.set;
                        (set.ladder_or_init(|| PmfLadder::build(&set.eps_sorted)), &set.eps_sorted)
                    }
                };
                let mut pmf = PoiBin::empty();
                ladder.prefix_into(eps_sorted, n, &mut pmf);
                Ok(pmf.tail(JerEngine::majority_threshold(n)))
            }
            PoolState::Sharded { sp, .. } => Ok(sp.jer_probe(n)),
        }
    }

    /// Warms only the sorted orders: full [`JuryService::warm_pool`] for
    /// sharded pools (their warm is already order-level — the AltrM
    /// solve stays lazy), an orders-only attach or build for cold flat
    /// pools so order consumers like [`JuryService::jer_probe`] never
    /// pay for the pmf-derived artefacts they do not read. An attach
    /// shares whatever the entry already holds; an orders-only build is
    /// published with its lazy slots empty, filled later by whichever
    /// attached pool first needs them.
    fn warm_orders(&mut self, pool: PoolId) -> Result<(), ServiceError> {
        if self.is_sharded(pool)? {
            return self.warm_pool(pool);
        }
        let share = self.config.share_artifacts;
        let config_bits = config_key(&self.config);
        let max_age = self.config.max_snapshot_age;
        let Self { pools, store, stats, snapshots, .. } = &mut *self;
        let entry = pools.get_mut(&pool.0).expect("checked above");
        if let PoolState::Flat { cache } = &mut entry.state {
            if matches!(cache, FlatCache::Cold) {
                let key =
                    StoreKey { fp: entry.fp.key(), layout: LayoutKey::Flat, config: config_bits };
                if share {
                    restore_into_store(
                        store,
                        snapshots.as_ref(),
                        &key,
                        &entry.jurors,
                        max_age,
                        &mut stats.snapshot_restores,
                        &mut stats.snapshot_rejections,
                        &mut stats.stale_snapshot_skips,
                    );
                }
                let (acquired, attached) = acquire_flat(store, key, &entry.jurors, share, || {
                    build_orders_only(&entry.jurors)
                });
                stats.artifact_share_hits += usize::from(attached);
                *cache = acquired;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Solving
    // ------------------------------------------------------------------

    /// Solves one task, warming the pool cache if needed.
    ///
    /// Members, JER and cost are bit-identical to [`AltrAlg::solve`] /
    /// [`PayAlg::solve`] on the pool's current jurors, flat or sharded
    /// (AltrM solver *stats* reflect the service's bound-pruned scan;
    /// see the crate docs). A warm PayM task whose budget falls inside a
    /// recorded staircase step is answered without a greedy rescan
    /// ([`ServiceStats::staircase_hits`]); a PayM task never builds the
    /// pmf artefacts AltrM needs. A warm AltrM task whose pool was
    /// mutated re-solves rescan-free: a bound sweep plus exact JER at
    /// the surviving sizes only — never a full `O(N²)` rescan, and never
    /// a full cache rebuild ([`ServiceStats::full_repairs`] stays put).
    pub fn solve(&mut self, task: &DecisionTask) -> Result<Selection, ServiceError> {
        if let CrowdModel::PayAsYouGo { budget } = task.model {
            return self.solve_paym(task.pool, budget, true);
        }
        self.solve_altr_arc(task, true).map(Arc::unwrap_or_clone)
    }

    /// One task through the single-solve machinery, returning the shared
    /// answer — the per-task body of [`JuryService::solve`] and of the
    /// small-batch inline path (`count_hit` lets the batch path keep its
    /// "warm before the batch" cache-hit semantics).
    fn solve_one_arc(
        &mut self,
        task: &DecisionTask,
        count_hit: bool,
    ) -> Result<Arc<Selection>, ServiceError> {
        match task.model {
            CrowdModel::PayAsYouGo { budget } => {
                self.solve_paym(task.pool, budget, count_hit).map(Arc::new)
            }
            CrowdModel::Altruism => self.solve_altr_arc(task, count_hit),
        }
    }

    /// The AltrM single-solve path (shared answer out).
    fn solve_altr_arc(
        &mut self,
        task: &DecisionTask,
        count_hit: bool,
    ) -> Result<Arc<Selection>, ServiceError> {
        let was_warm = self.is_warm(task.pool);
        let had_orders = self.has_orders(task.pool);
        let full_repairs_before = self.stats.full_repairs;
        self.prepare(task)?;
        if had_orders {
            debug_assert_eq!(
                self.stats.full_repairs, full_repairs_before,
                "an AltrM re-solve on warm orders must never trigger a full repair"
            );
        }
        let mut scratch = self.scratches.pop().unwrap_or_default();
        let result = solve_on_entry(&self.pools[&task.pool.0], task, &self.config, &mut scratch);
        self.scratches.push(scratch);
        self.stats.tasks_solved += 1;
        if count_hit && was_warm {
            self.stats.cache_hits += 1;
        }
        result
    }

    /// The PayM solve path: orders-only warming, then the staircase.
    fn solve_paym(
        &mut self,
        pool: PoolId,
        budget: f64,
        count_hit: bool,
    ) -> Result<Selection, ServiceError> {
        let was_warm = self.has_orders(pool);
        let full_repairs_before = self.stats.full_repairs;
        self.warm_orders(pool)?;
        if was_warm {
            debug_assert_eq!(
                self.stats.full_repairs, full_repairs_before,
                "a pure-budget-change PayM task must never trigger a full repair"
            );
        }
        self.stats.tasks_solved += 1;
        if count_hit && was_warm {
            self.stats.cache_hits += 1;
        }
        let pay = PayAlg::new(budget, self.config.pay);
        let mut scratch = self.scratches.pop().unwrap_or_default();
        let entry = self.pools.get_mut(&pool.0).expect("warmed above");
        let mut hit = false;
        let result = match &mut entry.state {
            PoolState::Flat { cache } => match cache {
                FlatCache::Cold => pay.solve_with(&entry.jurors, &mut scratch),
                FlatCache::Private(c) => {
                    hit = c.staircase.covers(budget);
                    pay.solve_staircase(
                        &entry.jurors,
                        &c.greedy_order,
                        &mut c.staircase,
                        &mut scratch,
                    )
                }
                FlatCache::Shared(sf) => match &mut sf.view {
                    None => {
                        // Recording happens under the registry's
                        // exclusive borrow; batch workers only take the
                        // read lock for replays.
                        let set = &sf.link.set;
                        let mut staircase = set.staircase_write();
                        hit = staircase.covers(budget);
                        pay.solve_staircase(
                            &entry.jurors,
                            &set.greedy_order,
                            &mut staircase,
                            &mut scratch,
                        )
                    }
                    Some(view) => {
                        hit = view.staircase.covers(budget);
                        pay.solve_staircase(
                            &entry.jurors,
                            &view.greedy_order,
                            &mut view.staircase,
                            &mut scratch,
                        )
                    }
                },
            },
            PoolState::Sharded { sp, .. } => match sp.paym_cache() {
                Some((order, staircase)) => {
                    hit = staircase.covers(budget);
                    pay.solve_staircase(&entry.jurors, order, staircase, &mut scratch)
                }
                None => pay.solve_with(&entry.jurors, &mut scratch),
            },
        };
        self.scratches.push(scratch);
        if hit {
            self.stats.staircase_hits += 1;
        }
        result.map_err(ServiceError::from)
    }

    /// Solves a batch of tasks, preserving order.
    ///
    /// All referenced pools are warmed first (sequentially — warming
    /// mutates the registry; sharded pools referenced by AltrM tasks also
    /// get their lazy AltrM selection solved once here rather than per
    /// worker), then the tasks fan out over `config.threads` scoped
    /// workers (capped so each receives at least
    /// [`MIN_TASKS_PER_WORKER`] tasks), each with a persistent
    /// [`SolverScratch`]; on a warm cache a task's solver path performs
    /// no heap allocation beyond the returned [`Selection`].
    ///
    /// Every result is an owned [`Selection`] — on replay-heavy AltrM
    /// traffic that is one member-list copy per task;
    /// [`JuryService::solve_batch_shared`] skips those copies.
    pub fn solve_batch(&mut self, tasks: &[DecisionTask]) -> Vec<Result<Selection, ServiceError>> {
        self.solve_batch_arcs(tasks, None)
            .into_iter()
            .map(|r| r.map(Arc::unwrap_or_clone))
            .collect()
    }

    /// [`JuryService::solve_batch`] with *shared* results: tasks that
    /// replay the same cached AltrM answer receive clones of one
    /// [`Arc`], so a batch of a thousand identical decision tasks costs
    /// a thousand reference bumps instead of a thousand member-list
    /// copies — the allocation traffic behind the `service_throughput`
    /// large-batch collapse. Fresh solves (cold pools, staircase misses)
    /// are wrapped in a new [`Arc`]; the [`Selection`] values are
    /// bit-identical to [`JuryService::solve_batch`]'s either way.
    pub fn solve_batch_shared(
        &mut self,
        tasks: &[DecisionTask],
    ) -> Vec<Result<Arc<Selection>, ServiceError>> {
        self.solve_batch_arcs(tasks, None)
    }

    /// [`JuryService::solve_batch_shared`] with a per-task timing hook:
    /// `per_task_solve` is cleared and refilled with one wall-clock
    /// duration per task, measuring only that task's *solver* time —
    /// front-ends subtract it from end-to-end latency to separate
    /// queueing delay from solve time. The shared warm phase (pool
    /// warming, staircase recording) is deliberately excluded: it is
    /// batch-level work no single task owns, so each task's duration is
    /// its marginal cost on an already-warm service. The untimed entry
    /// points compile out the clock reads entirely — replay-heavy hot
    /// paths pay nothing for this hook existing.
    pub fn solve_batch_shared_timed(
        &mut self,
        tasks: &[DecisionTask],
        per_task_solve: &mut Vec<Duration>,
    ) -> Vec<Result<Arc<Selection>, ServiceError>> {
        per_task_solve.clear();
        per_task_solve.resize(tasks.len(), Duration::ZERO);
        self.solve_batch_arcs(tasks, Some(per_task_solve))
    }

    fn solve_batch_arcs(
        &mut self,
        tasks: &[DecisionTask],
        timings: Option<&mut Vec<Duration>>,
    ) -> Vec<Result<Arc<Selection>, ServiceError>> {
        // Small batches (notably batch = 1, the interactive case) skip
        // the batch machinery entirely — no repeated-budget scan, no
        // dedup vectors, no worker spawn/chunking — and solve inline on
        // the caller thread with the per-service scratch, exactly like
        // [`JuryService::solve`]. This removes the small-pool batch-1
        // regression where the warm-phase bookkeeping cost more than the
        // solve itself.
        if tasks.len() < MIN_TASKS_PER_WORKER {
            self.stats.batches += 1;
            // Keep the batch semantics for hits and attempts: a hit is a
            // task whose needed state was warm before this batch did any
            // warming, and every task counts as a solved attempt even
            // when it fails (unknown pools included).
            self.stats.cache_hits += tasks.iter().filter(|t| self.is_warm_for(t)).count();
            let solved_before = self.stats.tasks_solved;
            let out = match timings {
                None => tasks.iter().map(|task| self.solve_one_arc(task, false)).collect(),
                Some(buf) => tasks
                    .iter()
                    .zip(buf.iter_mut())
                    .map(|(task, slot)| {
                        let started = Instant::now();
                        let result = self.solve_one_arc(task, false);
                        *slot = started.elapsed();
                        result
                    })
                    .collect(),
            };
            self.stats.tasks_solved = solved_before + tasks.len();
            return out;
        }

        self.stats.batches += 1;
        self.stats.tasks_solved += tasks.len();
        // A hit is a task whose needed state was warm before this batch
        // did any warming of its own.
        self.stats.cache_hits += tasks.iter().filter(|t| self.is_warm_for(t)).count();

        // Distinct PayM `(pool, budget)` pairs and their multiplicity:
        // only pairs that *repeat* in this batch are worth a sequential
        // staircase-recording scan in the warm phase — a singleton is
        // scanned exactly once by a worker anyway (in parallel), and can
        // record its step on a later single-solve miss instead.
        let mut paym_pairs: Vec<((u64, u64), usize)> = Vec::new();
        for task in tasks {
            if let CrowdModel::PayAsYouGo { budget } = task.model {
                let key = (task.pool.0, budget.to_bits());
                match paym_pairs.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, count)) => *count += 1,
                    None => paym_pairs.push((key, 1)),
                }
            }
        }

        // Warm every referenced pool once — AltrM tasks fully (solved
        // artefacts included), PayM tasks orders-only plus the repeated
        // budgets' staircase steps, recorded here sequentially so the
        // workers replay them read-only. Unknown pools fail per-task
        // below so the batch result stays positional.
        let mut warmed: Vec<u64> = Vec::with_capacity(tasks.len().min(self.pools.len()));
        let mut orders_warmed: Vec<u64> = Vec::new();
        let mut altr_prepared: Vec<u64> = Vec::new();
        let mut budgets_recorded: Vec<(u64, u64)> = Vec::new();
        for task in tasks {
            match task.model {
                CrowdModel::Altruism => {
                    if !warmed.contains(&task.pool.0) {
                        warmed.push(task.pool.0);
                        let _ = self.warm_pool(task.pool);
                    }
                    if !altr_prepared.contains(&task.pool.0) {
                        altr_prepared.push(task.pool.0);
                        let _ = self.prepare(task);
                    }
                }
                CrowdModel::PayAsYouGo { budget } => {
                    if !warmed.contains(&task.pool.0) && !orders_warmed.contains(&task.pool.0) {
                        orders_warmed.push(task.pool.0);
                        let _ = self.warm_orders(task.pool);
                    }
                    let key = (task.pool.0, budget.to_bits());
                    let repeats = paym_pairs.iter().find(|(k, _)| *k == key).map_or(0, |&(_, c)| c);
                    if self.staircase_covers(task.pool, budget) {
                        self.stats.staircase_hits += 1;
                    } else if repeats > 1
                        && budgets_recorded.len() < MAX_BATCH_STAIRCASE_SCANS
                        && !budgets_recorded.contains(&key)
                    {
                        budgets_recorded.push(key);
                        self.record_staircase_step(task.pool, budget);
                    }
                }
            }
        }

        // Coarse partitioning: never spawn a worker for fewer than
        // MIN_TASKS_PER_WORKER tasks — see the constant's docs.
        let threads =
            self.effective_threads().min(tasks.len().div_ceil(MIN_TASKS_PER_WORKER)).max(1);
        if threads == 1 {
            let mut scratch = self.scratches.pop().unwrap_or_default();
            let out: Vec<_> = match timings {
                None => tasks.iter().map(|task| self.solve_prewarmed(task, &mut scratch)).collect(),
                Some(buf) => tasks
                    .iter()
                    .zip(buf.iter_mut())
                    .map(|(task, slot)| {
                        let started = Instant::now();
                        let result = self.solve_prewarmed(task, &mut scratch);
                        *slot = started.elapsed();
                        result
                    })
                    .collect(),
            };
            self.scratches.push(scratch);
            return out;
        }

        // Hand each worker a persistent scratch; collect them all back
        // after the scope (including any spares beyond the chunk count)
        // so the next batch starts warm.
        let mut scratches = std::mem::take(&mut self.scratches);
        scratches.resize_with(threads, SolverScratch::default);
        let chunk_len = tasks.len().div_ceil(threads);
        let n_chunks = tasks.len().div_ceil(chunk_len);
        let pools = &self.pools;
        let config = &self.config;

        let mut timing_chunks: Vec<Option<&mut [Duration]>> = match timings {
            Some(buf) => buf.chunks_mut(chunk_len).map(Some).collect(),
            None => (0..n_chunks).map(|_| None).collect(),
        };

        let mut out = Vec::with_capacity(tasks.len());
        let mut returned = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for ((chunk, mut scratch), timing) in tasks
                .chunks(chunk_len)
                .zip(scratches.drain(..n_chunks))
                .zip(timing_chunks.drain(..))
            {
                handles.push(scope.spawn(move || {
                    let solve_one = |task: &DecisionTask, scratch: &mut SolverScratch| match pools
                        .get(&task.pool.0)
                    {
                        None => Err(ServiceError::UnknownPool(task.pool)),
                        Some(entry) => solve_on_entry(entry, task, config, scratch),
                    };
                    let results: Vec<_> = match timing {
                        None => chunk.iter().map(|task| solve_one(task, &mut scratch)).collect(),
                        Some(slots) => chunk
                            .iter()
                            .zip(slots.iter_mut())
                            .map(|(task, slot)| {
                                let started = Instant::now();
                                let result = solve_one(task, &mut scratch);
                                *slot = started.elapsed();
                                result
                            })
                            .collect(),
                    };
                    (results, scratch)
                }));
            }
            for handle in handles {
                let (results, scratch) = handle.join().expect("service worker panicked");
                out.extend(results);
                returned.push(scratch);
            }
        });
        returned.append(&mut scratches);
        self.scratches = returned;
        out
    }

    /// Whether the pool's warm staircase already covers `budget`.
    fn staircase_covers(&self, pool: PoolId, budget: f64) -> bool {
        self.pools.get(&pool.0).is_some_and(|entry| match &entry.state {
            PoolState::Flat { cache } => match cache {
                FlatCache::Cold => false,
                FlatCache::Private(c) => c.staircase.covers(budget),
                FlatCache::Shared(sf) => match &sf.view {
                    None => sf.link.set.staircase_read().covers(budget),
                    Some(view) => view.staircase.covers(budget),
                },
            },
            PoolState::Sharded { sp, .. } => sp.staircase_covers(budget),
        })
    }

    /// Runs one staircase-recording scan for `(pool, budget)` so batch
    /// workers can replay the step read-only. Solver errors are ignored
    /// here — the per-task solve reports them positionally.
    fn record_staircase_step(&mut self, pool: PoolId, budget: f64) {
        let pay = PayAlg::new(budget, self.config.pay);
        let mut scratch = self.scratches.pop().unwrap_or_default();
        if let Some(entry) = self.pools.get_mut(&pool.0) {
            match &mut entry.state {
                PoolState::Flat { cache } => match cache {
                    FlatCache::Cold => {}
                    FlatCache::Private(c) => {
                        let _ = pay.solve_staircase(
                            &entry.jurors,
                            &c.greedy_order,
                            &mut c.staircase,
                            &mut scratch,
                        );
                    }
                    FlatCache::Shared(sf) => match &mut sf.view {
                        None => {
                            let set = &sf.link.set;
                            let mut staircase = set.staircase_write();
                            let _ = pay.solve_staircase(
                                &entry.jurors,
                                &set.greedy_order,
                                &mut staircase,
                                &mut scratch,
                            );
                        }
                        Some(view) => {
                            let _ = pay.solve_staircase(
                                &entry.jurors,
                                &view.greedy_order,
                                &mut view.staircase,
                                &mut scratch,
                            );
                        }
                    },
                },
                PoolState::Sharded { sp, .. } => {
                    if let Some((order, staircase)) = sp.paym_cache() {
                        let _ = pay.solve_staircase(&entry.jurors, order, staircase, &mut scratch);
                    }
                }
            }
        }
        self.scratches.push(scratch);
    }

    /// Warms the task's pool, including the lazy AltrM selection of a
    /// sharded pool when the task needs it (workers then replay it
    /// read-only instead of each re-running the scan).
    fn prepare(&mut self, task: &DecisionTask) -> Result<(), ServiceError> {
        self.warm_pool(task.pool)?;
        if matches!(task.model, CrowdModel::Altruism) {
            let altr_config = self.config.altr;
            let mut scratch = self.scratches.pop().unwrap_or_default();
            let mut pruned = 0usize;
            if let Some(PoolEntry { jurors, state: PoolState::Sharded { sp, link }, .. }) =
                self.pools.get_mut(&task.pool.0)
            {
                if sp.cached_altr().is_none() {
                    // An attached entry's answer rides the identical
                    // merged order — seed it instead of re-solving; a
                    // fresh solve is published back for siblings.
                    let seeded = link.as_ref().and_then(|l| l.set.altr.get()).cloned();
                    match seeded {
                        Some(answer) => sp.seed_altr(answer),
                        None => {
                            let answer = sp.ensure_altr(jurors, &altr_config, &mut scratch).clone();
                            pruned = altr_pruned(Some(&answer));
                            if let Some(l) = link.as_ref() {
                                l.set.set_altr(answer);
                            }
                        }
                    }
                }
            }
            self.scratches.push(scratch);
            self.stats.bound_pruned += pruned;
        }
        Ok(())
    }

    /// Single-task solve assuming `warm_pool` already ran for its pool.
    fn solve_prewarmed(
        &self,
        task: &DecisionTask,
        scratch: &mut SolverScratch,
    ) -> Result<Arc<Selection>, ServiceError> {
        match self.pools.get(&task.pool.0) {
            None => Err(ServiceError::UnknownPool(task.pool)),
            Some(entry) => solve_on_entry(entry, task, &self.config, scratch),
        }
    }

    fn effective_threads(&self) -> usize {
        if self.config.threads != 0 {
            return self.config.threads;
        }
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    }
}

/// Solves AltrM over a cached (or merged) ε-sorted order, with the
/// bound-pruned rescan-free scan whenever the configured strategy is the
/// default [`AltrStrategy::Incremental`] — members, JER and cost are
/// bit-identical either way (`AltrAlg::solve_pruned`'s contract), only
/// the [`jury_core::SolverStats`] reflect which scan ran. Other
/// strategies run the configured presorted scan verbatim. The answer is
/// wrapped for shared replay.
pub(crate) fn solve_altr_cached(
    jurors: &[Juror],
    order: &[usize],
    config: &AltrConfig,
    scratch: &mut SolverScratch,
) -> AltrAnswer {
    let alg = AltrAlg::new(*config);
    let result = if config.strategy == AltrStrategy::Incremental {
        alg.solve_pruned(jurors, order, scratch)
    } else {
        alg.solve_presorted(jurors, order, scratch)
    };
    result.map(Arc::new)
}

/// How many candidate sizes an AltrM answer's scan pruned by bounds.
fn altr_pruned(answer: Option<&AltrAnswer>) -> usize {
    match answer {
        Some(Ok(sel)) => sel.stats.pruned_by_bound,
        _ => 0,
    }
}

/// Builds every eagerly-cached artefact for one flat-pool snapshot:
/// the sorted orders plus the AltrM answer (profile and ladder stay
/// lazy).
fn build_full_cache(jurors: &[Juror], altr: &AltrConfig, scratch: &mut SolverScratch) -> PoolCache {
    let mut cache = build_orders_only(jurors);
    cache.altr = Some(solve_altr_cached(jurors, &cache.eps_order, altr, scratch));
    cache
}

/// Builds just the sorted orders (no solve, no profile) — the cache
/// state an `update_juror` repair also leaves behind; `warm_pool`
/// completes it with a rescan-free bound-pruned solve on demand.
fn build_orders_only(jurors: &[Juror]) -> PoolCache {
    let mut eps_order = Vec::with_capacity(jurors.len());
    jury_core::solver::sorted_order_into(jurors, &mut eps_order);
    let eps_sorted = eps_order.iter().map(|&i| jurors[i].epsilon()).collect();
    let mut greedy_order = Vec::with_capacity(jurors.len());
    PayAlg::greedy_order_into(jurors, &mut greedy_order);
    PoolCache {
        eps_order,
        eps_sorted,
        greedy_order,
        altr: None,
        profile: None,
        ladder: None,
        staircase: Staircase::new(),
    }
}

/// Repairs a materialised JER profile in place after the flat pool's
/// sorted run changed at `rank` (the lowest affected rank): entries for
/// prefixes below the rank are reused verbatim, the suffix is re-derived
/// by sequential pushes resumed from the deepest pmf-ladder checkpoint
/// at or below the rank. The ladder must already be repaired for the
/// post-mutation run. Resumed entries carry the checkpoint's lineage —
/// numerically within [`PROBE_REPAIR_TOL`] of a rebuild, outside the
/// bit-identity contract (nothing on a solver path reads a profile).
fn repair_profile(cache: &mut PoolCache, rank: usize, effect: &mut MutationEffect) {
    let Some(profile) = cache.profile.as_mut() else {
        return;
    };
    let mut pmf = PoiBin::empty();
    let resume = match cache.ladder.as_ref().and_then(|l| l.resume_for(rank)) {
        Some((len, checkpoint)) => {
            pmf.copy_from(checkpoint);
            len
        }
        None => 0,
    };
    profile.repair_from(&cache.eps_sorted, rank, resume, &mut pmf);
    effect.profile_repaired = true;
}

/// Repairs a flat cache after `jurors[idx]` was replaced (its old rate
/// was `old_eps`): one remove + one insert per sorted order (`O(n)`
/// memmoves, no re-sort), one factor division per affected pmf-ladder
/// checkpoint, and an in-place profile repair (prefix entries reused
/// verbatim). The orders are total with distinct keys, so remove +
/// rank-insert lands on exactly the permutation a full re-sort would
/// produce. Only the AltrM answer is dropped — the selection it holds
/// may genuinely change — and the next AltrM task re-solves it
/// rescan-free with the bound-pruned scan; the budget staircase is
/// cleared likewise.
fn repair_flat_update(
    cache: &mut PoolCache,
    jurors: &[Juror],
    idx: usize,
    old: &Juror,
) -> MutationEffect {
    let (r_old, r_new) =
        reinsert_eps(&mut cache.eps_order, Some(&mut cache.eps_sorted), jurors, idx, old);
    reinsert_greedy(&mut cache.greedy_order, jurors, idx, old);

    let mut effect =
        MutationEffect { invalidated: true, orders_repaired: true, ..Default::default() };
    if let Some(ladder) = cache.ladder.as_mut() {
        if ladder.repair_update(&cache.eps_sorted, old.epsilon(), r_old, r_new) {
            effect.pmf_repaired = true;
        } else {
            effect.pmf_rebuilt = true;
        }
    }
    repair_profile(cache, r_old.min(r_new), &mut effect);
    cache.altr = None;
    cache.staircase.clear();
    effect
}

/// Repairs a flat cache after `jurors[idx]` was removed: one remove per
/// sorted order plus a renumbering pass (positions above `idx` shift
/// down, preserving both total orders), one factor division per
/// affected ladder checkpoint, and an in-place profile repair.
fn repair_flat_remove(cache: &mut PoolCache, idx: usize) -> MutationEffect {
    let pos = cache.eps_order.iter().position(|&i| i == idx).expect("cached order covers pool");
    let old_eps = cache.eps_sorted[pos];
    cache.eps_sorted.remove(pos);
    renumber_out(&mut cache.eps_order, idx);
    renumber_out(&mut cache.greedy_order, idx);

    let mut effect =
        MutationEffect { invalidated: true, orders_repaired: true, ..Default::default() };
    if let Some(ladder) = cache.ladder.as_mut() {
        if ladder.repair_remove(&cache.eps_sorted, old_eps, pos) {
            effect.pmf_repaired = true;
        } else {
            effect.pmf_rebuilt = true;
        }
    }
    repair_profile(cache, pos, &mut effect);
    cache.altr = None;
    cache.staircase.clear();
    effect
}

/// Repairs a flat cache after a juror was appended at pool position
/// `idx`: one rank-insert per sorted order, one [`PoiBin::push`] per
/// affected ladder checkpoint (inserts never need deconvolution), and
/// an in-place profile repair. Like the other repairs, only the AltrM
/// answer and the staircase drop.
fn repair_flat_insert(cache: &mut PoolCache, jurors: &[Juror], idx: usize) -> MutationEffect {
    let r_new =
        shard::rank_insert_eps(&mut cache.eps_order, Some(&mut cache.eps_sorted), jurors, idx);
    shard::rank_insert_greedy(&mut cache.greedy_order, jurors, idx);

    let mut effect = MutationEffect {
        invalidated: true,
        orders_repaired: true,
        insert_repaired: true,
        ..Default::default()
    };
    if let Some(ladder) = cache.ladder.as_mut() {
        ladder.repair_insert(&cache.eps_sorted, r_new);
        effect.pmf_repaired = true;
    }
    repair_profile(cache, r_new, &mut effect);
    cache.altr = None;
    cache.staircase.clear();
    effect
}

/// Dispatches one task against a warm (or deliberately cold) entry.
///
/// AltrM replays the cached selection by bumping its [`Arc`] (the
/// owned-result APIs copy it out afterwards); PayM replays the cached
/// greedy order through the scratch-threaded scan. A cold cache
/// (possible when `warm_pool` was skipped for an unknown pool that has
/// since appeared) falls back to the direct solver — same selections
/// either way.
fn solve_on_entry(
    entry: &PoolEntry,
    task: &DecisionTask,
    config: &ServiceConfig,
    scratch: &mut SolverScratch,
) -> Result<Arc<Selection>, ServiceError> {
    match &entry.state {
        PoolState::Flat { cache } => match (task.model, cache) {
            (CrowdModel::Altruism, FlatCache::Private(cache)) => match cache.altr.as_ref() {
                Some(answer) => answer.clone().map_err(ServiceError::from),
                None => solve_altr_cached(&entry.jurors, &cache.eps_order, &config.altr, scratch)
                    .map_err(ServiceError::from),
            },
            (CrowdModel::Altruism, FlatCache::Shared(sf)) => match &sf.view {
                None => {
                    // `altr_or_init` is thread-safe: the first worker to
                    // need an unfilled answer solves it once for every
                    // attached pool.
                    let set = &sf.link.set;
                    set.altr_or_init(|| {
                        solve_altr_cached(&entry.jurors, &set.eps_order, &config.altr, scratch)
                    })
                    .clone()
                    .map_err(ServiceError::from)
                }
                Some(view) => match &view.altr {
                    Some(answer) => answer.clone().map_err(ServiceError::from),
                    // `prepare` fills the view before workers run; this
                    // fallback keeps stray cold paths correct without
                    // mutating the (shared) registry.
                    None => match sf.link.set.altr.get() {
                        Some(Ok(sel)) => {
                            Ok(Arc::new(translate_selection(sel, &view.sigma, &entry.jurors)))
                        }
                        Some(Err(e)) => Err(ServiceError::from(e.clone())),
                        None => {
                            solve_altr_cached(&entry.jurors, &view.eps_order, &config.altr, scratch)
                                .map_err(ServiceError::from)
                        }
                    },
                },
            },
            (CrowdModel::Altruism, FlatCache::Cold) => AltrAlg::new(config.altr)
                .solve_with(&entry.jurors, scratch)
                .map(Arc::new)
                .map_err(ServiceError::from),
            (CrowdModel::PayAsYouGo { budget }, FlatCache::Private(cache)) => {
                match cache.staircase.lookup(budget) {
                    Some(replay) => replay.map(Arc::new).map_err(ServiceError::from),
                    None => PayAlg::new(budget, config.pay)
                        .solve_presorted(&entry.jurors, &cache.greedy_order, scratch)
                        .map(Arc::new)
                        .map_err(ServiceError::from),
                }
            }
            (CrowdModel::PayAsYouGo { budget }, FlatCache::Shared(sf)) => {
                let (greedy_order, replay) = match &sf.view {
                    None => {
                        (&*sf.link.set.greedy_order, sf.link.set.staircase_read().lookup(budget))
                    }
                    Some(view) => (&view.greedy_order, view.staircase.lookup(budget)),
                };
                match replay {
                    Some(replay) => replay.map(Arc::new).map_err(ServiceError::from),
                    None => PayAlg::new(budget, config.pay)
                        .solve_presorted(&entry.jurors, greedy_order, scratch)
                        .map(Arc::new)
                        .map_err(ServiceError::from),
                }
            }
            (CrowdModel::PayAsYouGo { budget }, FlatCache::Cold) => PayAlg::new(budget, config.pay)
                .solve_with(&entry.jurors, scratch)
                .map(Arc::new)
                .map_err(ServiceError::from),
        },
        PoolState::Sharded { sp, .. } => match task.model {
            CrowdModel::Altruism => {
                if let Some(result) = sp.cached_altr() {
                    result.clone().map_err(ServiceError::from)
                } else if let Some(order) = sp.merged_eps_order() {
                    solve_altr_cached(&entry.jurors, order, &config.altr, scratch)
                        .map_err(ServiceError::from)
                } else {
                    AltrAlg::new(config.altr)
                        .solve_with(&entry.jurors, scratch)
                        .map(Arc::new)
                        .map_err(ServiceError::from)
                }
            }
            CrowdModel::PayAsYouGo { budget } => match sp.staircase_lookup(budget) {
                Some(replay) => replay.map(Arc::new).map_err(ServiceError::from),
                None => match sp.merged_greedy_order() {
                    Some(order) => PayAlg::new(budget, config.pay)
                        .solve_presorted(&entry.jurors, order, scratch)
                        .map(Arc::new)
                        .map_err(ServiceError::from),
                    None => PayAlg::new(budget, config.pay)
                        .solve_with(&entry.jurors, scratch)
                        .map(Arc::new)
                        .map_err(ServiceError::from),
                },
            },
        },
    }
}

/// Seeds the store from the snapshot catalog before an attach: when
/// `key` is not interned and the catalog holds a candidate, the first
/// fully-verified entry is published so the ordinary attach path that
/// follows finds it warm. Counts into the two snapshot stats; a
/// rejected or absent candidate simply leaves the store unchanged (the
/// caller cold-builds). No-op without a catalog or when the key is
/// already interned (live state always wins).
#[allow(clippy::too_many_arguments)]
fn restore_into_store(
    store: &mut ArtifactStore,
    catalog: Option<&snapshot::Catalog>,
    key: &StoreKey,
    jurors: &[Juror],
    max_age: Option<Duration>,
    restores: &mut usize,
    rejections: &mut usize,
    stale_skips: &mut usize,
) {
    let Some(catalog) = catalog else { return };
    if store.contains(key) {
        return;
    }
    // The staleness gate runs before any file is opened: a too-old (or
    // unstamped, under an explicit policy) generation is skipped —
    // counted, never an error — and the pool cold-builds. Only pools
    // the snapshot could actually have served count a skip.
    if catalog.has_candidates(&key.fp) && catalog.is_stale(max_age) {
        *stale_skips += 1;
        return;
    }
    let attempt = catalog.restore(key, jurors);
    *rejections += attempt.rejections;
    if let Some(set) = attempt.set {
        if store.publish(*key, set).is_ok() {
            *restores += 1;
        }
    }
}

/// The one place a cold flat pool acquires warm state: attach to an
/// interned entry when the store admits the pool, otherwise run `build`
/// and publish the result (an occupied key that refused the attach
/// keeps its incumbent and the builder stays private, losslessly).
/// Returns the new cache plus whether it *attached* (the caller's
/// share-hit accounting). With sharing off this is exactly the old
/// private build.
fn acquire_flat(
    store: &mut ArtifactStore,
    key: StoreKey,
    jurors: &[Juror],
    share: bool,
    build: impl FnOnce() -> PoolCache,
) -> (FlatCache, bool) {
    if share {
        if let Some(shared) = attach_flat(store, key, jurors) {
            return (shared, true);
        }
    }
    let built = build();
    if !share {
        return (FlatCache::Private(built), false);
    }
    let cache = match store.publish(key, ArtifactSet::from_cache(built, jurors)) {
        Ok(set) => FlatCache::Shared(SharedFlat { link: StoreLink { key, set }, view: None }),
        Err(set) => FlatCache::Private(set.into_cache()),
    };
    (cache, false)
}

/// Attaches a flat pool to the interned entry at `key`, if one exists
/// and its content admits this pool: sequence-identical attachers share
/// the entry outright, permuted-but-equal ones get a σ-translated
/// position-space view. Returns `None` when there is no entry or the
/// verification refuses (content differs, or a tie-violating entry
/// cannot serve a permuted attacher). The single place the attach rules
/// live — registration ([`JuryService::warm_pool`] /
/// [`JuryService::warm_orders`]) and post-mutation re-join
/// ([`JuryService::settle_after_mutation`]) all route through it.
fn attach_flat(store: &ArtifactStore, key: StoreKey, jurors: &[Juror]) -> Option<FlatCache> {
    let set = store.get(&key)?;
    let attach = set.match_pool(jurors)?;
    Some(match attach {
        Attach::Identical => {
            FlatCache::Shared(SharedFlat { link: StoreLink { key, set }, view: None })
        }
        Attach::Permuted(sigma) => {
            let view = PermutedView::new(&set, sigma);
            FlatCache::Shared(SharedFlat { link: StoreLink { key, set }, view: Some(view) })
        }
    })
}

/// Drops a flat pool's shared attachment *without* materialising a
/// private copy — for mutations that immediately discard the flat cache
/// anyway (shard promotion). Same return contract as [`detach_pool`].
fn discard_flat_share(
    store: &mut ArtifactStore,
    state: &mut PoolState,
    ttl_enabled: bool,
) -> Option<bool> {
    let PoolState::Flat { cache } = state else {
        return None;
    };
    if !matches!(cache, FlatCache::Shared(_)) {
        return None;
    }
    let FlatCache::Shared(sf) = std::mem::replace(cache, FlatCache::Cold) else {
        unreachable!("checked above");
    };
    let key = sf.link.key;
    let had_siblings = Arc::strong_count(&sf.link.set) > 2;
    drop(sf);
    store.release(&key, ttl_enabled);
    Some(had_siblings)
}

/// Converts a pool's shared warm state into privately-owned state ahead
/// of a mutation's in-place repair — the copy-on-write boundary. A sole
/// holder reclaims the interned artifacts zero-copy (the entry is
/// removed and unwrapped); a pool with siblings clones exactly what the
/// repair will touch and leaves the entry to them. Under the TTL
/// eviction policy (`ttl_enabled`) the sole-holder fast path is
/// deliberately skipped: the entry survives as a stamped orphan — the
/// pre-mutation content stays warm for a re-join within the TTL — at the
/// cost of cloning instead of reclaiming. Returns `Some(had_siblings)`
/// when a detach happened, `None` for cold and already-private pools.
fn detach_pool(
    store: &mut ArtifactStore,
    state: &mut PoolState,
    ttl_enabled: bool,
) -> Option<bool> {
    match state {
        PoolState::Flat { cache } => {
            if !matches!(cache, FlatCache::Shared(_)) {
                return None;
            }
            let FlatCache::Shared(sf) = std::mem::replace(cache, FlatCache::Cold) else {
                unreachable!("checked above");
            };
            let had_siblings = Arc::strong_count(&sf.link.set) > 2;
            if !ttl_enabled {
                store.take_if_sole(&sf.link.key, &sf.link.set);
            }
            let SharedFlat { link: StoreLink { key, set }, view } = sf;
            let private = match view {
                None => match Arc::try_unwrap(set) {
                    Ok(owned) => owned.into_cache(),
                    Err(set) => {
                        let cloned = set.cache_clone();
                        drop(set);
                        store.release(&key, ttl_enabled);
                        cloned
                    }
                },
                Some(view) => {
                    // Same rank-space reclaim as an identical-sequence
                    // detach (zero-copy for a sole holder); only the
                    // position-space orders come from the σ-translated
                    // view.
                    let mut private = match Arc::try_unwrap(set) {
                        Ok(owned) => owned.into_cache(),
                        Err(set) => {
                            let cloned = set.cache_clone();
                            drop(set);
                            store.release(&key, ttl_enabled);
                            cloned
                        }
                    };
                    private.eps_order = view.eps_order;
                    private.greedy_order = view.greedy_order;
                    private
                }
            };
            *cache = FlatCache::Private(private);
            Some(had_siblings)
        }
        PoolState::Sharded { link, .. } => {
            let taken = link.take()?;
            let had_siblings = Arc::strong_count(&taken.set) > 2;
            let key = taken.key;
            drop(taken);
            store.release(&key, ttl_enabled);
            Some(had_siblings)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::juror::{pool_from_rates, pool_from_rates_and_costs, ErrorRate};

    fn figure1() -> Vec<Juror> {
        pool_from_rates_and_costs(&[
            (0.1, 0.2),
            (0.2, 0.2),
            (0.2, 0.3),
            (0.3, 0.4),
            (0.3, 0.65),
            (0.4, 0.05),
            (0.4, 0.05),
        ])
        .unwrap()
    }

    fn sharded_config(threshold: usize, shards: usize) -> ServiceConfig {
        ServiceConfig {
            shard: ShardConfig { threshold, shards, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn altruism_solve_matches_direct_and_hits_cache() {
        let jurors = figure1();
        let mut service = JuryService::new();
        let pool = service.create_pool(jurors.clone());
        assert!(!service.is_warm(pool));
        let cold = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert!(service.is_warm(pool));
        assert_eq!(service.stats().cache_hits, 0, "cold solve is not a hit");
        let warm = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(service.stats().cache_hits, 1);
        let direct = AltrAlg::solve(&jurors, &AltrConfig::default()).unwrap();
        assert_eq!(cold, direct);
        assert_eq!(warm, direct);
        assert_eq!(service.stats().cache_builds, 1);
    }

    #[test]
    fn paym_solve_matches_direct_across_budgets() {
        let jurors = figure1();
        let mut service = JuryService::new();
        let pool = service.create_pool(jurors.clone());
        for budget in [0.05, 0.3, 0.5, 1.0, 2.0] {
            let got = service.solve(&DecisionTask::pay_as_you_go(pool, budget)).unwrap();
            let direct = PayAlg::solve(&jurors, budget, &PayConfig::default()).unwrap();
            assert_eq!(got, direct, "budget {budget}");
        }
        // Solver errors replay identically too.
        assert_eq!(
            service.solve(&DecisionTask::pay_as_you_go(pool, 0.001)),
            Err(ServiceError::Solver(JuryError::NoFeasibleJury { budget: 0.001 }))
        );
        assert!(matches!(
            service.solve(&DecisionTask::pay_as_you_go(pool, f64::NAN)),
            Err(ServiceError::Solver(JuryError::InvalidBudget(_)))
        ));
    }

    #[test]
    fn batch_preserves_order_and_matches_direct() {
        let jurors_a = figure1();
        let jurors_b = pool_from_rates(&[0.25, 0.12, 0.4, 0.33, 0.2]).unwrap();
        let mut service =
            JuryService::with_config(ServiceConfig { threads: 3, ..Default::default() });
        let a = service.create_pool(jurors_a.clone());
        let b = service.create_pool(jurors_b.clone());
        let mut tasks = Vec::new();
        for i in 0..40 {
            tasks.push(match i % 4 {
                0 => DecisionTask::altruism(a),
                1 => DecisionTask::altruism(b),
                2 => DecisionTask::pay_as_you_go(a, 0.1 + i as f64 / 20.0),
                _ => DecisionTask::pay_as_you_go(b, f64::MAX),
            });
        }
        let results = service.solve_batch(&tasks);
        assert_eq!(results.len(), tasks.len());
        for (task, result) in tasks.iter().zip(&results) {
            let jurors = if task.pool == a { &jurors_a } else { &jurors_b };
            let direct = match task.model {
                CrowdModel::Altruism => AltrAlg::solve(jurors, &AltrConfig::default()),
                CrowdModel::PayAsYouGo { budget } => {
                    PayAlg::solve(jurors, budget, &PayConfig::default())
                }
            };
            assert_eq!(result.as_ref().ok(), direct.as_ref().ok());
        }
        assert_eq!(service.stats().cache_builds, 2);
        assert_eq!(service.stats().batches, 1);
    }

    #[test]
    fn mutations_invalidate_and_results_track_the_new_pool() {
        let mut service = JuryService::new();
        let pool = service.create_pool(figure1());
        let before = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert!(service.is_warm(pool));

        // A very reliable, free juror joins: the selection must change.
        let star = Juror::new(99, ErrorRate::new(0.01).unwrap(), 0.0);
        let pos = service.insert_juror(pool, star).unwrap();
        assert!(!service.is_warm(pool), "insert must invalidate");
        let after = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_ne!(before, after);
        assert!(after.members.contains(&pos));
        assert_eq!(
            after,
            AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap()
        );

        // Update and removal round-trip with direct solves as well.
        service.update_juror(pool, 0, Juror::new(0, ErrorRate::new(0.45).unwrap(), 0.2)).unwrap();
        assert!(!service.is_warm(pool));
        let updated = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(
            updated,
            AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap()
        );

        let removed = service.remove_juror(pool, pos).unwrap();
        assert_eq!(removed.id, 99);
        let final_sel = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(
            final_sel,
            AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap()
        );
    }

    #[test]
    fn registry_errors() {
        let mut service = JuryService::new();
        let ghost = PoolId(404);
        assert_eq!(
            service.solve(&DecisionTask::altruism(ghost)),
            Err(ServiceError::UnknownPool(ghost))
        );
        assert!(service.pool(ghost).is_err());
        assert!(service.remove_pool(ghost).is_err());
        let pool = service.create_pool(figure1());
        assert!(matches!(
            service.update_juror(pool, 99, Juror::new(1, ErrorRate::new(0.2).unwrap(), 0.0)),
            Err(ServiceError::JurorOutOfRange { index: 99, .. })
        ));
        assert!(matches!(
            service.remove_juror(pool, 99),
            Err(ServiceError::JurorOutOfRange { .. })
        ));
        // Empty pools replay the solver's EmptyPool error.
        let empty = service.create_pool(vec![]);
        assert_eq!(
            service.solve(&DecisionTask::altruism(empty)),
            Err(ServiceError::Solver(JuryError::EmptyPool))
        );
        let batch = service.solve_batch(&[DecisionTask::altruism(ghost)]);
        assert_eq!(batch, vec![Err(ServiceError::UnknownPool(ghost))]);
    }

    #[test]
    fn jer_profile_is_cached_and_correct() {
        let mut service = JuryService::new();
        let jurors = pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).unwrap();
        let pool = service.create_pool(jurors.clone());
        let profile = service.jer_profile(pool).unwrap().to_vec();
        assert_eq!(profile, AltrAlg::jer_profile(&jurors));
        assert_eq!(profile.iter().map(|&(n, _)| n).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn reliability_order_sorts_by_epsilon() {
        let mut service = JuryService::new();
        let jurors = pool_from_rates(&[0.4, 0.1, 0.3, 0.1, 0.2]).unwrap();
        let pool = service.create_pool(jurors);
        assert_eq!(service.reliability_order(pool).unwrap(), &[1, 3, 4, 2, 0]);
    }

    #[test]
    fn tasks_serialize_round_trip() {
        let task = DecisionTask::pay_as_you_go(PoolId(7), 1.5);
        let text = serde::json::to_string(&task);
        let back: DecisionTask = serde::json::from_str(&text).unwrap();
        assert_eq!(back, task);
        let alt = DecisionTask::altruism(PoolId(0));
        let back: DecisionTask = serde::json::from_str(&serde::json::to_string(&alt)).unwrap();
        assert_eq!(back, alt);
    }

    #[test]
    fn remove_pool_returns_jurors() {
        let mut service = JuryService::new();
        let jurors = figure1();
        let pool = service.create_pool(jurors.clone());
        assert_eq!(service.pool_count(), 1);
        let returned = service.remove_pool(pool).unwrap();
        assert_eq!(returned.len(), jurors.len());
        assert_eq!(service.pool_count(), 0);
    }

    #[test]
    fn flat_update_repairs_orders_in_place() {
        let mut service = JuryService::new();
        let pool = service.create_pool(figure1());
        service.warm_pool(pool).unwrap();
        assert_eq!(service.stats().full_repairs, 1);

        // An update keeps the orders (repaired in O(n)) and only drops
        // the pmf-derived artefacts.
        service.update_juror(pool, 2, Juror::new(2, ErrorRate::new(0.05).unwrap(), 0.1)).unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache_invalidations, 1);
        assert_eq!(stats.order_repairs, 1);
        assert!(!service.is_warm(pool), "pmf artefacts must be cold");

        // Re-warming rebuilds only the solved half: cache_builds grows,
        // full_repairs does not.
        service.warm_pool(pool).unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache_builds, 2);
        assert_eq!(stats.full_repairs, 1);

        // The repaired orders equal a from-scratch rebuild.
        let expected_order = {
            let mut fresh = JuryService::new();
            let p = fresh.create_pool(service.pool(pool).unwrap().to_vec());
            fresh.reliability_order(p).unwrap().to_vec()
        };
        assert_eq!(service.reliability_order(pool).unwrap(), expected_order.as_slice());
        // And solves stay bit-identical to direct.
        let direct = AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap();
        assert_eq!(service.solve(&DecisionTask::altruism(pool)).unwrap(), direct);

        // A flat insert now repairs in place too: one rank-insert per
        // order, the AltrM answer dropped for a rescan-free re-solve.
        service.insert_juror(pool, Juror::new(50, ErrorRate::new(0.3).unwrap(), 0.0)).unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache_invalidations, 2);
        assert_eq!(stats.order_repairs, 2, "insert repairs the orders");
        let expected_order = {
            let mut fresh = JuryService::new();
            let p = fresh.create_pool(service.pool(pool).unwrap().to_vec());
            fresh.reliability_order(p).unwrap().to_vec()
        };
        assert_eq!(service.reliability_order(pool).unwrap(), expected_order.as_slice());
        service.warm_pool(pool).unwrap();
        assert_eq!(service.stats().full_repairs, 1, "no full rebuild after an insert repair");
        let direct = AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap();
        let served = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(served.members, direct.members);
        assert_eq!(served.jer.to_bits(), direct.jer.to_bits());
    }

    #[test]
    fn sharded_mutations_repair_in_place() {
        let mut service = JuryService::with_config(sharded_config(1, 4));
        let jurors =
            pool_from_rates(&(0..40).map(|i| 0.05 + (i as f64) / 50.0).collect::<Vec<_>>())
                .unwrap();
        let pool = service.create_pool(jurors);
        assert_eq!(service.is_sharded(pool), Ok(true));
        assert_eq!(service.shard_count(pool), Ok(Some(4)));
        service.warm_pool(pool).unwrap();
        let stats = service.stats();
        assert_eq!((stats.cache_builds, stats.full_repairs, stats.shard_repairs), (1, 1, 0));

        // An update is repaired in place: the pool *stays warm*, nothing
        // is rebuilt on the next warm_pool, and the repair counters tick.
        service.update_juror(pool, 7, Juror::new(7, ErrorRate::new(0.33).unwrap(), 0.0)).unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache_invalidations, 1);
        assert_eq!(stats.order_repairs, 1);
        assert_eq!(stats.pmf_repairs + stats.pmf_rebuilds, 1);
        assert!(service.is_warm(pool), "repair must keep the pool warm");
        service.warm_pool(pool).unwrap();
        let stats = service.stats();
        assert_eq!((stats.cache_builds, stats.full_repairs, stats.shard_repairs), (1, 1, 0));

        // A removal is repaired too (owning shard patched, the rest
        // renumbered, merged orders kept).
        service.remove_juror(pool, 0).unwrap();
        assert!(service.is_warm(pool));
        let stats = service.stats();
        assert_eq!(stats.cache_invalidations, 2);
        assert_eq!(stats.order_repairs, 2);
        service.warm_pool(pool).unwrap();
        let stats = service.stats();
        assert_eq!((stats.cache_builds, stats.full_repairs, stats.shard_repairs), (1, 1, 0));

        // An insert repairs the owning shard in place too: the pool
        // stays warm and no shard is ever rebuilt.
        service.insert_juror(pool, Juror::new(99, ErrorRate::new(0.2).unwrap(), 0.0)).unwrap();
        assert!(service.is_warm(pool), "insert repairs the owning shard in place");
        service.warm_pool(pool).unwrap();
        let stats = service.stats();
        assert_eq!((stats.cache_builds, stats.full_repairs, stats.shard_repairs), (1, 1, 0));
        assert_eq!(stats.cache_invalidations, 3);
        assert_eq!(stats.insert_repairs, 1);
        // Repairs never queued a full rebuild of pmf artefacts.
        assert_eq!(stats.pmf_repairs + stats.pmf_rebuilds, 3);
    }

    #[test]
    fn budget_changes_never_invalidate_pmf_artefacts() {
        // The satellite regression this pins: a stream of PayM tasks that
        // differ only in budget must never trigger a full repair (the
        // debug_assert in solve_paym enforces it in debug builds) and,
        // past the first scan per budget, must ride the staircase.
        let mut service = JuryService::new();
        let pool = service.create_pool(figure1());
        for round in 0..3 {
            for budget in [0.3, 0.7, 1.1, 2.0] {
                service.solve(&DecisionTask::pay_as_you_go(pool, budget)).unwrap();
            }
            let stats = service.stats();
            assert_eq!(stats.full_repairs, 0, "round {round}");
            assert_eq!(stats.cache_builds, 0, "PayM warms orders only");
        }
        let stats = service.stats();
        assert_eq!(stats.tasks_solved, 12);
        assert_eq!(stats.staircase_hits, 8, "four budgets scan once each");
        // The same holds on a sharded pool.
        let mut sharded = JuryService::with_config(sharded_config(1, 4));
        let pool = sharded.create_pool(figure1());
        for _ in 0..2 {
            for budget in [0.3, 0.7, 1.1] {
                sharded.solve(&DecisionTask::pay_as_you_go(pool, budget)).unwrap();
            }
        }
        let stats = sharded.stats();
        assert_eq!(stats.full_repairs, 1, "only the initial cold warm-up");
        assert_eq!(stats.staircase_hits, 3);

        // A mutation clears the staircase; the next solve re-scans once,
        // without any full repair.
        sharded.update_juror(pool, 2, Juror::new(2, ErrorRate::new(0.11).unwrap(), 0.2)).unwrap();
        sharded.solve(&DecisionTask::pay_as_you_go(pool, 0.3)).unwrap();
        sharded.solve(&DecisionTask::pay_as_you_go(pool, 0.3)).unwrap();
        let stats = sharded.stats();
        assert_eq!(stats.full_repairs, 1);
        assert_eq!(stats.staircase_hits, 4, "second post-mutation solve hits again");
    }

    #[test]
    fn batched_paym_rides_the_staircase() {
        let mut service =
            JuryService::with_config(ServiceConfig { threads: 3, ..Default::default() });
        let pool = service.create_pool(figure1());
        let tasks: Vec<DecisionTask> = (0..30)
            .map(|i| DecisionTask::pay_as_you_go(pool, 0.4 + (i % 3) as f64 / 4.0))
            .collect();
        let first = service.solve_batch(&tasks);
        assert!(first.iter().all(Result::is_ok));
        let stats = service.stats();
        // Three distinct budgets scanned once each in the warm phase; the
        // other 27 tasks replayed their steps.
        assert_eq!(stats.staircase_hits, 27);
        assert_eq!(stats.full_repairs, 0);
        // A second identical batch is all hits, and counts order-level
        // cache hits now that the orders are warm.
        let second = service.solve_batch(&tasks);
        assert_eq!(first, second);
        let stats = service.stats();
        assert_eq!(stats.staircase_hits, 27 + 30);
        assert_eq!(stats.cache_hits, 30);
    }

    #[test]
    fn altr_resolve_after_update_never_full_repairs() {
        // The counter gate: a pure AltrM re-solve after one juror update
        // must ride the repaired orders and the bound-pruned scan — no
        // full rebuild, ever (the debug_assert in `solve` enforces it in
        // debug builds; this pins the counters in any build).
        for (label, config) in
            [("flat", ServiceConfig::default()), ("sharded", sharded_config(1, 4))]
        {
            let rates: Vec<f64> =
                (0..60).map(|i| 0.02 + 0.9 * ((i as f64 * 0.6180339887498949) % 1.0)).collect();
            let mut service = JuryService::with_config(config);
            let pool = service.create_pool(pool_from_rates(&rates).unwrap());
            service.solve(&DecisionTask::altruism(pool)).unwrap();
            let full_repairs_cold = service.stats().full_repairs;
            assert_eq!(full_repairs_cold, 1, "{label}: the cold build is the only full repair");

            for round in 0..3 {
                let idx = (round * 17 + 3) % rates.len();
                let e = 0.05 + round as f64 * 0.21;
                service
                    .update_juror(pool, idx, Juror::new(900, ErrorRate::new(e).unwrap(), 0.1))
                    .unwrap();
                let sel = service.solve(&DecisionTask::altruism(pool)).unwrap();
                let stats = service.stats();
                assert_eq!(
                    stats.full_repairs, full_repairs_cold,
                    "{label} round {round}: AltrM re-solve must not full-repair"
                );
                assert_eq!(stats.order_repairs, round + 1, "{label}: orders repaired in place");
                // The rescan-free answer matches the direct solver.
                let direct =
                    AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap();
                assert_eq!(sel.members, direct.members, "{label} round {round}");
                assert_eq!(sel.jer.to_bits(), direct.jer.to_bits(), "{label} round {round}");
            }
        }
    }

    #[test]
    fn bound_pruning_is_observable() {
        // A few experts plus an unreliable mob: the bound sweep must
        // eliminate the mob sizes and say so in the stats.
        let rates: Vec<f64> =
            (0..201).map(|i| if i < 9 { 0.04 + i as f64 * 0.02 } else { 0.82 }).collect();
        let mut service = JuryService::new();
        let pool = service.create_pool(pool_from_rates(&rates).unwrap());
        let sel = service.solve(&DecisionTask::altruism(pool)).unwrap();
        let stats = service.stats();
        assert!(stats.bound_pruned > 0, "pruning must fire: {stats:?}");
        assert_eq!(stats.bound_pruned, sel.stats.pruned_by_bound);
        // Replays do not re-prune; a post-update re-solve prunes again.
        service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(service.stats().bound_pruned, stats.bound_pruned);
        service.update_juror(pool, 3, Juror::new(3, ErrorRate::new(0.06).unwrap(), 0.0)).unwrap();
        service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert!(service.stats().bound_pruned > stats.bound_pruned);
    }

    #[test]
    fn profile_repairs_in_place_within_tolerance() {
        let rates: Vec<f64> = (0..180).map(|i| 0.03 + ((i * 29) % 90) as f64 / 100.0).collect();
        let mut service = JuryService::new();
        let pool = service.create_pool(pool_from_rates(&rates).unwrap());
        // Materialise the profile (and its resume ladder).
        let cold = service.jer_profile(pool).unwrap().to_vec();
        assert_eq!(cold.len(), rates.len().div_ceil(2));

        // Update, insert and remove must repair — not drop — it.
        service.update_juror(pool, 40, Juror::new(40, ErrorRate::new(0.07).unwrap(), 0.1)).unwrap();
        assert_eq!(service.stats().profile_repairs, 1);
        service.insert_juror(pool, Juror::new(500, ErrorRate::new(0.42).unwrap(), 0.2)).unwrap();
        assert_eq!(service.stats().profile_repairs, 2);
        service.remove_juror(pool, 11).unwrap();
        assert_eq!(service.stats().profile_repairs, 3);

        let repaired = service.jer_profile(pool).unwrap().to_vec();
        assert_eq!(service.stats().profile_repairs, 3, "reads must not rebuild");
        let fresh = {
            let mut other = JuryService::new();
            let p = other.create_pool(service.pool(pool).unwrap().to_vec());
            other.jer_profile(p).unwrap().to_vec()
        };
        assert_eq!(repaired.len(), fresh.len());
        for ((rn, rj), (fn_, fj)) in repaired.iter().zip(&fresh) {
            assert_eq!(rn, fn_);
            assert!((rj - fj).abs() < PROBE_REPAIR_TOL, "n={rn}: repaired {rj} vs fresh {fj}");
        }
    }

    #[test]
    fn degenerate_shards_are_detected_once_per_episode() {
        // Re-balancing off: this test pins the *detector's* episode
        // arithmetic, which requires the drained shard to stay drained.
        let mut service = JuryService::with_config(ServiceConfig {
            shard: ShardConfig { threshold: 1, shards: 4, rebalance: false, ..Default::default() },
            ..Default::default()
        });
        let pool = service.create_pool(pool_from_rates(&[0.2; 40]).unwrap());
        // Drain shard 0 (original positions 0, 4, 8, …): after removing
        // original 4k the juror originally at 4(k+1) sits at position
        // 3(k+1).
        for k in 0..9 {
            service.remove_juror(pool, 3 * k).unwrap();
        }
        // Shard 0 holds 1 of 31 jurors; mean is 31/4: 1 < 25% of mean.
        let stats = service.stats();
        assert_eq!(stats.degenerate_shards, 1, "one shard entered degeneracy once");
        // Draining it completely is the same episode — no double count.
        service.remove_juror(pool, 27).unwrap();
        assert_eq!(service.stats().degenerate_shards, 1);
        // Inserts land on the smallest shard: the episode ends, and a
        // fresh drain counts as a new one.
        for i in 0..6 {
            service
                .insert_juror(pool, Juror::new(100 + i, ErrorRate::new(0.3).unwrap(), 0.0))
                .unwrap();
        }
        assert_eq!(service.stats().degenerate_shards, 1, "recovered shard re-arms");
    }

    #[test]
    fn shards_born_tiny_are_not_degeneracy_episodes() {
        // A pool smaller than K leaves shards empty from creation; their
        // flags are pre-armed, so the counter tracks only shards
        // *hollowed out by mutations*.
        let mut service = JuryService::with_config(sharded_config(1, 8));
        let pool = service.create_pool(pool_from_rates(&[0.1, 0.2, 0.3]).unwrap());
        service.insert_juror(pool, Juror::new(10, ErrorRate::new(0.25).unwrap(), 0.0)).unwrap();
        assert_eq!(service.stats().degenerate_shards, 0, "born-empty shards never register");
        // Removing a shard's only member IS a genuine episode.
        service.remove_juror(pool, 0).unwrap();
        assert_eq!(service.stats().degenerate_shards, 1, "a mutation-emptied shard counts once");
    }

    #[test]
    fn shared_batches_share_replayed_answers() {
        let mut service = JuryService::new();
        let pool = service.create_pool(figure1());
        let tasks: Vec<DecisionTask> = (0..8)
            .map(|i| {
                if i % 4 == 3 {
                    DecisionTask::pay_as_you_go(pool, 1.0)
                } else {
                    DecisionTask::altruism(pool)
                }
            })
            .collect();
        let owned = service.solve_batch(&tasks);
        let shared = service.solve_batch_shared(&tasks);
        for (o, s) in owned.iter().zip(&shared) {
            match (o, s) {
                (Ok(o), Ok(s)) => {
                    assert_eq!(o, s.as_ref());
                    assert_eq!(o.jer.to_bits(), s.jer.to_bits());
                }
                other => panic!("owned/shared divergence: {other:?}"),
            }
        }
        // Replayed AltrM answers are literally the same allocation.
        let (a, b) = (shared[0].as_ref().unwrap(), shared[1].as_ref().unwrap());
        assert!(Arc::ptr_eq(a, b), "replays must share the cached answer");
    }

    #[test]
    fn jer_probe_survives_mutation_repairs_within_tolerance() {
        let rates: Vec<f64> = (0..200).map(|i| 0.03 + ((i * 29) % 90) as f64 / 100.0).collect();
        let direct_probe = |jurors: &[Juror], n: usize| {
            let mut order = Vec::new();
            jury_core::solver::sorted_order_into(jurors, &mut order);
            let eps: Vec<f64> = order.iter().map(|&i| jurors[i].epsilon()).collect();
            PoiBin::from_error_rates(&eps[..n]).tail(JerEngine::majority_threshold(n))
        };
        // K = 2 keeps each shard's run longer than one ladder spacing,
        // so the sharded ladders actually hold checkpoints to repair.
        for (label, config) in
            [("flat", ServiceConfig::default()), ("sharded", sharded_config(1, 2))]
        {
            let mut service = JuryService::with_config(config);
            let pool = service.create_pool(pool_from_rates(&rates).unwrap());
            // First probe lays the ladder(s).
            service.jer_probe(pool, 65).unwrap();

            // A well-conditioned update is repaired by deconvolution.
            service
                .update_juror(pool, 10, Juror::new(10, ErrorRate::new(0.07).unwrap(), 0.0))
                .unwrap();
            let stats = service.stats();
            assert_eq!((stats.pmf_repairs, stats.pmf_rebuilds), (1, 0), "{label}");

            // Park a ½-mass-degenerate rate, then move it away: removing
            // the 0.5 factor trips the guard and exercises the rebuild
            // fallback.
            service
                .update_juror(pool, 20, Juror::new(20, ErrorRate::new(0.5).unwrap(), 0.0))
                .unwrap();
            service
                .update_juror(pool, 20, Juror::new(20, ErrorRate::new(0.9).unwrap(), 0.0))
                .unwrap();
            let stats = service.stats();
            assert_eq!((stats.pmf_repairs, stats.pmf_rebuilds), (2, 1), "{label}");

            // A removal repairs too, and every probe stays within the
            // documented bound of a from-scratch evaluation.
            service.remove_juror(pool, 100).unwrap();
            let jurors = service.pool(pool).unwrap().to_vec();
            for n in [1usize, 63, 65, 129, 199] {
                let probed = service.jer_probe(pool, n).unwrap();
                let direct = direct_probe(&jurors, n);
                assert!(
                    (probed - direct).abs() < PROBE_REPAIR_TOL,
                    "{label} n={n}: {probed} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn flat_pool_promotes_to_sharded_when_crossing_threshold() {
        let mut service = JuryService::with_config(sharded_config(6, 3));
        let pool = service.create_pool(figure1()[..4].to_vec());
        assert_eq!(service.is_sharded(pool), Ok(false));
        service.insert_juror(pool, Juror::new(10, ErrorRate::new(0.25).unwrap(), 0.1)).unwrap();
        assert_eq!(service.is_sharded(pool), Ok(false), "below threshold stays flat");
        service.insert_juror(pool, Juror::new(11, ErrorRate::new(0.15).unwrap(), 0.2)).unwrap();
        assert_eq!(service.is_sharded(pool), Ok(true), "crossing the threshold promotes");
        // Promotion must not change results.
        let direct = AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap();
        assert_eq!(service.solve(&DecisionTask::altruism(pool)).unwrap(), direct);
        // Shrinking below the threshold keeps the sharded layout.
        service.remove_juror(pool, 0).unwrap();
        service.remove_juror(pool, 0).unwrap();
        assert_eq!(service.is_sharded(pool), Ok(true), "hysteresis: no demotion");
    }

    #[test]
    fn jer_probe_matches_profile_on_both_layouts() {
        let rates: Vec<f64> = (0..33).map(|i| 0.04 + ((i * 17) % 80) as f64 / 100.0).collect();
        let jurors = pool_from_rates(&rates).unwrap();
        let mut flat = JuryService::new();
        let fp = flat.create_pool(jurors.clone());
        let mut sharded = JuryService::with_config(sharded_config(1, 7));
        let sp = sharded.create_pool(jurors);
        let profile = flat.jer_profile(fp).unwrap().to_vec();
        for (n, jer) in profile {
            let f = flat.jer_probe(fp, n).unwrap();
            let s = sharded.jer_probe(sp, n).unwrap();
            assert!((f - jer).abs() < 1e-9, "flat probe n={n}: {f} vs {jer}");
            assert!((s - jer).abs() < 1e-9, "sharded probe n={n}: {s} vs {jer}");
        }
        // Oversized probes clamp; invalid sizes error like the solvers.
        assert_eq!(flat.jer_probe(fp, 999), flat.jer_probe(fp, 33));
        assert_eq!(flat.jer_probe(fp, 0), Err(ServiceError::Solver(JuryError::EmptyJury)));
        assert_eq!(sharded.jer_probe(sp, 4), Err(ServiceError::Solver(JuryError::EvenJurySize(4))));
        let empty = flat.create_pool(vec![]);
        assert_eq!(flat.jer_probe(empty, 1), Err(ServiceError::Solver(JuryError::EmptyPool)));
    }

    #[test]
    fn sharded_profile_and_order_match_flat() {
        let rates: Vec<f64> = (0..25).map(|i| 0.9 - ((i * 31) % 83) as f64 / 100.0).collect();
        let jurors = pool_from_rates(&rates).unwrap();
        let mut flat = JuryService::new();
        let fp = flat.create_pool(jurors.clone());
        let mut sharded = JuryService::with_config(sharded_config(1, 16));
        let sp = sharded.create_pool(jurors);
        assert_eq!(flat.reliability_order(fp).unwrap(), sharded.reliability_order(sp).unwrap());
        let f = flat.jer_profile(fp).unwrap().to_vec();
        let s = sharded.jer_profile(sp).unwrap().to_vec();
        assert_eq!(f.len(), s.len());
        for ((fn_, fj), (sn, sj)) in f.iter().zip(&s) {
            assert_eq!(fn_, sn);
            assert_eq!(fj.to_bits(), sj.to_bits(), "profile must be bit-identical at n={fn_}");
        }
    }
}
