//! `jury-service` — a batched, cache-aware serving layer over the JSP
//! solvers.
//!
//! The paper treats jury selection as a one-shot optimisation; a
//! micro-blog deployment is the opposite: a *repeated online service*
//! over slowly-changing juror pools, answering streams of decision tasks
//! under mixed crowd models and per-task budgets. [`JuryService`] is that
//! seam:
//!
//! * **pool registry** — pools are registered once and addressed by
//!   [`PoolId`]; jurors can be inserted, updated and removed in place.
//! * **per-pool cache** — the ε-sorted order, the incremental prefix-pmf
//!   JER profile, the solved AltrM selection and PayALG's greedy visit
//!   order are computed once per pool *generation* and invalidated by any
//!   mutation. A warm AltrM task is a cache lookup; a warm PayM task
//!   skips straight to the greedy scan on the cached order.
//! * **batched parallel solving** — [`JuryService::solve_batch`] fans a
//!   slice of [`DecisionTask`]s across scoped worker threads, each with
//!   its own persistent [`SolverScratch`], so a warm task performs no
//!   solver-path heap allocation beyond its returned [`Selection`].
//!
//! Results are **bit-identical** to calling [`AltrAlg::solve`] /
//! [`PayAlg::solve`] directly — cold cache, warm cache and batched paths
//! all reduce to the same scratch-threaded solver internals (the
//! equivalence property tests in `tests/equivalence.rs` assert this).
//!
//! ```
//! use jury_core::juror::pool_from_rates_and_costs;
//! use jury_service::{DecisionTask, JuryService};
//!
//! let jurors = pool_from_rates_and_costs(&[
//!     (0.1, 0.2), (0.2, 0.2), (0.2, 0.3), (0.3, 0.4), (0.4, 0.05),
//! ]).unwrap();
//! let mut service = JuryService::new();
//! let pool = service.create_pool(jurors);
//!
//! let tasks = vec![
//!     DecisionTask::altruism(pool),
//!     DecisionTask::pay_as_you_go(pool, 0.5),
//!     DecisionTask::pay_as_you_go(pool, 1.0),
//! ];
//! let results = service.solve_batch(&tasks);
//! assert!(results.iter().all(Result::is_ok));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use jury_core::altr::{AltrAlg, AltrConfig};
use jury_core::error::JuryError;
use jury_core::juror::Juror;
use jury_core::model::CrowdModel;
use jury_core::paym::{PayAlg, PayConfig};
use jury_core::problem::Selection;
use jury_core::solver::SolverScratch;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a registered juror pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolId(u64);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool#{}", self.0)
    }
}

impl Serialize for PoolId {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl Deserialize for PoolId {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        u64::from_value(value).map(PoolId)
    }
}

/// One decision-making task: which pool answers it, under which crowd
/// model (AltrM, or PayM with a per-task budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTask {
    /// The candidate pool to select from.
    pub pool: PoolId,
    /// Crowd model governing feasibility.
    pub model: CrowdModel,
}

impl DecisionTask {
    /// An AltrM task on `pool`.
    pub fn altruism(pool: PoolId) -> Self {
        Self { pool, model: CrowdModel::Altruism }
    }

    /// A PayM task on `pool` with the given budget (validated when
    /// solved, exactly like [`PayAlg::solve`]).
    pub fn pay_as_you_go(pool: PoolId, budget: f64) -> Self {
        Self { pool, model: CrowdModel::PayAsYouGo { budget } }
    }
}

impl Serialize for DecisionTask {
    fn to_value(&self) -> Value {
        Value::object([("pool", self.pool.to_value()), ("task", self.model.to_value())])
    }
}

impl Deserialize for DecisionTask {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let pool = value.get("pool").ok_or_else(|| SerdeError::missing_field("pool"))?;
        let model = value.get("task").ok_or_else(|| SerdeError::missing_field("task"))?;
        Ok(Self { pool: PoolId::from_value(pool)?, model: CrowdModel::from_value(model)? })
    }
}

/// Service-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The task referenced a pool id that is not registered.
    UnknownPool(PoolId),
    /// The referenced index is outside the pool.
    JurorOutOfRange {
        /// The pool addressed.
        pool: PoolId,
        /// The offending position.
        index: usize,
        /// Current pool size.
        len: usize,
    },
    /// The underlying solver rejected the task.
    Solver(JuryError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownPool(id) => write!(f, "unknown {id}"),
            Self::JurorOutOfRange { pool, index, len } => {
                write!(f, "juror index {index} out of range for {pool} of size {len}")
            }
            Self::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<JuryError> for ServiceError {
    fn from(e: JuryError) -> Self {
        Self::Solver(e)
    }
}

/// Tuning knobs for a [`JuryService`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceConfig {
    /// Worker threads for [`JuryService::solve_batch`]
    /// (0 = one per available core).
    pub threads: usize,
    /// AltrALG configuration used for AltrM tasks.
    pub altr: AltrConfig,
    /// PayALG configuration used for PayM tasks.
    pub pay: PayConfig,
}

/// Monotone counters describing the service's work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Tasks solved (single or batched).
    pub tasks_solved: usize,
    /// Tasks whose pool cache was already warm when the request
    /// arrived (cold solves and unknown pools are not hits).
    pub cache_hits: usize,
    /// Per-pool cache (re)builds.
    pub cache_builds: usize,
    /// `solve_batch` invocations.
    pub batches: usize,
}

/// Everything derived from one immutable snapshot of a pool, built once
/// per generation and dropped on any mutation.
#[derive(Debug, Clone)]
struct PoolCache {
    /// Pool indices ascending by ε — AltrALG's visit order.
    eps_order: Vec<usize>,
    /// The incremental prefix-pmf JER profile: `(n, JER of the n best)`
    /// for every odd `n` (Figure 3(a)'s curve for this pool).
    profile: Vec<(usize, f64)>,
    /// The solved AltrM answer (or the error the solver reports for this
    /// pool, e.g. an empty one) — replayed verbatim on every AltrM task.
    altr: Result<Selection, JuryError>,
    /// PayALG's budget-independent greedy visit order.
    greedy_order: Vec<usize>,
}

#[derive(Debug, Clone)]
struct PoolEntry {
    jurors: Vec<Juror>,
    cache: Option<PoolCache>,
}

/// The serving layer: pool registry + per-pool caches + batched parallel
/// solving. See the crate docs for the architecture.
#[derive(Debug, Clone, Default)]
pub struct JuryService {
    config: ServiceConfig,
    pools: HashMap<u64, PoolEntry>,
    next_pool: u64,
    stats: ServiceStats,
    /// Persistent per-worker scratches, reused across batches.
    scratches: Vec<SolverScratch>,
}

impl JuryService {
    /// A service with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A service with explicit configuration.
    pub fn with_config(config: ServiceConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Work counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Number of registered pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    // ------------------------------------------------------------------
    // Pool registry
    // ------------------------------------------------------------------

    /// Registers a pool and returns its handle. The pool may be empty
    /// (tasks on it then fail exactly like the direct solvers do).
    pub fn create_pool(&mut self, jurors: Vec<Juror>) -> PoolId {
        let id = self.next_pool;
        self.next_pool += 1;
        self.pools.insert(id, PoolEntry { jurors, cache: None });
        PoolId(id)
    }

    /// Unregisters a pool, returning its jurors.
    pub fn remove_pool(&mut self, pool: PoolId) -> Result<Vec<Juror>, ServiceError> {
        self.pools.remove(&pool.0).map(|entry| entry.jurors).ok_or(ServiceError::UnknownPool(pool))
    }

    /// The current jurors of `pool` (selection member indices refer to
    /// positions in this slice).
    pub fn pool(&self, pool: PoolId) -> Result<&[Juror], ServiceError> {
        self.pools
            .get(&pool.0)
            .map(|entry| entry.jurors.as_slice())
            .ok_or(ServiceError::UnknownPool(pool))
    }

    /// Appends a juror; returns its position. Invalidates the pool cache.
    pub fn insert_juror(&mut self, pool: PoolId, juror: Juror) -> Result<usize, ServiceError> {
        let entry = self.entry_mut(pool)?;
        entry.jurors.push(juror);
        entry.cache = None;
        Ok(entry.jurors.len() - 1)
    }

    /// Replaces the juror at `index` (e.g. a re-estimated error rate).
    /// Invalidates the pool cache.
    pub fn update_juror(
        &mut self,
        pool: PoolId,
        index: usize,
        juror: Juror,
    ) -> Result<(), ServiceError> {
        let entry = self.entry_mut(pool)?;
        let len = entry.jurors.len();
        let slot = entry.jurors.get_mut(index).ok_or(ServiceError::JurorOutOfRange {
            pool,
            index,
            len,
        })?;
        *slot = juror;
        entry.cache = None;
        Ok(())
    }

    /// Removes and returns the juror at `index`, preserving the order of
    /// the rest (so remaining positions shift down by one, exactly like
    /// `Vec::remove`). Invalidates the pool cache.
    pub fn remove_juror(&mut self, pool: PoolId, index: usize) -> Result<Juror, ServiceError> {
        let entry = self.entry_mut(pool)?;
        let len = entry.jurors.len();
        if index >= len {
            return Err(ServiceError::JurorOutOfRange { pool, index, len });
        }
        entry.cache = None;
        Ok(entry.jurors.remove(index))
    }

    fn entry_mut(&mut self, pool: PoolId) -> Result<&mut PoolEntry, ServiceError> {
        self.pools.get_mut(&pool.0).ok_or(ServiceError::UnknownPool(pool))
    }

    // ------------------------------------------------------------------
    // Cache
    // ------------------------------------------------------------------

    /// Builds the per-pool cache if it is cold. Called automatically by
    /// the solve paths; exposed so benches can separate cold from warm.
    pub fn warm_pool(&mut self, pool: PoolId) -> Result<(), ServiceError> {
        let altr_config = self.config.altr;
        // Borrow-split: the scratch is taken out while the entry is
        // borrowed mutably.
        let mut scratch = self.scratches.pop().unwrap_or_default();
        let entry = match self.pools.get_mut(&pool.0) {
            Some(e) => e,
            None => {
                self.scratches.push(scratch);
                return Err(ServiceError::UnknownPool(pool));
            }
        };
        if entry.cache.is_none() {
            entry.cache = Some(build_cache(&entry.jurors, &altr_config, &mut scratch));
            self.stats.cache_builds += 1;
        }
        self.scratches.push(scratch);
        Ok(())
    }

    /// Whether `pool`'s cache is currently warm.
    pub fn is_warm(&self, pool: PoolId) -> bool {
        self.pools.get(&pool.0).is_some_and(|entry| entry.cache.is_some())
    }

    /// The cached odd-size JER profile of `pool` (computed on demand):
    /// `(n, JER of the n lowest-ε jurors)` for `n = 1, 3, 5, …`.
    pub fn jer_profile(&mut self, pool: PoolId) -> Result<&[(usize, f64)], ServiceError> {
        self.warm_pool(pool)?;
        let entry = &self.pools[&pool.0];
        Ok(&entry.cache.as_ref().expect("warmed above").profile)
    }

    /// The cached reliability order of `pool`: positions sorted ascending
    /// by ε (ties by position). `order[..k]` is the best fixed-size-`k`
    /// jury by Lemma 3.
    pub fn reliability_order(&mut self, pool: PoolId) -> Result<&[usize], ServiceError> {
        self.warm_pool(pool)?;
        let entry = &self.pools[&pool.0];
        Ok(&entry.cache.as_ref().expect("warmed above").eps_order)
    }

    // ------------------------------------------------------------------
    // Solving
    // ------------------------------------------------------------------

    /// Solves one task, warming the pool cache if needed.
    ///
    /// Bit-identical to [`AltrAlg::solve`] / [`PayAlg::solve`] on the
    /// pool's current jurors.
    pub fn solve(&mut self, task: &DecisionTask) -> Result<Selection, ServiceError> {
        let was_warm = self.is_warm(task.pool);
        self.warm_pool(task.pool)?;
        let mut scratch = self.scratches.pop().unwrap_or_default();
        let result = solve_on_entry(&self.pools[&task.pool.0], task, &self.config, &mut scratch);
        self.scratches.push(scratch);
        self.stats.tasks_solved += 1;
        if was_warm {
            self.stats.cache_hits += 1;
        }
        result
    }

    /// Solves a batch of tasks, preserving order.
    ///
    /// All referenced pools are warmed first (sequentially — warming
    /// mutates the registry), then the tasks fan out over
    /// `config.threads` scoped workers, each with a persistent
    /// [`SolverScratch`]; on a warm cache a task's solver path performs
    /// no heap allocation beyond the returned [`Selection`].
    pub fn solve_batch(&mut self, tasks: &[DecisionTask]) -> Vec<Result<Selection, ServiceError>> {
        self.stats.batches += 1;
        self.stats.tasks_solved += tasks.len();
        // A hit is a task whose pool was warm before this batch did any
        // warming of its own.
        self.stats.cache_hits += tasks.iter().filter(|t| self.is_warm(t.pool)).count();

        // Warm every referenced pool once; unknown pools fail per-task
        // below so the batch result stays positional.
        let mut warmed: Vec<u64> = Vec::with_capacity(tasks.len().min(self.pools.len()));
        for task in tasks {
            if !warmed.contains(&task.pool.0) {
                warmed.push(task.pool.0);
                let _ = self.warm_pool(task.pool);
            }
        }

        let threads = self.effective_threads().min(tasks.len()).max(1);
        if threads == 1 {
            let mut scratch = self.scratches.pop().unwrap_or_default();
            let out: Vec<_> =
                tasks.iter().map(|task| self.solve_prewarmed(task, &mut scratch)).collect();
            self.scratches.push(scratch);
            return out;
        }

        // Hand each worker a persistent scratch; collect them all back
        // after the scope (including any spares beyond the chunk count)
        // so the next batch starts warm.
        let mut scratches = std::mem::take(&mut self.scratches);
        scratches.resize_with(threads, SolverScratch::default);
        let chunk_len = tasks.len().div_ceil(threads);
        let n_chunks = tasks.len().div_ceil(chunk_len);
        let pools = &self.pools;
        let config = &self.config;

        let mut out = Vec::with_capacity(tasks.len());
        let mut returned = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (chunk, mut scratch) in tasks.chunks(chunk_len).zip(scratches.drain(..n_chunks)) {
                handles.push(scope.spawn(move || {
                    let results: Vec<_> = chunk
                        .iter()
                        .map(|task| match pools.get(&task.pool.0) {
                            None => Err(ServiceError::UnknownPool(task.pool)),
                            Some(entry) => solve_on_entry(entry, task, config, &mut scratch),
                        })
                        .collect();
                    (results, scratch)
                }));
            }
            for handle in handles {
                let (results, scratch) = handle.join().expect("service worker panicked");
                out.extend(results);
                returned.push(scratch);
            }
        });
        returned.append(&mut scratches);
        self.scratches = returned;
        out
    }

    /// Single-task solve assuming `warm_pool` already ran for its pool.
    fn solve_prewarmed(
        &self,
        task: &DecisionTask,
        scratch: &mut SolverScratch,
    ) -> Result<Selection, ServiceError> {
        match self.pools.get(&task.pool.0) {
            None => Err(ServiceError::UnknownPool(task.pool)),
            Some(entry) => solve_on_entry(entry, task, &self.config, scratch),
        }
    }

    fn effective_threads(&self) -> usize {
        if self.config.threads != 0 {
            return self.config.threads;
        }
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    }
}

/// Builds every cached artefact for one pool snapshot.
fn build_cache(jurors: &[Juror], altr: &AltrConfig, scratch: &mut SolverScratch) -> PoolCache {
    let altr_result = AltrAlg::new(*altr).solve_with(jurors, scratch);
    // The solve already sorted the pool by ε into the scratch; snapshot
    // its order and derive the profile from the sorted rates instead of
    // sorting (and scanning) the pool again.
    let (eps_order, profile) = if jurors.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        (scratch.last_order().to_vec(), AltrAlg::jer_profile_sorted(scratch.last_sorted_eps()))
    };
    let mut greedy_order = Vec::with_capacity(jurors.len());
    PayAlg::greedy_order_into(jurors, &mut greedy_order);
    PoolCache { eps_order, profile, altr: altr_result, greedy_order }
}

/// Dispatches one task against a warm (or deliberately cold) entry.
///
/// AltrM replays the cached selection; PayM replays the cached greedy
/// order through the scratch-threaded scan. A cold cache (possible when
/// `warm_pool` was skipped for an unknown pool that has since appeared)
/// falls back to the direct solver — same results either way.
fn solve_on_entry(
    entry: &PoolEntry,
    task: &DecisionTask,
    config: &ServiceConfig,
    scratch: &mut SolverScratch,
) -> Result<Selection, ServiceError> {
    match (task.model, entry.cache.as_ref()) {
        (CrowdModel::Altruism, Some(cache)) => cache.altr.clone().map_err(ServiceError::from),
        (CrowdModel::Altruism, None) => {
            AltrAlg::new(config.altr).solve_with(&entry.jurors, scratch).map_err(ServiceError::from)
        }
        (CrowdModel::PayAsYouGo { budget }, Some(cache)) => PayAlg::new(budget, config.pay)
            .solve_presorted(&entry.jurors, &cache.greedy_order, scratch)
            .map_err(ServiceError::from),
        (CrowdModel::PayAsYouGo { budget }, None) => PayAlg::new(budget, config.pay)
            .solve_with(&entry.jurors, scratch)
            .map_err(ServiceError::from),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jury_core::juror::{pool_from_rates, pool_from_rates_and_costs, ErrorRate};

    fn figure1() -> Vec<Juror> {
        pool_from_rates_and_costs(&[
            (0.1, 0.2),
            (0.2, 0.2),
            (0.2, 0.3),
            (0.3, 0.4),
            (0.3, 0.65),
            (0.4, 0.05),
            (0.4, 0.05),
        ])
        .unwrap()
    }

    #[test]
    fn altruism_solve_matches_direct_and_hits_cache() {
        let jurors = figure1();
        let mut service = JuryService::new();
        let pool = service.create_pool(jurors.clone());
        assert!(!service.is_warm(pool));
        let cold = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert!(service.is_warm(pool));
        assert_eq!(service.stats().cache_hits, 0, "cold solve is not a hit");
        let warm = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(service.stats().cache_hits, 1);
        let direct = AltrAlg::solve(&jurors, &AltrConfig::default()).unwrap();
        assert_eq!(cold, direct);
        assert_eq!(warm, direct);
        assert_eq!(service.stats().cache_builds, 1);
    }

    #[test]
    fn paym_solve_matches_direct_across_budgets() {
        let jurors = figure1();
        let mut service = JuryService::new();
        let pool = service.create_pool(jurors.clone());
        for budget in [0.05, 0.3, 0.5, 1.0, 2.0] {
            let got = service.solve(&DecisionTask::pay_as_you_go(pool, budget)).unwrap();
            let direct = PayAlg::solve(&jurors, budget, &PayConfig::default()).unwrap();
            assert_eq!(got, direct, "budget {budget}");
        }
        // Solver errors replay identically too.
        assert_eq!(
            service.solve(&DecisionTask::pay_as_you_go(pool, 0.001)),
            Err(ServiceError::Solver(JuryError::NoFeasibleJury { budget: 0.001 }))
        );
        assert!(matches!(
            service.solve(&DecisionTask::pay_as_you_go(pool, f64::NAN)),
            Err(ServiceError::Solver(JuryError::InvalidBudget(_)))
        ));
    }

    #[test]
    fn batch_preserves_order_and_matches_direct() {
        let jurors_a = figure1();
        let jurors_b = pool_from_rates(&[0.25, 0.12, 0.4, 0.33, 0.2]).unwrap();
        let mut service =
            JuryService::with_config(ServiceConfig { threads: 3, ..Default::default() });
        let a = service.create_pool(jurors_a.clone());
        let b = service.create_pool(jurors_b.clone());
        let mut tasks = Vec::new();
        for i in 0..40 {
            tasks.push(match i % 4 {
                0 => DecisionTask::altruism(a),
                1 => DecisionTask::altruism(b),
                2 => DecisionTask::pay_as_you_go(a, 0.1 + i as f64 / 20.0),
                _ => DecisionTask::pay_as_you_go(b, f64::MAX),
            });
        }
        let results = service.solve_batch(&tasks);
        assert_eq!(results.len(), tasks.len());
        for (task, result) in tasks.iter().zip(&results) {
            let jurors = if task.pool == a { &jurors_a } else { &jurors_b };
            let direct = match task.model {
                CrowdModel::Altruism => AltrAlg::solve(jurors, &AltrConfig::default()),
                CrowdModel::PayAsYouGo { budget } => {
                    PayAlg::solve(jurors, budget, &PayConfig::default())
                }
            };
            assert_eq!(result.as_ref().ok(), direct.as_ref().ok());
        }
        assert_eq!(service.stats().cache_builds, 2);
        assert_eq!(service.stats().batches, 1);
    }

    #[test]
    fn mutations_invalidate_and_results_track_the_new_pool() {
        let mut service = JuryService::new();
        let pool = service.create_pool(figure1());
        let before = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert!(service.is_warm(pool));

        // A very reliable, free juror joins: the selection must change.
        let star = Juror::new(99, ErrorRate::new(0.01).unwrap(), 0.0);
        let pos = service.insert_juror(pool, star).unwrap();
        assert!(!service.is_warm(pool), "insert must invalidate");
        let after = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_ne!(before, after);
        assert!(after.members.contains(&pos));
        assert_eq!(
            after,
            AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap()
        );

        // Update and removal round-trip with direct solves as well.
        service.update_juror(pool, 0, Juror::new(0, ErrorRate::new(0.45).unwrap(), 0.2)).unwrap();
        assert!(!service.is_warm(pool));
        let updated = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(
            updated,
            AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap()
        );

        let removed = service.remove_juror(pool, pos).unwrap();
        assert_eq!(removed.id, 99);
        let final_sel = service.solve(&DecisionTask::altruism(pool)).unwrap();
        assert_eq!(
            final_sel,
            AltrAlg::solve(service.pool(pool).unwrap(), &AltrConfig::default()).unwrap()
        );
    }

    #[test]
    fn registry_errors() {
        let mut service = JuryService::new();
        let ghost = PoolId(404);
        assert_eq!(
            service.solve(&DecisionTask::altruism(ghost)),
            Err(ServiceError::UnknownPool(ghost))
        );
        assert!(service.pool(ghost).is_err());
        assert!(service.remove_pool(ghost).is_err());
        let pool = service.create_pool(figure1());
        assert!(matches!(
            service.update_juror(pool, 99, Juror::new(1, ErrorRate::new(0.2).unwrap(), 0.0)),
            Err(ServiceError::JurorOutOfRange { index: 99, .. })
        ));
        assert!(matches!(
            service.remove_juror(pool, 99),
            Err(ServiceError::JurorOutOfRange { .. })
        ));
        // Empty pools replay the solver's EmptyPool error.
        let empty = service.create_pool(vec![]);
        assert_eq!(
            service.solve(&DecisionTask::altruism(empty)),
            Err(ServiceError::Solver(JuryError::EmptyPool))
        );
        let batch = service.solve_batch(&[DecisionTask::altruism(ghost)]);
        assert_eq!(batch, vec![Err(ServiceError::UnknownPool(ghost))]);
    }

    #[test]
    fn jer_profile_is_cached_and_correct() {
        let mut service = JuryService::new();
        let jurors = pool_from_rates(&[0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4]).unwrap();
        let pool = service.create_pool(jurors.clone());
        let profile = service.jer_profile(pool).unwrap().to_vec();
        assert_eq!(profile, AltrAlg::jer_profile(&jurors));
        assert_eq!(profile.iter().map(|&(n, _)| n).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
    }

    #[test]
    fn reliability_order_sorts_by_epsilon() {
        let mut service = JuryService::new();
        let jurors = pool_from_rates(&[0.4, 0.1, 0.3, 0.1, 0.2]).unwrap();
        let pool = service.create_pool(jurors);
        assert_eq!(service.reliability_order(pool).unwrap(), &[1, 3, 4, 2, 0]);
    }

    #[test]
    fn tasks_serialize_round_trip() {
        let task = DecisionTask::pay_as_you_go(PoolId(7), 1.5);
        let text = serde::json::to_string(&task);
        let back: DecisionTask = serde::json::from_str(&text).unwrap();
        assert_eq!(back, task);
        let alt = DecisionTask::altruism(PoolId(0));
        let back: DecisionTask = serde::json::from_str(&serde::json::to_string(&alt)).unwrap();
        assert_eq!(back, alt);
    }

    #[test]
    fn remove_pool_returns_jurors() {
        let mut service = JuryService::new();
        let jurors = figure1();
        let pool = service.create_pool(jurors.clone());
        assert_eq!(service.pool_count(), 1);
        let returned = service.remove_pool(pool).unwrap();
        assert_eq!(returned.len(), jurors.len());
        assert_eq!(service.pool_count(), 0);
    }
}
