//! Deterministic fault plane for the snapshot/lease filesystem paths.
//!
//! Crash-ordering bugs in the checkpoint/failover protocol hide in the
//! gaps *between* filesystem operations: a writer that dies after the
//! entry writes but before the manifest rename, a lease heartbeat that
//! stalls mid-refresh, a GC pass interrupted halfway. Timing-based
//! chaos tests reach those gaps only probabilistically; this module
//! makes them addressable. Every filesystem operation on the snapshot
//! write path and the lease protocol consults an injected
//! [`FaultPlane`] first, naming the operation (`"entry.rename"`,
//! `"lease.link"`, `"gc.unlink"`, …). The production plane
//! ([`NoFaults`]) is a no-op the optimizer can see through; the test
//! plane ([`FaultScheduler`]) counts operations and can **fail**,
//! **delay**, or **kill** at exactly the Nth one — so a harness can
//! sweep a kill through every boundary of a commit and assert the
//! directory survives each.
//!
//! *Kill* semantics: a real `kill -9` stops a process between two
//! syscalls and it never runs again. In-process we simulate that by
//! poisoning the plane — the Nth operation and **every subsequent
//! one** fail — and the harness then abandons the service instance
//! (no more heartbeats, no more commits), exactly what a dead process
//! looks like to its peers. The abandoned instance's lease file ages
//! out and a follower breaks it; if the harness *does* drive the
//! zombie again, every commit attempt dies before touching the
//! directory, which is strictly more conservative than a real zombie
//! (whose writes the commit-time fence refuses instead).
//!
//! Readers are deliberately outside the plane: restore already has its
//! own byte-level fault matrix (`snapshot_faults.rs`), and a reader
//! cannot corrupt shared state — only writers need deterministic
//! crash points.

use std::io;
use std::sync::Mutex;
use std::time::Duration;

/// Consulted immediately before every snapshot/lease filesystem
/// operation. `Ok(())` lets the operation proceed; `Err` is injected
/// in its place (the caller treats it exactly like the real syscall
/// failing). Implementations must be cheap: the production plane is
/// consulted on every checkpoint.
pub trait FaultPlane: Send + Sync + std::fmt::Debug {
    /// `op` names the operation about to run (stable, dot-separated:
    /// `"scan.dir"`, `"manifest.read"`, `"entry.create"`,
    /// `"entry.sync"`, `"entry.rename"`, `"manifest.create"`,
    /// `"manifest.sync"`, `"manifest.rename"`, `"gc.unlink"`,
    /// `"lease.read"`, `"lease.tmp"`, `"lease.link"`,
    /// `"lease.refresh"`, `"lease.steal"`, `"lease.unlink"`).
    fn before(&self, op: &str) -> io::Result<()>;
}

/// The production plane: every operation proceeds.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultPlane for NoFaults {
    fn before(&self, _op: &str) -> io::Result<()> {
        Ok(())
    }
}

/// What the scheduler does when an armed operation index is reached.
#[derive(Debug, Clone, Copy)]
pub enum FaultAction {
    /// Fail this one operation (`io::ErrorKind::Other`); later
    /// operations proceed normally.
    Fail,
    /// Poison the plane: this operation and every later one fail —
    /// the in-process stand-in for `kill -9` (see the module docs).
    Kill,
    /// Stall this operation for the given duration, then let it
    /// proceed — a slow disk or a descheduled writer.
    Delay(Duration),
}

#[derive(Debug, Default)]
struct SchedulerState {
    /// Operations consulted so far (the next operation's index).
    seen: u64,
    /// Armed `(operation index, action)` pairs.
    rules: Vec<(u64, FaultAction)>,
    /// Set by [`FaultAction::Kill`]; everything fails afterwards.
    killed: bool,
}

/// The compiled-in test scheduler: deterministic faults at the Nth
/// filesystem operation. Shared (`Arc`) between the harness and the
/// service under test; all methods take `&self`.
///
/// Exposed `pub` so integration tests and the failover bench can use
/// it, but it is test instrumentation — production services keep the
/// default [`NoFaults`] plane.
#[derive(Debug, Default)]
pub struct FaultScheduler {
    state: Mutex<SchedulerState>,
}

impl FaultScheduler {
    /// A scheduler with no armed faults (pure operation counter).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `action` at operation index `at` (0-based, counted across
    /// the scheduler's whole lifetime).
    pub fn arm(&self, at: u64, action: FaultAction) {
        self.state.lock().expect("fault scheduler poisoned").rules.push((at, action));
    }

    /// Operations consulted so far — run a scenario once un-armed to
    /// learn its operation count, then sweep faults through `0..count`.
    pub fn ops_seen(&self) -> u64 {
        self.state.lock().expect("fault scheduler poisoned").seen
    }

    /// Whether a [`FaultAction::Kill`] has fired.
    pub fn is_killed(&self) -> bool {
        self.state.lock().expect("fault scheduler poisoned").killed
    }

    fn injected(op: &str, why: &str) -> io::Error {
        io::Error::other(format!("injected fault ({why}) at {op}"))
    }
}

impl FaultPlane for FaultScheduler {
    fn before(&self, op: &str) -> io::Result<()> {
        let action = {
            let mut st = self.state.lock().expect("fault scheduler poisoned");
            let index = st.seen;
            st.seen += 1;
            if st.killed {
                return Err(Self::injected(op, "killed"));
            }
            let armed = st.rules.iter().find(|(at, _)| *at == index).map(|&(_, a)| a);
            if let Some(FaultAction::Kill) = armed {
                st.killed = true;
            }
            armed
        };
        match action {
            None => Ok(()),
            Some(FaultAction::Fail) => Err(Self::injected(op, "fail")),
            Some(FaultAction::Kill) => Err(Self::injected(op, "kill")),
            Some(FaultAction::Delay(pause)) => {
                std::thread::sleep(pause);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_counts_fails_and_kills() {
        let sched = FaultScheduler::new();
        sched.arm(1, FaultAction::Fail);
        sched.arm(3, FaultAction::Kill);
        assert!(sched.before("a").is_ok());
        assert!(sched.before("b").is_err(), "armed Fail fires once");
        assert!(sched.before("c").is_ok(), "Fail does not poison");
        assert!(sched.before("d").is_err(), "Kill fires");
        assert!(sched.before("e").is_err(), "killed plane stays dead");
        assert!(sched.is_killed());
        assert_eq!(sched.ops_seen(), 5);
    }
}
