//! Live generation watch over a shared snapshot directory.
//!
//! A warm follower keeps a [`SnapshotWatcher`] pointed at the same
//! directory its writer checkpoints into and polls it on a bounded
//! interval. The watcher is deliberately dumb and cheap: it answers
//! one question — *is there a committed generation newer than the one
//! I last adopted?* — and leaves adoption itself to
//! `JuryService::adopt_snapshot`, which re-verifies every artifact
//! through the same content gates a cold restore uses.
//!
//! Two costs are bounded:
//!
//! * **Per-poll work.** The fast path is a single `stat` of the
//!   directory: manifest commits rename into the directory, which
//!   bumps its mtime, so an unchanged mtime means an unchanged
//!   generation set and the poll returns without reading a single
//!   filename. Only an mtime change (or an unadopted pending
//!   generation) triggers a name-only scan — no manifest is opened,
//!   no entry is read.
//! * **Herd alignment.** [`SnapshotWatcher::next_wait`] spreads
//!   followers out by jittering the configured interval ±25% with a
//!   deterministic per-watcher sequence, so a fleet of followers
//!   started together does not stat the shared directory in lockstep
//!   forever.
//!
//! The watcher never observes a generation on its own: the caller
//! reports successful adoption via [`SnapshotWatcher::observe`]. Until
//! then every poll keeps announcing the pending generation, so a
//! failed adoption is retried rather than silently skipped.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use super::scan_manifests;

/// Polls a snapshot directory for generations newer than the last one
/// the owner adopted. See the module docs for the cost model.
#[derive(Debug)]
pub struct SnapshotWatcher {
    dir: PathBuf,
    interval: Duration,
    /// Highest generation the owner has adopted (0 = nothing yet).
    seen_generation: u64,
    /// Directory mtime at the last scan that found nothing new; `None`
    /// forces the next poll to scan.
    settled_mtime: Option<SystemTime>,
    /// splitmix64 chain for deterministic jitter.
    jitter_state: u64,
    polls: u64,
    scans: u64,
}

impl SnapshotWatcher {
    /// A watcher over `dir` polling roughly every `interval`. Nothing
    /// is read until the first [`poll`](Self::poll).
    pub fn new(dir: &Path, interval: Duration) -> Self {
        // Seed the jitter chain from the directory path so co-located
        // followers watching different directories (and tests) get
        // distinct but reproducible sequences.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for byte in dir.as_os_str().as_encoded_bytes() {
            seed = seed.rotate_left(8) ^ u64::from(*byte);
        }
        Self {
            dir: dir.to_path_buf(),
            interval,
            seen_generation: 0,
            settled_mtime: None,
            jitter_state: seed,
            polls: 0,
            scans: 0,
        }
    }

    /// The generation the owner last [`observe`](Self::observe)d.
    pub fn seen_generation(&self) -> u64 {
        self.seen_generation
    }

    /// Polls issued so far (fast-path and scanning alike).
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Polls that fell through the mtime fast path into a name scan.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Checks the directory once. Returns `Some(gen)` when a manifest
    /// with generation `gen > seen_generation` exists, `None` when
    /// there is nothing newer. Repeated polls keep returning the
    /// pending generation until [`observe`](Self::observe) is called —
    /// adoption failures must not un-announce a commit.
    pub fn poll(&mut self) -> Option<u64> {
        self.polls += 1;
        let mtime = fs_mtime(&self.dir);
        if mtime.is_some() && mtime == self.settled_mtime {
            return None;
        }
        self.scans += 1;
        let newest = scan_manifests(&self.dir).into_iter().map(|(gen, _)| gen).max().unwrap_or(0);
        if newest > self.seen_generation {
            // Leave `settled_mtime` unset: until the owner adopts and
            // observes, every poll must re-announce this generation.
            self.settled_mtime = None;
            Some(newest)
        } else {
            self.settled_mtime = mtime;
            None
        }
    }

    /// Records that the owner adopted `generation`; older or equal
    /// observations are ignored.
    pub fn observe(&mut self, generation: u64) {
        self.seen_generation = self.seen_generation.max(generation);
    }

    /// The jittered wait before the next poll: the configured interval
    /// ±25%, from a deterministic per-watcher sequence.
    pub fn next_wait(&mut self) -> Duration {
        // splitmix64: well-distributed, no external dependency.
        self.jitter_state = self.jitter_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let base = self.interval.as_nanos() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        // Map z into [-base/4, +base/4] and offset the interval by it.
        let half_span = base / 4;
        let offset = z % (2 * half_span.max(1) + 1);
        Duration::from_nanos(base - half_span + offset)
    }
}

fn fs_mtime(dir: &Path) -> Option<SystemTime> {
    std::fs::metadata(dir).and_then(|m| m.modified()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut dir = std::env::temp_dir();
            dir.push(format!("jury-watch-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("create temp dir");
            Self(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn poll_announces_until_observed() {
        let tmp = TempDir::new("announce");
        let mut watcher = SnapshotWatcher::new(&tmp.0, Duration::from_millis(10));
        assert_eq!(watcher.poll(), None, "empty directory has nothing to adopt");

        fs::write(tmp.0.join("manifest-3.json"), b"{}").expect("write manifest");
        assert_eq!(watcher.poll(), Some(3));
        assert_eq!(watcher.poll(), Some(3), "unobserved generation is re-announced");

        watcher.observe(3);
        assert_eq!(watcher.poll(), None);
        assert_eq!(watcher.seen_generation(), 3);

        watcher.observe(2);
        assert_eq!(watcher.seen_generation(), 3, "observe never moves backwards");
    }

    #[test]
    fn fast_path_skips_scans_when_directory_is_quiet() {
        let tmp = TempDir::new("fastpath");
        fs::write(tmp.0.join("manifest-1.json"), b"{}").expect("write manifest");
        let mut watcher = SnapshotWatcher::new(&tmp.0, Duration::from_millis(10));
        watcher.observe(1);
        assert_eq!(watcher.poll(), None, "first poll scans and settles");
        let scans_after_settle = watcher.scans();
        for _ in 0..16 {
            assert_eq!(watcher.poll(), None);
        }
        assert_eq!(watcher.scans(), scans_after_settle, "quiet directory is stat-only");
        assert_eq!(watcher.polls(), 17);
    }

    #[test]
    fn next_wait_stays_within_a_quarter_of_the_interval() {
        let tmp = TempDir::new("jitter");
        let interval = Duration::from_millis(100);
        let mut watcher = SnapshotWatcher::new(&tmp.0, interval);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            let wait = watcher.next_wait();
            assert!(wait >= Duration::from_millis(75), "wait {wait:?} below -25%");
            assert!(wait <= Duration::from_millis(125), "wait {wait:?} above +25%");
            distinct.insert(wait);
        }
        assert!(distinct.len() > 8, "jitter sequence should not be constant");
        assert_eq!(SnapshotWatcher::new(&tmp.0, Duration::ZERO).next_wait(), Duration::ZERO);
    }
}
