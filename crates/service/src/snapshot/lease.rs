//! Advisory single-writer lease over a shared snapshot directory.
//!
//! Several service processes may point at one snapshot directory, but
//! only one may write checkpoints. The lease is a small JSON file
//! (`writer.lease`) acquired by **atomic create**: the candidate writes
//! a unique temp file and `hard_link`s it to the lease name, which
//! fails if the name already exists — the filesystem picks exactly one
//! winner. The file carries the holder id, the write **epoch**, and a
//! heartbeat timestamp the holder refreshes on every checkpoint.
//!
//! A second would-be writer finds a live lease and backs off
//! ([`SnapshotError::LeaseHeld`]) — it can still restore read-only.
//! Once the heartbeat goes stale past [`LeaseConfig::ttl`] the lease is
//! broken by **epoch bump**: the breaker atomically *steals* the lease
//! file (rename to a unique name — only one concurrent breaker's
//! rename can succeed, and the stolen bytes are checked against the
//! stale lease the breaker decided to break: stealing a rival's
//! *fresh* replacement instead restores it and backs off) and
//! re-creates it with
//! `epoch = max(stale epoch, committed manifest epoch) + 1`. The old
//! holder is *fenced*: its next commit re-reads the lease immediately
//! before the manifest rename, finds a foreign holder or a higher
//! epoch, and is refused ([`SnapshotError::Fenced`]) — a zombie writer
//! can never publish a manifest over the new holder's generations.
//!
//! The lease is advisory: readers never consult it, and a crashed
//! holder leaves only a file whose heartbeat ages out. Heartbeats are
//! wall-clock milliseconds (`SystemTime`), the only clock comparable
//! across processes; modest skew merely stretches or shrinks the
//! effective ttl, it cannot corrupt data — correctness rests on the
//! commit-time fence, not on clocks. Backwards clock steps are
//! tolerated explicitly: a heartbeat stamped in the future reads as
//! age 0 ([`heartbeat_age_ms`]), so a lease is broken only on positive
//! evidence of staleness, never because a clock ran backwards.
//!
//! Every filesystem operation consults the caller's
//! [`FaultPlane`](super::fault::FaultPlane) first, so the chaos
//! harness can kill or stall a writer at any protocol boundary.

use super::fault::FaultPlane;
use super::SnapshotError;
use serde::{json, Value};
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Lease file name within a snapshot directory.
pub(crate) const LEASE: &str = "writer.lease";

/// Writer-lease tuning (part of
/// [`ServiceConfig`](crate::ServiceConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// How stale the holder's heartbeat may grow before another writer
    /// may break the lease. Must comfortably exceed the checkpoint
    /// interval plus the worst-case snapshot write time.
    pub ttl: Duration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        Self { ttl: Duration::from_secs(30) }
    }
}

/// A parsed `writer.lease` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LeaseInfo {
    pub holder: String,
    pub epoch: u64,
    pub heartbeat_ms: u64,
}

/// What reading the lease file found.
enum ReadLease {
    Missing,
    /// Present but unparseable. Breakable like a stale lease (it
    /// cannot carry a live heartbeat), but never *ours* (unverifiable
    /// ownership fences a believing holder).
    Corrupt,
    Held(LeaseInfo),
}

/// Wall-clock milliseconds since the Unix epoch — the cross-process
/// heartbeat clock.
pub(crate) fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

/// Heartbeat age under backwards-clock tolerance: a heartbeat stamped
/// *at or after* `now` (the wall clock stepped backwards between
/// writes, or another process's clock runs ahead) clamps to age 0. A
/// future-dated heartbeat therefore always reads as live — staleness
/// requires positive age past the ttl, and a clock that ran backwards
/// can only delay a break, never cause one.
pub(crate) fn heartbeat_age_ms(now: u64, heartbeat_ms: u64) -> u64 {
    now.saturating_sub(heartbeat_ms)
}

/// A holder id unique across processes and across services within one
/// process: pid, a coarse wall-clock nanosecond sample, and a
/// process-local sequence number.
pub(crate) fn new_holder_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.subsec_nanos() as u64);
    format!("{}-{nanos:x}-{:x}", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed))
}

fn read_lease(faults: &dyn FaultPlane, dir: &Path) -> ReadLease {
    if faults.before("lease.read").is_err() {
        return ReadLease::Missing;
    }
    let text = match fs::read_to_string(dir.join(LEASE)) {
        Ok(text) => text,
        Err(_) => return ReadLease::Missing,
    };
    match parse_lease(&text) {
        Some(info) => ReadLease::Held(info),
        None => ReadLease::Corrupt,
    }
}

fn parse_lease(text: &str) -> Option<LeaseInfo> {
    let value = json::parse(text).ok()?;
    if value.get("format")?.as_str()? != "jury-lease" {
        return None;
    }
    Some(LeaseInfo {
        holder: value.get("holder")?.as_str()?.to_string(),
        epoch: u64::from_str_radix(value.get("epoch")?.as_str()?, 16).ok()?,
        heartbeat_ms: u64::from_str_radix(value.get("heartbeat_ms")?.as_str()?, 16).ok()?,
    })
}

fn encode_lease(holder: &str, epoch: u64) -> String {
    json::to_string(&Value::object([
        ("format", Value::String("jury-lease".to_string())),
        ("holder", Value::String(holder.to_string())),
        ("epoch", Value::String(format!("{epoch:016x}"))),
        ("heartbeat_ms", Value::String(format!("{:016x}", now_ms()))),
    ]))
}

/// Writes the lease content to a unique temp file, fsynced. The temp
/// name embeds the holder id so concurrent candidates never collide.
fn write_lease_tmp(
    faults: &dyn FaultPlane,
    dir: &Path,
    holder: &str,
    epoch: u64,
) -> io::Result<std::path::PathBuf> {
    faults.before("lease.tmp")?;
    let tmp = dir.join(format!("{LEASE}.{holder}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(encode_lease(holder, epoch).as_bytes())?;
    file.sync_all()?;
    Ok(tmp)
}

/// Atomic create: `hard_link` the temp to the lease name — fails if the
/// lease exists, so exactly one concurrent candidate wins. Returns
/// `Ok(true)` on win, `Ok(false)` if the name was taken.
fn create_lease(faults: &dyn FaultPlane, dir: &Path, holder: &str, epoch: u64) -> io::Result<bool> {
    let tmp = write_lease_tmp(faults, dir, holder, epoch)?;
    faults.before("lease.link").inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    let won = match fs::hard_link(&tmp, dir.join(LEASE)) {
        Ok(()) => true,
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => false,
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    };
    let _ = fs::remove_file(&tmp);
    if won {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(won)
}

/// Heartbeat refresh for a lease we already hold: temp + atomic rename
/// over the lease name.
fn refresh_lease(faults: &dyn FaultPlane, dir: &Path, holder: &str, epoch: u64) -> io::Result<()> {
    let tmp = write_lease_tmp(faults, dir, holder, epoch)?;
    faults.before("lease.refresh").inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    fs::rename(&tmp, dir.join(LEASE))?;
    Ok(())
}

/// Atomically steals a stale/corrupt lease file out of the way so that
/// exactly one concurrent breaker proceeds to [`create_lease`]. The
/// rename source disappears for every other breaker.
///
/// The steal is **verified**: between this breaker's read and its
/// rename, a concurrent breaker may already have broken the stale
/// lease and created a fresh one of its own — a blind rename would
/// evict that live holder and let two writers acquire the same epoch.
/// So the stolen bytes are compared against `expected` (the stale
/// [`LeaseInfo`] this breaker decided to break; `None` for a corrupt,
/// unparseable lease). A mismatch restores the stolen file and
/// reports the steal lost; the caller re-reads and backs off.
fn steal_lease(
    faults: &dyn FaultPlane,
    dir: &Path,
    holder: &str,
    expected: Option<&LeaseInfo>,
) -> bool {
    if faults.before("lease.steal").is_err() {
        return false;
    }
    let stolen = dir.join(format!("{LEASE}.{holder}.stolen"));
    if fs::rename(dir.join(LEASE), &stolen).is_err() {
        return false;
    }
    let parsed = fs::read_to_string(&stolen).ok().and_then(|text| parse_lease(&text));
    let matches = match (expected, &parsed) {
        (Some(expected), Some(stolen)) => stolen == expected,
        // Expected corrupt bytes: any unparseable steal qualifies.
        (None, None) => true,
        _ => false,
    };
    if matches {
        let _ = fs::remove_file(&stolen);
        true
    } else {
        // Stole a rival's fresh lease — put it back. Should a third
        // candidate have created yet another lease in this window, the
        // rename overwrites it and that candidate's commit is refused
        // by the fence; safety never depends on winning here.
        let _ = fs::rename(&stolen, dir.join(LEASE));
        false
    }
}

/// Acquires (or re-validates, or breaks) the writer lease for `dir`.
///
/// * `believed` — the epoch this writer holds from a previous acquire,
///   if any. A believing writer that finds a foreign or missing lease
///   is **fenced**, never queued: someone broke the lease, and this
///   writer's state may be behind.
/// * `floor` — the highest epoch committed in any on-disk manifest; a
///   broken lease's replacement epoch always clears it, so epochs can
///   never run backwards past a committed generation.
///
/// Returns the epoch to commit under.
pub(crate) fn acquire(
    faults: &dyn FaultPlane,
    dir: &Path,
    holder: &str,
    believed: Option<u64>,
    ttl: Duration,
    floor: u64,
) -> Result<u64, SnapshotError> {
    let ttl_ms = ttl.as_millis() as u64;
    for _ in 0..3 {
        match read_lease(faults, dir) {
            ReadLease::Missing => {
                if let Some(ours) = believed {
                    if floor > ours {
                        return Err(SnapshotError::Fenced { ours, winner: floor });
                    }
                    // Our lease file vanished but no newer epoch ever
                    // committed — re-create at our epoch.
                    if create_lease(faults, dir, holder, ours).map_err(SnapshotError::Io)? {
                        return Ok(ours);
                    }
                } else {
                    let epoch = floor + 1;
                    if create_lease(faults, dir, holder, epoch).map_err(SnapshotError::Io)? {
                        return Ok(epoch);
                    }
                }
                // Lost the create race — loop to observe the winner.
            }
            ReadLease::Held(info) if info.holder == holder => {
                let epoch = info.epoch.max(believed.unwrap_or(0));
                refresh_lease(faults, dir, holder, epoch).map_err(SnapshotError::Io)?;
                return Ok(epoch);
            }
            ReadLease::Held(info) => {
                if let Some(ours) = believed {
                    return Err(SnapshotError::Fenced { ours, winner: info.epoch });
                }
                // Clamped age: a future-dated heartbeat (backwards
                // clock step) reads as 0 and can never break a lease.
                let age_ms = heartbeat_age_ms(now_ms(), info.heartbeat_ms);
                if age_ms <= ttl_ms {
                    return Err(SnapshotError::LeaseHeld { holder: info.holder, age_ms });
                }
                // Stale: break by epoch bump. Verified steal-then-
                // create keeps concurrent breakers down to one winner.
                if steal_lease(faults, dir, holder, Some(&info)) {
                    let epoch = info.epoch.max(floor) + 1;
                    if create_lease(faults, dir, holder, epoch).map_err(SnapshotError::Io)? {
                        return Ok(epoch);
                    }
                }
            }
            ReadLease::Corrupt => {
                if let Some(ours) = believed {
                    return Err(SnapshotError::Fenced { ours, winner: 0 });
                }
                if steal_lease(faults, dir, holder, None) {
                    let epoch = floor + 1;
                    if create_lease(faults, dir, holder, epoch).map_err(SnapshotError::Io)? {
                        return Ok(epoch);
                    }
                }
            }
        }
    }
    // Contended past every retry: report whoever holds it now.
    match read_lease(faults, dir) {
        ReadLease::Held(info) => Err(SnapshotError::LeaseHeld {
            age_ms: heartbeat_age_ms(now_ms(), info.heartbeat_ms),
            holder: info.holder,
        }),
        _ => Err(SnapshotError::LeaseHeld { holder: "<contended>".to_string(), age_ms: 0 }),
    }
}

/// The commit-time fence: re-reads the lease immediately before the
/// manifest rename. Only a lease naming exactly this holder and epoch
/// permits the commit — anything else (foreign holder, bumped epoch,
/// vanished or corrupt file) refuses it. `winner: 0` means the winning
/// epoch could not be determined.
pub(crate) fn verify(
    faults: &dyn FaultPlane,
    dir: &Path,
    holder: &str,
    epoch: u64,
) -> Result<(), SnapshotError> {
    match read_lease(faults, dir) {
        ReadLease::Held(info) if info.holder == holder && info.epoch == epoch => Ok(()),
        ReadLease::Held(info) => Err(SnapshotError::Fenced { ours: epoch, winner: info.epoch }),
        ReadLease::Missing | ReadLease::Corrupt => {
            Err(SnapshotError::Fenced { ours: epoch, winner: 0 })
        }
    }
}

/// Releases the lease if (and only if) this holder still owns it —
/// graceful drain. A lease someone else broke is left alone.
pub(crate) fn release(faults: &dyn FaultPlane, dir: &Path, holder: &str) -> io::Result<()> {
    if let ReadLease::Held(info) = read_lease(faults, dir) {
        if info.holder == holder {
            faults.before("lease.unlink")?;
            fs::remove_file(dir.join(LEASE))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::fault::NoFaults;
    use super::*;

    #[test]
    fn mismatched_steal_restores_the_live_lease() {
        let dir = std::env::temp_dir().join(format!("jury-lease-steal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        // The breaker read this stale lease and decided to break it…
        let stale = LeaseInfo { holder: "dead".to_string(), epoch: 3, heartbeat_ms: 1_000 };
        // …but a rival broke it first and re-created the lease fresh.
        fs::write(dir.join(LEASE), encode_lease("rival", 4)).unwrap();

        assert!(
            !steal_lease(&NoFaults, &dir, "breaker", Some(&stale)),
            "stealing a fresh rival lease must be reported lost"
        );
        assert!(
            matches!(read_lease(&NoFaults, &dir), ReadLease::Held(info) if info.holder == "rival"),
            "the rival's lease is restored intact"
        );

        // A steal that finds exactly the stale bytes it expected wins.
        let heartbeat_ms = 1_000;
        fs::write(
            dir.join(LEASE),
            json::to_string(&Value::object([
                ("format", Value::String("jury-lease".to_string())),
                ("holder", Value::String("dead".to_string())),
                ("epoch", Value::String(format!("{:016x}", 3))),
                ("heartbeat_ms", Value::String(format!("{heartbeat_ms:016x}"))),
            ])),
        )
        .unwrap();
        assert!(steal_lease(&NoFaults, &dir, "breaker", Some(&stale)));
        assert!(matches!(read_lease(&NoFaults, &dir), ReadLease::Missing));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_age_clamps_backwards_clock_steps_to_zero() {
        assert_eq!(heartbeat_age_ms(1_000, 400), 600);
        assert_eq!(heartbeat_age_ms(1_000, 1_000), 0);
        // A heartbeat from the future — the clock ran backwards since
        // the holder stamped it — must read live, not underflow into
        // an enormous age that breaks the lease.
        assert_eq!(heartbeat_age_ms(1_000, u64::MAX), 0);
    }
}
