//! The content-addressed warm-artifact store.
//!
//! At micro-blog scale the same crowd backs many logical pools —
//! per-tenant, per-topic and per-region registries over one juror
//! population — so a [`JuryService`](crate::JuryService) would otherwise
//! re-derive an identical ε-sorted order, greedy order, pmf ladder,
//! budget staircase and AltrM answer once *per pool*. [`ArtifactStore`]
//! interns those artifacts by **content**: every registered pool keeps a
//! running [`PoolFingerprint`] (a commutative multiset hash of its
//! jurors' solver-relevant content, updated in `O(1)` per mutation), and
//! warm artifacts live in [`ArtifactSet`]s keyed by
//! `(fingerprint, layout, solver config)` so N equal pools hold N `Arc`
//! clones of **one** artifact set, built once.
//!
//! ## Verification, identity and permutation
//!
//! The fingerprint only *addresses* an entry; a candidate pool is
//! admitted by content comparison (hash collisions can cost a missed
//! share, never a wrong answer). Two grades of match exist:
//!
//! * **Identical sequence** — the pool's juror content equals the
//!   entry's founding sequence position for position. Everything is
//!   position-space-compatible and shared outright: orders, ladder,
//!   profile, the Arc'd AltrM answer, and the (lock-guarded, lazily
//!   growing) budget staircase.
//! * **Permuted** — same multiset, different arrangement. Rank-space
//!   artifacts (sorted ε values, pmf ladder, JER profile, the AltrM
//!   answer's JER/cost/stats) are still shared pointer-equal; the
//!   position-space orders are derived by translating the founding
//!   orders through the matching permutation σ (`O(N)`, sort-free), and
//!   the budget staircase stays private (its recorded selections are
//!   position-space). Permuted sharing requires the entry to be
//!   **tie-free** — no two jurors with equal ε bits but different cost
//!   bits — because only then is every solver tie-break class a single
//!   content class, making the translated orders (and therefore every
//!   downstream float evaluation) bit-identical to the pool's own
//!   private build. Tie-violating entries simply refuse permuted
//!   attachment.
//!
//! The matching permutation maps the *k*-th occurrence (in founding
//! position order) of each `(ε bits, cost bits)` content class to the
//! *k*-th occurrence in the candidate's position order, which preserves
//! the position-ascending tie-break of both comparators across the
//! translation — see [`ArtifactSet::match_pool`].
//!
//! ## Copy-on-write detach, re-join, eviction
//!
//! Mutations never write through a shared entry: the owning pool
//! *detaches* first — a sole holder takes the artifacts back zero-copy
//! ([`ArtifactSet::into_cache`] via `Arc::try_unwrap`), a pool with
//! siblings clones what the repair will touch
//! ([`ArtifactSet::cache_clone`]) — and the existing in-place repairs
//! then run on the privately-owned copy. The fingerprint is updated by
//! one commutative-hash subtraction/addition (no rescan); if the
//! post-mutation multiset already has an entry the pool **re-joins** it,
//! otherwise (when it detached from an entry with surviving siblings)
//! the repaired artifacts are published under the new key for the
//! siblings to follow. Entries no pool holds any more are evicted
//! ([`ArtifactStore::evict_if_orphaned`]).

use crate::{AltrAnswer, PoolCache};
use jury_core::altr::JerProfile;
use jury_core::fingerprint::{juror_content, FingerprintKey};
use jury_core::juror::Juror;
use jury_core::paym::Staircase;
use jury_core::problem::Selection;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Which serving layout an artifact set was built for. Keyed separately
/// because flat and sharded pools derive (and repair) different artifact
/// shapes even over identical content; only the solver-relevant shard
/// count enters the key ([`ShardConfig::degenerate_percent`] and
/// `threshold` never change an artifact's value).
///
/// [`ShardConfig::degenerate_percent`]: crate::ShardConfig::degenerate_percent
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum LayoutKey {
    /// One cache over the whole pool.
    Flat,
    /// K shards merging into global orders.
    Sharded {
        /// Shard count K.
        shards: usize,
    },
}

/// The interning key of one artifact set: content fingerprint + layout +
/// solver-relevant configuration bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct StoreKey {
    pub fp: FingerprintKey,
    pub layout: LayoutKey,
    pub config: u64,
}

/// How a candidate pool relates to an entry's founding sequence.
#[derive(Debug, Clone)]
pub(crate) enum Attach {
    /// Content equal position for position: full position-space share.
    Identical,
    /// Same multiset, different arrangement: `sigma[founding_pos]` is the
    /// candidate position holding that juror content.
    Permuted(Vec<usize>),
}

/// One pool-content snapshot's warm artifacts, shared by every pool
/// whose jurors match. Orders and sorted rates are immutable once
/// published; the lazily-derived artifacts fill exactly once
/// ([`OnceLock`]) and the budget staircase grows monotonically behind a
/// read-mostly lock (batch workers replay steps read-only; recording
/// happens under the service's `&mut self`).
#[derive(Debug)]
pub(crate) struct ArtifactSet {
    /// Founding `(ε bits, cost bits)` per pool position — the content
    /// identity candidates are verified against.
    seq: Vec<(u64, u64)>,
    /// Whether no two jurors share ε bits with different cost bits — the
    /// precondition for cross-permutation sharing (see module docs).
    tie_free: bool,
    /// Positions ascending by ε (founding position space).
    pub eps_order: Arc<Vec<usize>>,
    /// ε values aligned with `eps_order` — rank space, multiset-determined.
    pub eps_sorted: Arc<Vec<f64>>,
    /// PayALG's greedy visit order (founding position space).
    pub greedy_order: Arc<Vec<usize>>,
    /// The solved AltrM answer (founding position space; JER/cost/stats
    /// are rank-space and shared bit-identically even across
    /// permutations).
    pub altr: OnceLock<AltrAnswer>,
    /// The odd-size JER profile — rank space.
    pub profile: OnceLock<Arc<JerProfile>>,
    /// Prefix-pmf checkpoint ladder over `eps_sorted` — rank space
    /// (flat layouts only; sharded layouts intern `shard_layer`).
    pub ladder: OnceLock<crate::ladder::PmfLadder>,
    /// A sharded pool's per-shard warm layer (owner assignment plus
    /// every shard's runs and ladder), filled by the first fully-warm
    /// holder. Adoption is partition-verified: a pool whose owner
    /// vector differs (equal content, different mutation history)
    /// simply builds its shards privately. Flat layouts leave this
    /// empty.
    pub shard_layer: OnceLock<crate::shard::ShardLayer>,
    /// The PayM budget staircase over `greedy_order` (founding position
    /// space), recorded lazily per budget.
    pub staircase: RwLock<Staircase>,
    /// Monotone mutation counter: bumped whenever a lazy slot fills or
    /// the staircase takes a write lock. The incremental snapshot
    /// writer compares it against the version it last persisted to
    /// decide cleanness without re-encoding; over-counting (a bump
    /// that changed nothing) is harmless — the writer's
    /// encode-and-compare fallback still detects byte-identical
    /// entries — but a *missed* bump would only cost warmth, never
    /// correctness (persisted artifacts are deterministic functions of
    /// pool content).
    version: AtomicU64,
}

impl ArtifactSet {
    /// Interns a privately-built flat cache (zero-copy moves).
    pub(crate) fn from_cache(cache: PoolCache, jurors: &[Juror]) -> Self {
        let tie_free = tie_free(jurors, &cache.eps_order);
        Self {
            seq: jurors.iter().map(juror_content).collect(),
            tie_free,
            eps_order: Arc::new(cache.eps_order),
            eps_sorted: Arc::new(cache.eps_sorted),
            greedy_order: Arc::new(cache.greedy_order),
            altr: once_from(cache.altr),
            profile: once_from(cache.profile.map(Arc::new)),
            ladder: once_from(cache.ladder),
            shard_layer: OnceLock::new(),
            staircase: RwLock::new(cache.staircase),
            version: AtomicU64::new(0),
        }
    }

    /// Interns a sharded pool's merged-layer artifacts. The per-shard
    /// caches stay private (they repair in place per pool); the global
    /// ladder slot stays empty — sharded probes merge per-shard pmfs.
    pub(crate) fn from_merged(
        eps_order: Arc<Vec<usize>>,
        greedy_order: Arc<Vec<usize>>,
        jurors: &[Juror],
    ) -> Self {
        let eps_sorted: Vec<f64> = eps_order.iter().map(|&i| jurors[i].epsilon()).collect();
        let tie_free = tie_free(jurors, &eps_order);
        Self {
            seq: jurors.iter().map(juror_content).collect(),
            tie_free,
            eps_order,
            eps_sorted: Arc::new(eps_sorted),
            greedy_order,
            altr: OnceLock::new(),
            profile: OnceLock::new(),
            ladder: OnceLock::new(),
            shard_layer: OnceLock::new(),
            staircase: RwLock::new(Staircase::new()),
            version: AtomicU64::new(0),
        }
    }

    /// The founding `(ε bits, cost bits)` sequence — the content identity
    /// the snapshot codec persists and restore re-verifies.
    pub(crate) fn seq(&self) -> &[(u64, u64)] {
        &self.seq
    }

    /// Reassembles an entry from verified snapshot parts. `tie_free` is
    /// *recomputed* from the sequence, never trusted from disk — it gates
    /// permuted sharing, where a wrong `true` would break bit-identity.
    /// Content/shape validation (the permutation and binding checks) is
    /// the snapshot loader's job; this only rebuilds the struct.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        seq: Vec<(u64, u64)>,
        eps_order: Vec<usize>,
        eps_sorted: Vec<f64>,
        greedy_order: Vec<usize>,
        altr: Option<AltrAnswer>,
        profile: Option<Arc<JerProfile>>,
        ladder: Option<crate::ladder::PmfLadder>,
        shard_layer: Option<crate::shard::ShardLayer>,
        staircase: Staircase,
    ) -> Self {
        let tie_free = eps_order.windows(2).all(|w| {
            let (a, b) = (seq[w[0]], seq[w[1]]);
            a.0 != b.0 || a.1 == b.1
        });
        Self {
            seq,
            tie_free,
            eps_order: Arc::new(eps_order),
            eps_sorted: Arc::new(eps_sorted),
            greedy_order: Arc::new(greedy_order),
            altr: once_from(altr),
            profile: once_from(profile),
            ladder: once_from(ladder),
            shard_layer: once_from(shard_layer),
            staircase: RwLock::new(staircase),
            version: AtomicU64::new(0),
        }
    }

    /// Classifies `jurors` against the founding sequence: identical,
    /// permuted-but-equal (tie-free entries only), or no match (content
    /// differs — a fingerprint collision, which only costs the share).
    pub(crate) fn match_pool(&self, jurors: &[Juror]) -> Option<Attach> {
        if jurors.len() != self.seq.len() {
            return None;
        }
        if jurors.iter().zip(&self.seq).all(|(j, &fc)| juror_content(j) == fc) {
            return Some(Attach::Identical);
        }
        if !self.tie_free {
            return None;
        }
        // k-th-occurrence matching per content class, both sides walked
        // in ascending position order: preserves each comparator's
        // position tie-break across the translation.
        let mut ours: HashMap<(u64, u64), VecDeque<usize>> = HashMap::with_capacity(jurors.len());
        for (pos, juror) in jurors.iter().enumerate() {
            ours.entry(juror_content(juror)).or_default().push_back(pos);
        }
        let mut sigma = vec![0usize; self.seq.len()];
        for (founding_pos, content) in self.seq.iter().enumerate() {
            match ours.get_mut(content).and_then(VecDeque::pop_front) {
                Some(pos) => sigma[founding_pos] = pos,
                None => return None,
            }
        }
        Some(Attach::Permuted(sigma))
    }

    /// Takes the artifacts back as a private flat cache, zero-copy and
    /// lossless — the sole-owner detach path (whose follow-up repair
    /// clears the AltrM answer and staircase itself) and the
    /// occupied-key fallback of [`ArtifactStore::publish`] (which must
    /// lose nothing).
    pub(crate) fn into_cache(self) -> PoolCache {
        PoolCache {
            eps_order: Arc::unwrap_or_clone(self.eps_order),
            eps_sorted: Arc::unwrap_or_clone(self.eps_sorted),
            greedy_order: Arc::unwrap_or_clone(self.greedy_order),
            altr: self.altr.into_inner(),
            profile: self.profile.into_inner().map(Arc::unwrap_or_clone),
            ladder: self.ladder.into_inner(),
            staircase: self
                .staircase
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    /// Clones a private flat cache out of a still-shared entry — the
    /// with-siblings detach path. Only what repairs touch is copied.
    pub(crate) fn cache_clone(&self) -> PoolCache {
        PoolCache {
            eps_order: (*self.eps_order).clone(),
            eps_sorted: (*self.eps_sorted).clone(),
            greedy_order: (*self.greedy_order).clone(),
            altr: None,
            profile: self.profile.get().map(|p| (**p).clone()),
            ladder: self.ladder.get().cloned(),
            staircase: Staircase::new(),
        }
    }

    /// Translates a permuted attacher's AltrM selection back into
    /// founding position space (inverse σ; the cost re-summed in
    /// ascending founding order from the founding sequence's cost bits)
    /// — so one bound-pruned solve serves every later attacher. The
    /// tie-free precondition that admitted the permuted attacher makes
    /// this bit-identical to the solve a founding-sequence pool would
    /// run: same ε value sequence (JER/stats bits), same cost multiset
    /// summed in the same ascending-member order.
    pub(crate) fn untranslate_selection(&self, ours: &Selection, sigma: &[usize]) -> Selection {
        let mut inverse = vec![0usize; sigma.len()];
        for (founding, &pos) in sigma.iter().enumerate() {
            inverse[pos] = founding;
        }
        let mut members: Vec<usize> = ours.members.iter().map(|&m| inverse[m]).collect();
        members.sort_unstable();
        let total_cost = members.iter().map(|&f| f64::from_bits(self.seq[f].1)).sum();
        Selection { members, jer: ours.jer, total_cost, stats: ours.stats }
    }

    /// A copy for an independent store (see [`ArtifactStore::deep_clone`]):
    /// the immutable innards still share memory through their inner
    /// `Arc`s, while the lazy cells and the staircase snapshot their
    /// current state into fresh containers.
    fn snapshot(&self) -> Self {
        Self {
            seq: self.seq.clone(),
            tie_free: self.tie_free,
            eps_order: self.eps_order.clone(),
            eps_sorted: self.eps_sorted.clone(),
            greedy_order: self.greedy_order.clone(),
            altr: once_from(self.altr.get().cloned()),
            profile: once_from(self.profile.get().cloned()),
            ladder: once_from(self.ladder.get().cloned()),
            shard_layer: once_from(self.shard_layer.get().cloned()),
            staircase: RwLock::new(self.staircase_read().clone()),
            version: AtomicU64::new(self.version.load(Ordering::Acquire)),
        }
    }

    /// Read access to the (possibly poisoned — recover, steps are
    /// append-only) staircase.
    pub(crate) fn staircase_read(&self) -> std::sync::RwLockReadGuard<'_, Staircase> {
        self.staircase.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Write access for recording a step. Conservatively counts as a
    /// mutation (see [`ArtifactSet::note_mutation`]) — a write lock
    /// that records nothing is caught by the snapshot writer's
    /// encode-and-compare fallback.
    pub(crate) fn staircase_write(&self) -> std::sync::RwLockWriteGuard<'_, Staircase> {
        self.note_mutation();
        self.staircase.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The current mutation version (see the `version` field).
    pub(crate) fn mutation_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Marks this entry dirty for the next incremental snapshot.
    pub(crate) fn note_mutation(&self) {
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Fills the AltrM answer slot (first writer wins) and marks the
    /// entry dirty when it actually filled.
    pub(crate) fn set_altr(&self, answer: AltrAnswer) {
        if self.altr.set(answer).is_ok() {
            self.note_mutation();
        }
    }

    /// [`OnceLock::get_or_init`] over the AltrM slot, dirty-tracked.
    pub(crate) fn altr_or_init(&self, init: impl FnOnce() -> AltrAnswer) -> &AltrAnswer {
        if let Some(answer) = self.altr.get() {
            return answer;
        }
        let answer = self.altr.get_or_init(init);
        self.note_mutation();
        answer
    }

    /// Fills the JER-profile slot, dirty-tracked.
    pub(crate) fn set_profile(&self, profile: Arc<JerProfile>) {
        if self.profile.set(profile).is_ok() {
            self.note_mutation();
        }
    }

    /// [`OnceLock::get_or_init`] over the profile slot, dirty-tracked.
    pub(crate) fn profile_or_init(
        &self,
        init: impl FnOnce() -> Arc<JerProfile>,
    ) -> &Arc<JerProfile> {
        if let Some(profile) = self.profile.get() {
            return profile;
        }
        let profile = self.profile.get_or_init(init);
        self.note_mutation();
        profile
    }

    /// Fills the pmf-ladder slot, dirty-tracked.
    pub(crate) fn set_ladder(&self, ladder: crate::ladder::PmfLadder) {
        if self.ladder.set(ladder).is_ok() {
            self.note_mutation();
        }
    }

    /// [`OnceLock::get_or_init`] over the ladder slot, dirty-tracked.
    pub(crate) fn ladder_or_init(
        &self,
        init: impl FnOnce() -> crate::ladder::PmfLadder,
    ) -> &crate::ladder::PmfLadder {
        if let Some(ladder) = self.ladder.get() {
            return ladder;
        }
        let ladder = self.ladder.get_or_init(init);
        self.note_mutation();
        ladder
    }

    /// Fills the shard-layer slot, dirty-tracked.
    pub(crate) fn set_shard_layer(&self, layer: crate::shard::ShardLayer) {
        if self.shard_layer.set(layer).is_ok() {
            self.note_mutation();
        }
    }
}

/// A `OnceLock` pre-filled from an optional value.
fn once_from<T>(value: Option<T>) -> OnceLock<T> {
    let lock = OnceLock::new();
    if let Some(v) = value {
        let _ = lock.set(v);
    }
    lock
}

/// Whether the ε-sorted run contains no equal-ε, different-cost pair
/// (equal ε values are adjacent in the run).
fn tie_free(jurors: &[Juror], eps_order: &[usize]) -> bool {
    eps_order.windows(2).all(|w| {
        let (a, b) = (&jurors[w[0]], &jurors[w[1]]);
        a.epsilon().to_bits() != b.epsilon().to_bits() || a.cost.to_bits() == b.cost.to_bits()
    })
}

/// One pool's attachment to a store entry.
#[derive(Debug, Clone)]
pub(crate) struct StoreLink {
    pub key: StoreKey,
    pub set: Arc<ArtifactSet>,
}

/// A permuted attacher's position-space view of a shared entry: the
/// founding orders translated through σ once at attach (`O(N)`,
/// sort-free), plus the two artifacts that cannot be shared across
/// permutations (the position-space AltrM selection, translated lazily
/// from the shared answer, and a private budget staircase).
#[derive(Debug, Clone)]
pub(crate) struct PermutedView {
    /// `sigma[founding_pos]` = this pool's position for that content.
    pub sigma: Vec<usize>,
    /// σ-translated ε order — bit-identical to this pool's own sort.
    pub eps_order: Vec<usize>,
    /// σ-translated greedy order — bit-identical to this pool's own sort.
    pub greedy_order: Vec<usize>,
    /// Position-space AltrM answer (JER/cost/stats bits shared with the
    /// entry's; members σ-translated).
    pub altr: Option<AltrAnswer>,
    /// Private staircase (recorded selections are position-space).
    pub staircase: Staircase,
}

impl PermutedView {
    pub(crate) fn new(set: &ArtifactSet, sigma: Vec<usize>) -> Self {
        Self {
            eps_order: translate_order(&set.eps_order, &sigma),
            greedy_order: translate_order(&set.greedy_order, &sigma),
            altr: None,
            staircase: Staircase::new(),
            sigma,
        }
    }
}

/// Maps a founding-position order into the attacher's position space.
pub(crate) fn translate_order(order: &[usize], sigma: &[usize]) -> Vec<usize> {
    order.iter().map(|&p| sigma[p]).collect()
}

/// Translates a founding-position selection into the attacher's position
/// space: members are σ-mapped and re-sorted ascending, the cost is
/// re-summed in that ascending order (exactly what the attacher's
/// private solve would do), JER bits and stats are shared verbatim (they
/// are functions of the ε value sequence, which tie-free permutation
/// equality preserves).
pub(crate) fn translate_selection(
    founding: &Selection,
    sigma: &[usize],
    jurors: &[Juror],
) -> Selection {
    let mut members: Vec<usize> = founding.members.iter().map(|&m| sigma[m]).collect();
    members.sort_unstable();
    let total_cost = members.iter().map(|&i| jurors[i].cost).sum();
    Selection { members, jer: founding.jer, total_cost, stats: founding.stats }
}

/// The per-service interning map. Entries are kept alive by attached
/// pools' `Arc`s; [`ArtifactStore::evict_if_orphaned`] reaps entries
/// only the map still holds. Deliberately **not** `Clone`: a shared-map
/// copy would break the exact strong-count accounting the eviction
/// logic relies on — cloning services goes through
/// [`ArtifactStore::deep_clone`].
#[derive(Debug, Default)]
pub(crate) struct ArtifactStore {
    entries: HashMap<StoreKey, Arc<ArtifactSet>>,
    /// When each currently-orphaned entry lost its last holder — the TTL
    /// eviction policy's stamps ([`ArtifactStore::stamp_if_orphaned`]).
    /// Only populated when the policy is on; a stamp is invalidated (and
    /// removed by the next sweep) the moment a pool re-attaches.
    orphans: HashMap<StoreKey, Instant>,
}

impl ArtifactStore {
    /// An independent copy for a cloned service: every entry is
    /// re-wrapped in a fresh `Arc` (the immutable innards still share
    /// memory) so the clone's strong counts track only *its* pools.
    /// Returns the new store plus the old-pointer → new-handle mapping
    /// the caller uses to re-link attached pools.
    pub(crate) fn deep_clone(&self) -> (Self, HashMap<*const ArtifactSet, Arc<ArtifactSet>>) {
        let mut remap = HashMap::with_capacity(self.entries.len());
        let mut entries = HashMap::with_capacity(self.entries.len());
        for (key, arc) in &self.entries {
            let copy = Arc::new(arc.snapshot());
            remap.insert(Arc::as_ptr(arc), copy.clone());
            entries.insert(*key, copy);
        }
        (Self { entries, orphans: self.orphans.clone() }, remap)
    }
    /// The entry at `key`, if interned.
    pub(crate) fn get(&self, key: &StoreKey) -> Option<Arc<ArtifactSet>> {
        self.entries.get(key).cloned()
    }

    /// Whether an entry lives at `key` (an occupied key that refused an
    /// attach keeps its incumbent — see [`ArtifactStore::publish`]).
    pub(crate) fn contains(&self, key: &StoreKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Interns `set` under `key` iff the key is vacant, returning the
    /// shared handle. An occupied key (same fingerprint but an
    /// arrangement the incumbent refused to admit, or colliding
    /// content) keeps its incumbent — replacing it would strand the
    /// incumbent's attached pools and let alternating arrangements
    /// thrash the entry — and the set is handed back untouched so the
    /// builder stays private without losing anything.
    pub(crate) fn publish(
        &mut self,
        key: StoreKey,
        set: ArtifactSet,
    ) -> Result<Arc<ArtifactSet>, Box<ArtifactSet>> {
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => Err(Box::new(set)),
            std::collections::hash_map::Entry::Vacant(slot) => {
                Ok(slot.insert(Arc::new(set)).clone())
            }
        }
    }

    /// Removes the entry at `key` when no pool holds it any more (the
    /// map's own `Arc` is the only survivor). Called after detaches and
    /// pool removals; `Arc::strong_count` is exact here because the
    /// registry is `&mut` — no worker threads hold transient clones.
    pub(crate) fn evict_if_orphaned(&mut self, key: &StoreKey) {
        if self.entries.get(key).is_some_and(|arc| Arc::strong_count(arc) == 1) {
            self.entries.remove(key);
            self.orphans.remove(key);
        }
    }

    /// The TTL policy's replacement for [`ArtifactStore::evict_if_orphaned`]:
    /// an entry no pool holds is *stamped* with the current time instead
    /// of being removed, so returning content can re-join it warm until
    /// [`ArtifactStore::sweep_ttl`] reaps it.
    pub(crate) fn stamp_if_orphaned(&mut self, key: &StoreKey) {
        if self.entries.get(key).is_some_and(|arc| Arc::strong_count(arc) == 1) {
            self.orphans.entry(*key).or_insert_with(Instant::now);
        }
    }

    /// Routes to stamping (TTL policy) or immediate eviction (refcount
    /// policy) — every detach/removal call site picks by configuration.
    pub(crate) fn release(&mut self, key: &StoreKey, ttl_enabled: bool) {
        if ttl_enabled {
            self.stamp_if_orphaned(key);
        } else {
            self.evict_if_orphaned(key);
        }
    }

    /// Reaps entries that have been orphaned for at least `ttl`,
    /// returning how many were evicted. Stamps whose entry regained a
    /// holder since (a re-join or fresh attach) are dropped without
    /// eviction — the strong count is re-checked here, never trusted
    /// from stamp time.
    pub(crate) fn sweep_ttl(&mut self, ttl: Duration) -> usize {
        let mut evicted = 0usize;
        let entries = &mut self.entries;
        self.orphans.retain(|key, stamped| {
            let still_orphaned = entries.get(key).is_some_and(|arc| Arc::strong_count(arc) == 1);
            if !still_orphaned {
                return false; // re-attached (or already gone): unstamp.
            }
            if stamped.elapsed() >= ttl {
                entries.remove(key);
                evicted += 1;
                return false;
            }
            true
        });
        evicted
    }

    /// Removes and returns the entry at `key` iff exactly one pool holds
    /// it besides the map — the sole-owner detach fast path.
    pub(crate) fn take_if_sole(&mut self, key: &StoreKey, holder: &Arc<ArtifactSet>) -> bool {
        if self
            .entries
            .get(key)
            .is_some_and(|arc| Arc::ptr_eq(arc, holder) && Arc::strong_count(arc) == 2)
        {
            self.entries.remove(key);
            return true;
        }
        false
    }

    /// Number of interned entries (observability / tests).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Every interned entry, for the snapshot writer.
    pub(crate) fn iter_entries(&self) -> impl Iterator<Item = (&StoreKey, &Arc<ArtifactSet>)> {
        self.entries.iter()
    }
}
