//! Crash-safe snapshot / verified-restore of the warm-artifact store.
//!
//! A [`JuryService`](crate::JuryService) rebuilt from a process restart
//! pays the full cold-build cost — `O(N log N)` sorts, `O(N·L)` pmf
//! ladders and bound-pruned AltrM solves — per distinct pool content.
//! This module persists the content-addressed store itself: one binary
//! file per interned [`ArtifactSet`], keyed exactly like the in-memory
//! entry by `(fingerprint, layout, solver-config bits)`, plus a JSON
//! manifest naming them. A restarted service pointed at the directory
//! re-attaches pools to snapshot entries **by content** at registration
//! time and answers its first queries warm.
//!
//! ## Crash safety
//!
//! Every file (entries first, manifest last) is written to a temp name,
//! `fsync`ed, then atomically renamed; the directory is fsynced after
//! each rename. A crash mid-snapshot therefore leaves either the old
//! manifest (pointing at the old, still-intact entry files — entry
//! names are content-keyed, and rewrites of the *same* key are
//! atomic-replace) or the new manifest over fully-written new files.
//! There is no window in which a reader can observe a half-written
//! snapshot through the manifest.
//!
//! ## Trust model: verify everything, degrade to rebuild
//!
//! Snapshot bytes are *untrusted input*, exactly like wire data. The
//! manifest is only a catalog; every claim it makes is re-verified
//! against file contents, and every file section carries its own
//! checksum. Beyond integrity, restore re-establishes **semantic**
//! bindings against the live registering pool:
//!
//! * the embedded key must equal the requested key, and the decoded
//!   founding sequence must admit the registering pool via
//!   [`ArtifactSet::match_pool`] (content comparison, never hash trust);
//! * orders must be permutations; sorted ε values must be
//!   non-decreasing and bit-equal to the sequence through the ε order;
//! * every pmf checkpoint must re-hash to its stored
//!   [`PoiBin::content_hash`] and pass distribution validation;
//! * selections (AltrM answer, staircase replays) must have strictly
//!   ascending, in-range members; shard layers must be exact
//!   partitions with per-shard runs bound to the sequence.
//!
//! Any failure rejects the *candidate* — counted in
//! [`ServiceStats::snapshot_rejections`](crate::ServiceStats) — and the
//! pool falls back to the ordinary cold build. Corruption can cost the
//! warm start, never a wrong answer. (Like any trusted-storage cache,
//! the checksums guard against crashes and bit rot, not an adversary
//! who can forge internally-consistent files.)

use crate::ladder::{PmfLadder, LADDER_MAX};
use crate::shard::{ShardCache, ShardLayer};
use crate::store::{ArtifactSet, LayoutKey, StoreKey};
use crate::AltrAnswer;
use jury_core::altr::JerProfile;
use jury_core::error::JuryError;
use jury_core::fingerprint::FingerprintKey;
use jury_core::juror::Juror;
use jury_core::paym::Staircase;
use jury_core::problem::Selection;
use jury_numeric::hash::splitmix64;
use jury_numeric::poibin::PoiBin;
use serde::{json, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First bytes of every entry file. The trailing digit is the format
/// version: decoders refuse other versions (version skew is a counted
/// rejection, not an error).
const MAGIC: &[u8; 8] = b"JRYSNP01";

/// Manifest file name within a snapshot directory.
pub(crate) const MANIFEST: &str = "manifest.json";

/// Manifest schema version (see [`MAGIC`] for the entry-file version).
const MANIFEST_VERSION: u64 = 1;

// Section tags. Unknown tags are skipped on read (forward
// compatibility); duplicates and a missing END terminator are
// rejections.
const TAG_END: u32 = 0;
const TAG_KEY: u32 = 1;
const TAG_SEQ: u32 = 2;
const TAG_EPS_ORDER: u32 = 3;
const TAG_GREEDY_ORDER: u32 = 4;
const TAG_EPS_SORTED: u32 = 5;
const TAG_ALTR: u32 = 6;
const TAG_PROFILE: u32 = 7;
const TAG_LADDER: u32 = 8;
const TAG_STAIRCASE: u32 = 9;
const TAG_SHARDS: u32 = 10;

/// The integrity fold used by snapshot files: a splitmix64 chain over
/// the bytes taken as little-endian 64-bit words (zero-padded tail),
/// seeded with the length. Public so external tooling (and the fault
/// harness) can re-derive manifest checksums.
pub fn snapshot_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h = splitmix64(h ^ u64::from_le_bytes(chunk.try_into().expect("exact chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = splitmix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

/// A section's trailing checksum binds the payload to its tag.
fn section_checksum(tag: u32, payload: &[u8]) -> u64 {
    splitmix64(snapshot_checksum(payload) ^ u64::from(tag))
}

/// What one snapshot write produced (observability; the frontend's
/// admin route reports it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Interned entries persisted.
    pub entries: usize,
    /// Total entry-file bytes written (manifest excluded).
    pub bytes: u64,
}

impl Serialize for SnapshotReport {
    fn to_value(&self) -> Value {
        Value::object([("entries", self.entries.to_value()), ("bytes", self.bytes.to_value())])
    }
}

// ---------------------------------------------------------------------
// Binary primitives
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends one `[tag][len][payload][checksum]` section.
fn put_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u64(out, section_checksum(tag, payload));
}

/// Bounds-checked little-endian cursor over untrusted bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// An index bounded by the pool size `n`.
    fn index(&mut self, n: usize) -> Option<usize> {
        let v = self.u64()?;
        let v = usize::try_from(v).ok()?;
        (v < n).then_some(v)
    }

    /// A length field, sanity-capped so corrupt lengths cannot drive
    /// huge allocations before the (already length-checked) payload
    /// runs out.
    fn len_capped(&mut self, cap: usize) -> Option<usize> {
        let v = self.u64()?;
        let v = usize::try_from(v).ok()?;
        (v <= cap).then_some(v)
    }

    fn done(&self) -> Option<()> {
        (self.pos == self.bytes.len()).then_some(())
    }
}

/// Walks the section stream after the magic, verifying each section's
/// checksum, skipping unknown tags, and requiring the END marker to
/// land exactly at end-of-file (truncation and trailing garbage both
/// reject). Duplicate tags reject.
fn split_sections(bytes: &[u8]) -> Option<HashMap<u32, &[u8]>> {
    let mut r = Reader::new(bytes);
    let mut sections = HashMap::new();
    loop {
        let tag = r.u32()?;
        let len = r.u64()?;
        let len = usize::try_from(len).ok()?;
        let payload = r.take(len)?;
        let checksum = r.u64()?;
        if checksum != section_checksum(tag, payload) {
            return None;
        }
        if tag == TAG_END {
            if len != 0 {
                return None;
            }
            r.done()?;
            return Some(sections);
        }
        if tag <= TAG_SHARDS && sections.insert(tag, payload).is_some() {
            return None;
        }
    }
}

// ---------------------------------------------------------------------
// Entry encoding
// ---------------------------------------------------------------------

/// Serializes one interned entry to its snapshot file bytes. Bulk
/// arrays are raw little-endian words (JSON digits would dominate the
/// restart budget at 10⁶ jurors); only small structured values (the
/// AltrM answer, the staircase) embed wire-JSON.
pub(crate) fn encode_entry(key: &StoreKey, set: &ArtifactSet) -> Vec<u8> {
    let seq = set.seq();
    let n = seq.len();
    let mut out = Vec::with_capacity(64 + 40 * n);
    out.extend_from_slice(MAGIC);

    let mut p = Vec::with_capacity(41);
    put_u64(&mut p, key.fp.lanes[0]);
    put_u64(&mut p, key.fp.lanes[1]);
    put_u64(&mut p, key.fp.len);
    match key.layout {
        LayoutKey::Flat => p.push(0),
        LayoutKey::Sharded { shards } => {
            p.push(1);
            put_u64(&mut p, shards as u64);
        }
    }
    put_u64(&mut p, key.config);
    put_section(&mut out, TAG_KEY, &p);

    let mut p = Vec::with_capacity(16 * n);
    for &(eps_bits, cost_bits) in seq {
        put_u64(&mut p, eps_bits);
        put_u64(&mut p, cost_bits);
    }
    put_section(&mut out, TAG_SEQ, &p);

    for (tag, order) in [(TAG_EPS_ORDER, &*set.eps_order), (TAG_GREEDY_ORDER, &*set.greedy_order)] {
        let mut p = Vec::with_capacity(8 * n);
        for &i in order.iter() {
            put_u64(&mut p, i as u64);
        }
        put_section(&mut out, tag, &p);
    }

    let mut p = Vec::with_capacity(8 * n);
    for &e in set.eps_sorted.iter() {
        put_u64(&mut p, e.to_bits());
    }
    put_section(&mut out, TAG_EPS_SORTED, &p);

    if let Some(answer) = set.altr.get() {
        put_section(&mut out, TAG_ALTR, altr_to_json(answer).as_bytes());
    }

    if let Some(profile) = set.profile.get() {
        let mut p = Vec::new();
        for &(size, jer) in profile.entries() {
            put_u64(&mut p, size as u64);
            put_u64(&mut p, jer.to_bits());
        }
        put_section(&mut out, TAG_PROFILE, &p);
    }

    if let Some(ladder) = set.ladder.get() {
        let mut p = Vec::new();
        encode_ladder(&mut p, ladder);
        put_section(&mut out, TAG_LADDER, &p);
    }

    put_section(&mut out, TAG_STAIRCASE, json::to_string(&*set.staircase_read()).as_bytes());

    if let Some(layer) = set.shard_layer.get() {
        let mut p = Vec::new();
        encode_shards(&mut p, layer);
        put_section(&mut out, TAG_SHARDS, &p);
    }

    put_section(&mut out, TAG_END, &[]);
    out
}

/// `count (u64); per checkpoint: len, content_hash, pmf_len, pmf bits`.
fn encode_ladder(p: &mut Vec<u8>, ladder: &PmfLadder) {
    let checkpoints: Vec<(usize, &PoiBin)> = ladder.checkpoints_raw().collect();
    put_u64(p, checkpoints.len() as u64);
    for (len, pmf) in checkpoints {
        put_u64(p, len as u64);
        put_u64(p, pmf.content_hash());
        let values = pmf.pmf();
        put_u64(p, values.len() as u64);
        for &x in values {
            put_u64(p, x.to_bits());
        }
    }
}

/// Decodes a ladder, re-hashing every checkpoint pmf against its stored
/// [`PoiBin::content_hash`] and re-validating the distribution and the
/// ascending-length invariant. `max_len` bounds checkpoint lengths by
/// the run the ladder covers.
fn decode_ladder(r: &mut Reader<'_>, max_len: usize) -> Option<PmfLadder> {
    let count = r.len_capped(LADDER_MAX)?;
    let mut raw = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.len_capped(max_len.min(LADDER_MAX))?;
        let hash = r.u64()?;
        let pmf_len = r.len_capped(LADDER_MAX + 1)?;
        let mut pmf = Vec::with_capacity(pmf_len);
        for _ in 0..pmf_len {
            pmf.push(r.f64()?);
        }
        let pmf = PoiBin::try_from_pmf(pmf)?;
        if pmf.content_hash() != hash {
            return None;
        }
        raw.push((len, pmf));
    }
    PmfLadder::from_checkpoints_raw(raw)
}

/// `owner_len, owner (u32s), cache_count; per cache: size, eps_order,
/// eps bits, greedy_order, ladder`.
fn encode_shards(p: &mut Vec<u8>, layer: &ShardLayer) {
    let owner = layer.owner();
    put_u64(p, owner.len() as u64);
    for &o in owner {
        put_u32(p, o);
    }
    let caches = layer.caches();
    put_u64(p, caches.len() as u64);
    for cache in caches {
        let (eps_order, eps, greedy_order, ladder) = cache.raw_parts();
        put_u64(p, eps_order.len() as u64);
        for &i in eps_order {
            put_u64(p, i as u64);
        }
        for &e in eps {
            put_u64(p, e.to_bits());
        }
        for &i in greedy_order {
            put_u64(p, i as u64);
        }
        encode_ladder(p, ladder);
    }
}

/// Decodes and fully re-validates a shard layer: per-shard runs are
/// bound to the founding sequence (ε bits through the positions),
/// ladders re-hash per checkpoint, [`ShardCache::from_raw_parts`]
/// re-checks run alignment/sortedness, and [`ShardLayer::from_raw`]
/// re-checks the owner partition. The owner-vector comparison against
/// the *registering* pool happens downstream at adoption.
fn decode_shards(payload: &[u8], n: usize, seq: &[(u64, u64)]) -> Option<ShardLayer> {
    let mut r = Reader::new(payload);
    let owner_len = r.len_capped(n)?;
    if owner_len != n {
        return None;
    }
    let mut owner = Vec::with_capacity(owner_len);
    for _ in 0..owner_len {
        owner.push(r.u32()?);
    }
    let cache_count = r.len_capped(n.max(1))?;
    let mut caches = Vec::with_capacity(cache_count);
    for _ in 0..cache_count {
        let size = r.len_capped(n)?;
        let mut eps_order = Vec::with_capacity(size);
        for _ in 0..size {
            eps_order.push(r.index(n)?);
        }
        let mut eps = Vec::with_capacity(size);
        for _ in 0..size {
            eps.push(r.f64()?);
        }
        let mut greedy_order = Vec::with_capacity(size);
        for _ in 0..size {
            greedy_order.push(r.index(n)?);
        }
        if eps.iter().zip(&eps_order).any(|(&e, &p)| e.to_bits() != seq[p].0) {
            return None;
        }
        let ladder = decode_ladder(&mut r, size)?;
        let cache = ShardCache::from_raw_parts(eps_order, eps, greedy_order, ladder)?;
        caches.push(Arc::new(cache));
    }
    r.done()?;
    ShardLayer::from_raw(owner, caches)
}

/// The AltrM answer as wire-JSON: `{"ok": bool, "value": Selection |
/// JuryError}` reusing the core wire codecs.
fn altr_to_json(answer: &AltrAnswer) -> String {
    let (ok, value) = match answer {
        Ok(selection) => (true, selection.as_ref().to_value()),
        Err(error) => (false, error.to_value()),
    };
    json::to_string(&Value::object([("ok", ok.to_value()), ("value", value)]))
}

fn altr_from_json(payload: &[u8], n: usize) -> Option<AltrAnswer> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = json::parse(text).ok()?;
    let ok = value.get("ok")?.as_bool()?;
    let inner = value.get("value")?;
    if ok {
        let selection = Selection::from_value(inner).ok()?;
        valid_members(&selection, n).then(|| Ok(Arc::new(selection)))
    } else {
        Some(Err(JuryError::from_value(inner).ok()?))
    }
}

/// Members must be strictly ascending and in-range — the invariant
/// every solver output holds and downstream translation relies on.
fn valid_members(selection: &Selection, n: usize) -> bool {
    selection.members.iter().all(|&m| m < n) && selection.members.windows(2).all(|w| w[0] < w[1])
}

fn is_permutation(order: &[usize], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    order.iter().all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
}

// ---------------------------------------------------------------------
// Verified load
// ---------------------------------------------------------------------

/// Loads and fully verifies one cataloged entry for the registering
/// pool (see the module docs for the gate list). `None` is a counted
/// rejection; the caller falls back to the cold build.
fn load_entry(
    dir: &Path,
    record: &ManifestEntry,
    key: &StoreKey,
    jurors: &[Juror],
) -> Option<ArtifactSet> {
    let bytes = fs::read(dir.join(&record.file)).ok()?;
    if bytes.len() as u64 != record.bytes || snapshot_checksum(&bytes) != record.checksum {
        return None;
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let sections = split_sections(&bytes[MAGIC.len()..])?;

    let mut kr = Reader::new(sections.get(&TAG_KEY)?);
    let lanes = [kr.u64()?, kr.u64()?];
    let len = kr.u64()?;
    let layout = match kr.u8()? {
        0 => LayoutKey::Flat,
        1 => LayoutKey::Sharded { shards: kr.len_capped(usize::MAX)? },
        _ => return None,
    };
    let config = kr.u64()?;
    kr.done()?;
    if (StoreKey { fp: FingerprintKey { lanes, len }, layout, config }) != *key {
        return None;
    }
    let n = usize::try_from(key.fp.len).ok()?;
    if jurors.len() != n {
        return None;
    }

    let mut sr = Reader::new(sections.get(&TAG_SEQ)?);
    let mut seq = Vec::with_capacity(n);
    for _ in 0..n {
        seq.push((sr.u64()?, sr.u64()?));
    }
    sr.done()?;

    let mut orders = [Vec::new(), Vec::new()];
    for (slot, tag) in orders.iter_mut().zip([TAG_EPS_ORDER, TAG_GREEDY_ORDER]) {
        let mut r = Reader::new(sections.get(&tag)?);
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            order.push(r.index(n)?);
        }
        r.done()?;
        if !is_permutation(&order, n) {
            return None;
        }
        *slot = order;
    }
    let [eps_order, greedy_order] = orders;

    let mut er = Reader::new(sections.get(&TAG_EPS_SORTED)?);
    let mut eps_sorted = Vec::with_capacity(n);
    for _ in 0..n {
        eps_sorted.push(er.f64()?);
    }
    er.done()?;
    // Rank/position binding: the sorted run must be exactly the ε bits
    // of the sequence read through the ε order, and non-decreasing
    // (incomparable NaN pairs rejected too).
    if eps_sorted.iter().zip(&eps_order).any(|(&e, &p)| e.to_bits() != seq[p].0) {
        return None;
    }
    if eps_sorted.windows(2).any(|w| w[0].partial_cmp(&w[1]).is_none_or(|o| o.is_gt())) {
        return None;
    }

    let altr = match sections.get(&TAG_ALTR) {
        Some(payload) => Some(altr_from_json(payload, n)?),
        None => None,
    };

    let profile = match sections.get(&TAG_PROFILE) {
        Some(payload) => {
            let mut r = Reader::new(payload);
            let count = payload.len() / 16;
            if count * 16 != payload.len() || 2 * count > n + 1 {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let size = r.len_capped(n)?;
                entries.push((size, r.f64()?));
            }
            r.done()?;
            Some(Arc::new(JerProfile::from_entries(entries)?))
        }
        None => None,
    };

    let ladder = match sections.get(&TAG_LADDER) {
        Some(payload) => {
            let mut r = Reader::new(payload);
            let ladder = decode_ladder(&mut r, n)?;
            r.done()?;
            Some(ladder)
        }
        None => None,
    };

    let staircase = match sections.get(&TAG_STAIRCASE) {
        Some(payload) => {
            let text = std::str::from_utf8(payload).ok()?;
            let staircase: Staircase = json::from_str(text).ok()?;
            if staircase.selections().any(|s| !valid_members(s, n)) {
                return None;
            }
            staircase
        }
        None => Staircase::new(),
    };

    let shard_layer = match (key.layout, sections.get(&TAG_SHARDS)) {
        (LayoutKey::Flat, Some(_)) => return None,
        (LayoutKey::Flat, None) | (LayoutKey::Sharded { .. }, None) => None,
        (LayoutKey::Sharded { shards }, Some(payload)) => {
            let layer = decode_shards(payload, n, &seq)?;
            if layer.caches().len() != shards {
                return None;
            }
            Some(layer)
        }
    };

    let set = ArtifactSet::from_restored(
        seq,
        eps_order,
        eps_sorted,
        greedy_order,
        altr,
        profile,
        ladder,
        shard_layer,
        staircase,
    );
    // The decisive content gate: the decoded founding sequence must
    // admit the live registering pool — the same comparison a warm
    // in-memory entry would run. A doctored manifest that borrows
    // another pool's fingerprint dies on the KEY cross-check above; a
    // colliding fingerprint dies here.
    set.match_pool(jurors)?;
    Some(set)
}

// ---------------------------------------------------------------------
// Manifest and catalog
// ---------------------------------------------------------------------

/// One manifest line: where an entry lives and what it must hash to.
#[derive(Debug, Clone)]
struct ManifestEntry {
    file: String,
    layout: LayoutKey,
    config: u64,
    bytes: u64,
    checksum: u64,
}

fn hex(v: u64) -> Value {
    Value::String(format!("{v:016x}"))
}

fn from_hex(value: Option<&Value>) -> Option<u64> {
    u64::from_str_radix(value?.as_str()?, 16).ok()
}

/// The parsed manifest of a snapshot directory, indexed by content
/// fingerprint alone — so a pool whose content *was* snapshotted but
/// whose layout or config bits have since drifted still registers a
/// counted rejection (the snapshot promised this content and cannot
/// deliver it) rather than a silent miss.
#[derive(Debug, Clone, Default)]
pub(crate) struct Catalog {
    dir: PathBuf,
    /// Manifest present but unreadable (corrupt JSON, version skew):
    /// every restore attempt is a counted rejection.
    poisoned: bool,
    entries: HashMap<FingerprintKey, Vec<ManifestEntry>>,
}

/// One restore attempt's outcome: the verified set (if any candidate
/// survived) plus how many candidates were rejected on the way.
pub(crate) struct RestoreAttempt {
    pub set: Option<ArtifactSet>,
    pub rejections: usize,
}

impl Catalog {
    /// Reads the manifest under `dir`. A missing manifest is an empty
    /// catalog (fresh directory, nothing to restore — not an error); a
    /// present-but-unreadable one poisons the catalog so attempts are
    /// counted as rejections.
    pub(crate) fn load(dir: &Path) -> Self {
        let text = match fs::read_to_string(dir.join(MANIFEST)) {
            Ok(text) => text,
            Err(_) => return Self { dir: dir.to_path_buf(), ..Self::default() },
        };
        match parse_manifest(&text) {
            Some(records) => {
                let mut entries: HashMap<FingerprintKey, Vec<ManifestEntry>> = HashMap::new();
                for (fp, record) in records {
                    entries.entry(fp).or_default().push(record);
                }
                Self { dir: dir.to_path_buf(), poisoned: false, entries }
            }
            None => Self { dir: dir.to_path_buf(), poisoned: true, entries: HashMap::new() },
        }
    }

    /// Attempts to restore a verified entry for `key` on behalf of the
    /// registering `jurors`. Candidates are tried in manifest order;
    /// the first to pass every gate wins. Rejection accounting follows
    /// the catalog contract: failed candidates, config/layout drift
    /// over known content, and a poisoned manifest all count; content
    /// the snapshot never knew is a plain miss.
    pub(crate) fn restore(&self, key: &StoreKey, jurors: &[Juror]) -> RestoreAttempt {
        if self.poisoned {
            return RestoreAttempt { set: None, rejections: 1 };
        }
        let Some(candidates) = self.entries.get(&key.fp) else {
            return RestoreAttempt { set: None, rejections: 0 };
        };
        let mut rejections = 0usize;
        let mut any_match = false;
        for record in candidates {
            if record.layout != key.layout || record.config != key.config {
                continue;
            }
            any_match = true;
            match load_entry(&self.dir, record, key, jurors) {
                Some(set) => return RestoreAttempt { set: Some(set), rejections },
                None => rejections += 1,
            }
        }
        if !any_match {
            rejections += 1;
        }
        RestoreAttempt { set: None, rejections }
    }
}

fn parse_manifest(text: &str) -> Option<Vec<(FingerprintKey, ManifestEntry)>> {
    let value = json::parse(text).ok()?;
    if value.get("format")?.as_str()? != "jury-snapshot"
        || value.get("version")?.as_u64()? != MANIFEST_VERSION
    {
        return None;
    }
    let mut records = Vec::new();
    for entry in value.get("entries")?.as_array()? {
        let lanes = entry.get("lanes")?.as_array()?;
        if lanes.len() != 2 {
            return None;
        }
        let fp = FingerprintKey {
            lanes: [from_hex(Some(&lanes[0]))?, from_hex(Some(&lanes[1]))?],
            len: from_hex(entry.get("len"))?,
        };
        let layout = match entry.get("layout")?.as_str()? {
            "flat" => LayoutKey::Flat,
            "sharded" => {
                LayoutKey::Sharded { shards: usize::try_from(from_hex(entry.get("shards"))?).ok()? }
            }
            _ => return None,
        };
        let file = entry.get("file")?.as_str()?;
        // Entry files live flat in the snapshot directory; a manifest
        // naming anything else is malformed.
        if file.is_empty() || file.contains(['/', '\\']) || file.contains("..") {
            return None;
        }
        let record = ManifestEntry {
            file: file.to_string(),
            layout,
            config: from_hex(entry.get("config"))?,
            bytes: from_hex(entry.get("bytes"))?,
            checksum: from_hex(entry.get("checksum"))?,
        };
        records.push((fp, record));
    }
    Some(records)
}

// ---------------------------------------------------------------------
// Crash-safe write
// ---------------------------------------------------------------------

/// Content-keyed entry file name: equal keys overwrite (atomically),
/// distinct keys coexist across snapshot generations.
fn entry_file_name(key: &StoreKey) -> String {
    let mut h = splitmix64(key.fp.lanes[0]);
    h = splitmix64(h ^ key.fp.lanes[1]);
    h = splitmix64(h ^ key.fp.len);
    let layout_word = match key.layout {
        LayoutKey::Flat => 0u64,
        LayoutKey::Sharded { shards } => 1 | (shards as u64) << 1,
    };
    h = splitmix64(h ^ layout_word);
    format!("art-{:016x}.snap", splitmix64(h ^ key.config))
}

/// Temp-write + fsync + atomic rename + (best-effort) directory fsync.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(name))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Writes a full snapshot of the store: every entry file first, the
/// manifest last — the manifest rename is the commit point.
pub(crate) fn write_snapshot<'a>(
    dir: &Path,
    entries: impl Iterator<Item = (&'a StoreKey, &'a Arc<ArtifactSet>)>,
) -> io::Result<SnapshotReport> {
    fs::create_dir_all(dir)?;
    let mut manifest_entries = Vec::new();
    let mut total = 0u64;
    for (key, set) in entries {
        let bytes = encode_entry(key, set);
        let file = entry_file_name(key);
        write_atomic(dir, &file, &bytes)?;
        total += bytes.len() as u64;
        let (layout, shards) = match key.layout {
            LayoutKey::Flat => ("flat", None),
            LayoutKey::Sharded { shards } => ("sharded", Some(shards)),
        };
        let mut fields = vec![
            ("file", Value::String(file)),
            ("lanes", Value::Array(vec![hex(key.fp.lanes[0]), hex(key.fp.lanes[1])])),
            ("len", hex(key.fp.len)),
            ("layout", Value::String(layout.to_string())),
        ];
        if let Some(shards) = shards {
            fields.push(("shards", hex(shards as u64)));
        }
        fields.push(("config", hex(key.config)));
        fields.push(("bytes", hex(bytes.len() as u64)));
        fields.push(("checksum", hex(snapshot_checksum(&bytes))));
        manifest_entries.push(Value::object(fields));
    }
    let count = manifest_entries.len();
    let manifest = Value::object([
        ("format", Value::String("jury-snapshot".to_string())),
        ("version", MANIFEST_VERSION.to_value()),
        ("entries", Value::Array(manifest_entries)),
    ]);
    write_atomic(dir, MANIFEST, json::to_string_pretty(&manifest).as_bytes())?;
    Ok(SnapshotReport { entries: count, bytes: total })
}
